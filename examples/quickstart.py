"""Quickstart: detect "Ride Item's Coattails" attacks in a click graph.

Generates a synthetic marketplace with injected attacks (the stand-in for
a production click table), runs the RICD detector with paper-default
parameters, and prints what it found — including the top-k risk ranking a
business expert would act on.

Run:  python examples/quickstart.py
"""

from repro import RICDDetector, paper_scenario


def main() -> None:
    print("Generating a 20k-user marketplace with 8 injected attack groups...")
    scenario = paper_scenario(seed=0)
    graph = scenario.graph
    print(f"  {graph!r}")

    print("\nRunning RICD (k1=10, k2=10, alpha=1.0, data-derived thresholds)...")
    detector = RICDDetector()
    result = detector.detect(graph)
    print(f"  found {len(result.groups)} attack groups in {result.elapsed:.2f}s")
    print(
        f"  {len(result.suspicious_users)} suspicious accounts, "
        f"{len(result.suspicious_items)} suspicious target items"
    )

    # How good was that? (Possible only because the scenario carries exact
    # injected ground truth — production use has no such luxury.)
    truth = scenario.truth
    true_hits = len(result.suspicious_users & truth.abnormal_users) + len(
        result.suspicious_items & truth.abnormal_items
    )
    output_size = len(result.suspicious_users) + len(result.suspicious_items)
    print(
        f"  precision {true_hits / output_size:.2f} over "
        f"{output_size} flagged nodes (exact ground truth)"
    )

    print("\nTop-5 riskiest accounts (risk = #suspicious items clicked):")
    for user, score in result.top_users(5):
        tag = "worker" if user in truth.abnormal_users else "organic"
        print(f"  {user:>12}  risk={score:.0f}  [{tag}]")

    print("\nTop-5 riskiest items (risk = mean clicker risk):")
    for item, score in result.top_items(5):
        tag = "target" if item in truth.abnormal_items else "organic"
        print(f"  {item:>12}  risk={score:.2f}  [{tag}]")

    print("\nPer-group breakdown:")
    for index, group in enumerate(result.groups):
        workers = len(group.users & truth.abnormal_users)
        print(
            f"  group {index}: {len(group.users)} accounts "
            f"({workers} true workers), {len(group.items)} target items, "
            f"riding {len(group.hot_items)} hot item(s)"
        )


if __name__ == "__main__":
    main()
