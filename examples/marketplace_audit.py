"""Marketplace audit: load a click table from disk and compare detectors.

Demonstrates the file-based workflow a platform team would actually use:

1. export a click table (``User_ID, Item_ID, Click`` CSV) — here we
   synthesise one and write it to a temp directory;
2. load it back with :func:`repro.read_click_table`;
3. derive the thresholds from the data (Pareto rule, Eq. 4);
4. run the paper's full detector line-up and print the comparison.

Run:  python examples/marketplace_audit.py
"""

import tempfile
from pathlib import Path

from repro import paper_scenario, read_click_table, write_click_table
from repro.analysis import marketplace_report
from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph
from repro.eval import default_detector_suite, run_suite
from repro.eval.reporting import format_float, render_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ricd_audit_"))
    table_path = workdir / "taobao_ui_clicks.csv"

    print("Exporting a synthetic TaoBao_UI_Clicks table...")
    scenario = paper_scenario(seed=7)
    records = write_click_table(scenario.graph, table_path)
    print(f"  wrote {records:,} click records to {table_path}")

    print("\nLoading the click table back from disk...")
    graph = read_click_table(table_path)
    print(f"  {graph!r}")

    t_hot = pareto_hot_threshold(graph)
    t_click = t_click_from_graph(graph)
    print(f"  derived thresholds: T_hot={t_hot} (Pareto 80/20), T_click={t_click} (Eq. 4)")

    print("\nSection IV first-pass analysis (rough screen):")
    print(marketplace_report(graph).render())

    print("\nRunning the paper's detector line-up (RICD + baselines '+UI')...")
    runs = run_suite(
        default_detector_suite(copycatch_deadline=3.0),
        scenario,
        simulate_labels=False,
    )
    rows = [
        [
            run.name,
            format_float(run.exact.precision),
            format_float(run.exact.recall),
            format_float(run.exact.f1),
            format_float(run.elapsed, 2),
        ]
        for run in runs
    ]
    print()
    print(
        render_table(
            ["method", "precision", "recall", "F1", "elapsed (s)"],
            rows,
            title="Audit results (scored against the injected ground truth)",
        )
    )


if __name__ == "__main__":
    main()
