"""Warm resume: restart the detection service on its persistent store.

Detection-as-a-service survives a process restart: one process ingests a
click table, checkpoints, and exits; a second process resumes from the
store directory alone and must serve the *identical* verdict at the same
store version — without ever rebuilding the array snapshot (asserted by
counter, not by timing).  CI runs the two phases as separate processes;
running the script with no phase argument does both in sequence.

Run:  python examples/warm_resume.py [write|resume] [store-dir]
"""

import sys
import tempfile

from repro import obs
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import tiny_scenario
from repro.serve import DetectionService, ServeConfig, StalenessPolicy

PARAMS = RICDParams(k1=4, k2=4)


def canonical(result):
    """Order-free, stringified view of everything observable."""
    return (
        sorted(map(str, result.suspicious_users)),
        sorted(map(str, result.suspicious_items)),
        sorted(
            sorted(map(str, group.users)) for group in result.groups
        ),
    )


def make_service(store_dir):
    return DetectionService.from_store(
        store_dir,
        params=PARAMS,
        engine="reference",
        config=ServeConfig(staleness=StalenessPolicy(max_batches=10**9)),
    )


def write(store_dir) -> None:
    print(f"[write] bootstrapping a detection service on {store_dir}")
    service = make_service(store_dir)
    graph = tiny_scenario().graph
    for user in sorted(graph.users(), key=str):
        for item in sorted(graph.user_neighbors(user), key=str):
            service.submit(user, item, graph.get_click(user, item))
    result = service.checkpoint()
    assert result.suspicious_users, "the tiny scenario must trip detection"
    print(
        f"[write] checkpointed store version {service.store_version}: "
        f"{len(result.suspicious_users)} suspicious users, "
        f"{len(result.groups)} groups"
    )


def resume(store_dir) -> None:
    print(f"[resume] restarting from {store_dir} (new process, no state)")
    recorder = obs.Recorder()
    with obs.recording(recorder):
        service = make_service(store_dir)
        warm = service.result
        service.online.graph.indexed()
    misses = recorder.counters.get("graph.indexed.misses", 0)
    assert misses == 0, f"warm resume rebuilt the snapshot {misses}x"

    cold = RICDDetector(params=PARAMS, engine="reference").detect(
        service.online.graph
    )
    assert canonical(warm) == canonical(cold), "warm verdict diverged from cold"
    assert warm.suspicious_users, "resumed service must still flag the attack"
    print(
        f"[resume] store version {service.store_version}: warm verdict equals "
        f"a cold re-detection ({len(warm.suspicious_users)} suspicious users), "
        "snapshot served from the store (0 index rebuilds)"
    )


def main() -> None:
    phase = sys.argv[1] if len(sys.argv) > 1 else "both"
    if phase == "both":
        with tempfile.TemporaryDirectory() as scratch:
            store_dir = f"{scratch}/store"
            write(store_dir)
            resume(store_dir)
        return
    if len(sys.argv) < 3:
        raise SystemExit(f"usage: {sys.argv[0]} [write|resume] STORE_DIR")
    {"write": write, "resume": resume}[phase](sys.argv[2])


if __name__ == "__main__":
    main()
