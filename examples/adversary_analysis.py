"""Adversary analysis: what can an attacker who knows RICD still do?

The paper's strict attack model (Section III-A) assumes attackers have
"complete knowledge of ... the attack detection mechanisms".  This script
plays that adversary:

1. compute the Zarankiewicz ceiling on *invisible* fake clicks for the
   deployed parameters (property 3 of Section III-B);
2. launch the structure-optimal invisible campaign (every target capped
   at k1 - 1 workers, so no detectable biclique core ever forms);
3. launch the overt Eq. 3-optimal campaign with the same budget;
4. compare: detection rate vs achieved I2I lift.

Run:  python examples/adversary_analysis.py
"""

from repro import MarketplaceConfig, RICDParams
from repro.core.camouflage import undetected_campaign_bound
from repro.datagen import generate_marketplace
from repro.eval.robustness import evasion_economics


def main() -> None:
    params = RICDParams(k1=10, k2=10)
    n_workers, n_targets = 25, 12

    print(f"Deployed detector parameters: k1={params.k1}, k2={params.k2}")
    print(f"Seller's budget: {n_workers} accounts x {n_targets} target items\n")

    print("The invisibility ceiling (Kővári–Sós–Turán / Zarankiewicz):")
    for accounts in (10, 25, 50, 100, 200):
        bound = undetected_campaign_bound(accounts, n_targets, params)
        per_account = bound / accounts
        print(
            f"  {accounts:>4} accounts -> at most {bound:>5} invisible fake "
            f"edges ({per_account:.1f} per account)"
        )
    print(
        "  ...sublinear per account: each extra account buys less and less\n"
    )

    print("Simulating both campaigns on a clean marketplace...")
    clean = generate_marketplace(MarketplaceConfig(n_swarms=0, n_superfans=0, seed=33))
    report = evasion_economics(
        clean, params, n_workers=n_workers, n_targets=n_targets, seed=1
    )

    print(f"\n{'campaign':<24}{'detected':>10}{'mean target I2I':>18}")
    print(
        f"{'overt (Eq. 3 optimum)':<24}"
        f"{report.overt_detection_rate:>9.0%}"
        f"{report.overt_mean_lift:>18.5f}"
    )
    print(
        f"{'invisible (K-free)':<24}"
        f"{report.evasive_detection_rate:>9.0%}"
        f"{report.evasive_mean_lift:>18.5f}"
    )
    if report.evasive_mean_lift > 0:
        ratio = report.overt_mean_lift / report.evasive_mean_lift
        print(
            f"\nStaying invisible cost the seller {ratio:.1f}x of the I2I "
            "lift the overt campaign achieves —"
        )
    print(
        "the paper's property (3): RICD cannot stop every fake click, but it "
        "bounds what an undetected attacker can accomplish."
    )


if __name__ == "__main__":
    main()
