"""End-to-end attack demonstration: poison the recommender, detect, clean.

The paper's motivation, live:

1. build an organic marketplace and its I2I recommender;
2. launch one "Ride Item's Coattails" campaign (crowd workers co-click a
   hot item and the seller's low-quality targets);
3. watch the targets climb the hot item's recommendation list;
4. detect the campaign with RICD;
5. remove the fake clicks and watch exposure collapse back.

Run:  python examples/attack_and_defend.py
"""

from repro import AttackConfig, MarketplaceConfig, RICDDetector, I2IRecommender
from repro.datagen import generate_scenario
from repro.recsys import attack_impact, remove_detected_clicks, remove_fake_clicks


def show_recommendations(graph, hot_item, targets, k=10) -> None:
    engine = I2IRecommender(graph)
    print(f"  top-{k} recommendations next to hot item {hot_item!r}:")
    for rec in engine.recommend(hot_item, k=k):
        marker = "  <-- seller's target!" if rec.item in targets else ""
        print(f"    #{rec.rank:<3} {rec.item:>8}  I2I={rec.score:.4f}{marker}")
    best = min(
        (engine.rank_of(hot_item, target) for target in targets),
        key=lambda rank: rank if rank is not None else 10**9,
    )
    if best is None:
        print("    (no seller target appears anywhere in the ranking)")
    else:
        print(f"    best seller-target rank in the full list: #{best}")


def main() -> None:
    print("Step 1 — organic marketplace + one attack campaign")
    scenario = generate_scenario(
        MarketplaceConfig(n_swarms=0, n_superfans=0, seed=42),
        AttackConfig(
            n_groups=1,
            workers_per_group=(16, 16),
            targets_per_group=(12, 12),
            hot_items_per_group=(1, 1),
            target_clicks=(12, 14),
            density=1.0,
            sloppy_fraction=0.0,
            hijacked_user_fraction=0.0,
            worker_reuse_fraction=0.0,
            seed=43,
        ),
    )
    group = scenario.truth.groups[0]
    hot = group.hot_items[0]
    targets = set(group.target_items)
    clean = remove_fake_clicks(scenario.graph, [group])
    print(
        f"  campaign: {len(group.workers)} worker accounts x "
        f"{len(targets)} target items, riding {hot!r}"
    )

    print("\nStep 2 — recommendations BEFORE the attack")
    show_recommendations(clean, hot, targets)

    print("\nStep 3 — recommendations AFTER the attack")
    show_recommendations(scenario.graph, hot, targets)
    impact = attack_impact(clean, scenario.graph, group)
    rank_before = f"{impact.mean_rank_before:.0f}" if impact.mean_rank_before else "unranked"
    rank_after = f"{impact.mean_rank_after:.0f}" if impact.mean_rank_after else "unranked"
    print(
        f"  mean target rank: {rank_before} -> {rank_after}; "
        f"mean I2I score x{impact.score_lift:.1f}"
    )

    print("\nStep 4 — RICD detection")
    result = RICDDetector().detect(scenario.graph)
    caught_workers = set(group.workers) & result.suspicious_users
    caught_targets = targets & result.suspicious_items
    print(
        f"  caught {len(caught_workers)}/{len(group.workers)} accounts and "
        f"{len(caught_targets)}/{len(targets)} targets "
        f"in {result.elapsed:.2f}s"
    )

    print("\nStep 5 — cleanup: remove what the detector attributed (no ground truth)")
    detector = RICDDetector()
    resolved = detector.resolve_thresholds(scenario.graph)
    cleaned = remove_detected_clicks(
        scenario.graph, result, t_click=resolved.t_click
    )
    removed = scenario.graph.total_clicks - cleaned.total_clicks
    print(f"  removed {removed:,} clicks attributed to the detected groups")
    show_recommendations(cleaned, hot, targets)
    print(
        "\nThe targets' ranks are back to the pre-attack level — "
        "the campaign is neutralised."
    )


if __name__ == "__main__":
    main()
