"""Online monitoring: catch an attack as its clicks stream in.

Implements the paper's future-work scenario (Section VIII): during a
"Double 11"-style campaign, click batches arrive continuously and the
platform wants the attack flagged *while it is happening*, not in the
nightly batch job.  The :class:`IncrementalRICD` extension re-checks only
the two-hop dirty region around each batch.

Run:  python examples/online_monitoring.py
"""

import time

from repro import MarketplaceConfig, RICDParams
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.datagen import AttackConfig, generate_scenario


def main() -> None:
    print("Bootstrapping the live marketplace (clean at launch)...")
    clean = generate_scenario(
        MarketplaceConfig(
            n_users=5_000,
            n_items=1_000,
            # Overlay volumes scale with the marketplace (the defaults
            # assume the 20k-user paper-scale preset).
            n_cohorts=3,
            cohort_users=(12, 25),
            cohort_items=(8, 12),
            n_superfans=80,
            superfan_clicks=(12, 18),
            n_swarms=1,
            swarm_users=(20, 26),
            swarm_items=(6, 8),
            seed=11,
        ),
        AttackConfig(n_groups=0, seed=12),
    )
    online = IncrementalRICD(
        clean.graph, params=RICDParams(k1=8, k2=8), recheck_batches=1
    )
    print(f"  {online.graph!r}")
    print(
        f"  initial state: {len(online.current_result.suspicious_users)} "
        "suspicious accounts (expected ~0 on a clean marketplace)"
    )

    print("\nAn attack campaign starts streaming in (5 daily batches)...")
    # Build the campaign off-line, then deliver it batch by batch.
    shadow = online.graph.copy()
    from repro.datagen import inject_attacks

    truth = inject_attacks(
        shadow,
        AttackConfig(
            n_groups=1,
            workers_per_group=(12, 12),
            targets_per_group=(10, 10),
            target_clicks=(12, 14),
            density=1.0,
            sloppy_fraction=0.0,
            hijacked_user_fraction=0.0,
            worker_reuse_fraction=0.0,
            seed=13,
        ),
    )
    group = truth.groups[0]
    campaign = list(group.fake_edges)
    batch_size = max(1, len(campaign) // 5)

    detected_on_day = None
    for day in range(5):
        batch = campaign[day * batch_size : (day + 1) * batch_size]
        if not batch:
            break
        start = time.perf_counter()
        result = online.ingest(ClickBatch.of(batch))
        elapsed = (time.perf_counter() - start) * 1000
        caught = len(set(group.workers) & result.suspicious_users)
        print(
            f"  day {day + 1}: ingested {len(batch):>3} fake clicks "
            f"in {elapsed:6.1f} ms -> {caught:>2}/{len(group.workers)} "
            "campaign accounts flagged"
        )
        if detected_on_day is None and caught >= len(group.workers) * 0.8:
            detected_on_day = day + 1

    if detected_on_day is not None:
        print(
            f"\nCampaign flagged on day {detected_on_day} of 5 — before it "
            "finished. (The paper: 'the earlier these attacks are detected "
            "in real time, the more losses can be reduced.')"
        )
    else:
        print("\nCampaign not fully flagged within the window — tune k1/k2.")
        return

    print("\nDay 6 — cleanup: subtract the attributed fake clicks and recheck")
    from repro.core.screening import collect_fake_edges
    from repro.core.thresholds import t_click_from_graph

    t_click = t_click_from_graph(online.graph)
    attributed = [
        edge
        for detected in online.current_result.groups
        for edge in collect_fake_edges(online.graph, detected, t_click)
    ]
    state = online.apply_cleanup(attributed)
    still_flagged = set(group.workers) & state.suspicious_users
    print(
        f"  removed {len(attributed)} attributed click records; "
        f"{len(still_flagged)} campaign accounts remain flagged "
        "(expected 0 — their fake history is gone)"
    )


if __name__ == "__main__":
    main()
