"""Tests for the Label Propagation baseline."""

import pytest

from repro.baselines import LabelPropagationDetector
from repro.baselines.lpa import propagate_labels
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


class TestPropagateLabels:
    def test_dense_block_converges_to_one_label(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 5, 5)
        labels = propagate_labels(graph, max_round=20, seed=0)
        block = {labels[("user", u)] for u in users} | {
            labels[("item", i)] for i in items
        }
        assert len(block) == 1

    def test_disconnected_blocks_distinct_labels(self):
        graph = BipartiteGraph()
        make_biclique(graph, 4, 4, user_prefix="au", item_prefix="ai")
        make_biclique(graph, 4, 4, user_prefix="bu", item_prefix="bi")
        labels = propagate_labels(graph, seed=0)
        assert labels[("user", "au0")] != labels[("user", "bu0")]

    def test_zero_rounds_keeps_unique_labels(self, simple_graph):
        labels = propagate_labels(simple_graph, max_round=0)
        assert len(set(labels.values())) == len(labels)

    def test_negative_rounds_rejected(self, simple_graph):
        with pytest.raises(ValueError):
            propagate_labels(simple_graph, max_round=-1)

    def test_deterministic_for_seed(self, small):
        a = propagate_labels(small.graph, seed=5)
        b = propagate_labels(small.graph, seed=5)
        assert a == b

    def test_isolated_node_keeps_label(self):
        graph = BipartiteGraph()
        graph.add_user("alone")
        graph.add_click("u", "i", 1)
        labels = propagate_labels(graph)
        assert ("user", "alone") in labels


class TestDetector:
    def test_name(self):
        assert LabelPropagationDetector().name == "LPA"

    def test_finds_planted_block(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 6, 6)
        graph.add_click("stray", "elsewhere", 1)
        result = LabelPropagationDetector(min_users=5, min_items=5).detect(graph)
        assert set(users) <= result.suspicious_users
        assert set(items) <= result.suspicious_items

    def test_size_floors_filter(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        result = LabelPropagationDetector(min_users=5, min_items=5).detect(graph)
        assert not result.suspicious_users

    def test_timing_recorded(self, tiny):
        result = LabelPropagationDetector(min_users=4, min_items=4).detect(tiny.graph)
        assert result.timings["detection"] > 0

    def test_covers_attack_workers(self, small):
        result = LabelPropagationDetector(min_users=5, min_items=5).detect(small.graph)
        covered = result.suspicious_users & small.truth.abnormal_users
        assert len(covered) >= 0.5 * len(small.truth.abnormal_users)
