"""Tests for the FRAUDAR baseline."""

import pytest

from repro.baselines import FraudarDetector
from repro.baselines.fraudar import peel_densest_block
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


class TestPeeling:
    def test_dense_block_survives_peeling(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 6, 6)
        for index in range(20):  # sparse noise
            graph.add_click(f"n{index}", f"x{index}", 1)
        block_users, block_items, density = peel_densest_block(graph)
        assert set(users) <= block_users
        assert set(items) <= block_items
        assert density > 0
        assert not any(str(u).startswith("n") for u in block_users)

    def test_input_untouched(self, simple_graph):
        before = simple_graph.copy()
        peel_densest_block(simple_graph)
        assert simple_graph == before

    def test_column_weighting_discounts_hot_items(self):
        """Edges into a high-degree item count less: a small tight block
        beats a big star around one popular item."""
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 5, 5)
        for index in range(200):
            graph.add_click(f"fan{index}", "megahit", 1)
        block_users, _items, _density = peel_densest_block(graph)
        assert set(users) <= block_users
        # The star fans must not dominate the block.
        fans_in = sum(1 for u in block_users if str(u).startswith("fan"))
        assert fans_in < 100


class TestDetector:
    def test_name(self):
        assert FraudarDetector().name == "FRAUDAR"

    def test_finds_two_blocks(self):
        graph = BipartiteGraph()
        make_biclique(graph, 6, 6, user_prefix="au", item_prefix="ai")
        make_biclique(graph, 5, 5, user_prefix="bu", item_prefix="bi")
        result = FraudarDetector(max_blocks=4).detect(graph)
        prefixes = {str(u)[:2] for u in result.suspicious_users}
        assert {"au", "bu"} <= prefixes

    def test_block_budget_limits_recall(self):
        """The paper's criticism: the block count must be known in advance."""
        graph = BipartiteGraph()
        for index in range(5):
            make_biclique(
                graph, 5, 5, user_prefix=f"g{index}u", item_prefix=f"g{index}i"
            )
        limited = FraudarDetector(max_blocks=2, density_floor=0.0).detect(graph)
        generous = FraudarDetector(max_blocks=8, density_floor=0.0).detect(graph)
        assert len(limited.groups) <= 2
        assert len(generous.suspicious_users) >= len(limited.suspicious_users)

    def test_density_floor_stops_early(self):
        graph = BipartiteGraph()
        make_biclique(graph, 8, 8, user_prefix="big", item_prefix="bigi")
        # Second "block" is far sparser.
        graph.add_click("s1", "weak", 1)
        graph.add_click("s2", "weak", 1)
        result = FraudarDetector(max_blocks=5, density_floor=0.9).detect(graph)
        assert len(result.groups) == 1

    def test_empty_graph(self, empty_graph):
        result = FraudarDetector().detect(empty_graph)
        assert not result.groups

    def test_size_floors(self):
        graph = BipartiteGraph()
        make_biclique(graph, 2, 2)
        result = FraudarDetector(min_users=3, min_items=3).detect(graph)
        assert not result.groups

    def test_timing_recorded(self, tiny):
        result = FraudarDetector().detect(tiny.graph)
        assert result.timings["detection"] > 0
