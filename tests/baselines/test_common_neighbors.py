"""Tests for the Common Neighbors baseline."""

import pytest

from repro.baselines import CommonNeighborsDetector
from repro.baselines.common_neighbors import strong_partner_map
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


class TestStrongPartnerMap:
    def test_biclique_pairs_all_strong(self):
        graph = BipartiteGraph()
        users, _ = make_biclique(graph, 4, 5)
        partners = strong_partner_map(graph, cn_threshold=5)
        for user in users:
            assert partners[user] == set(users) - {user}

    def test_threshold_excludes_weak_pairs(self):
        graph = BipartiteGraph()
        for item in ("a", "b", "c"):
            graph.add_click("u", item, 1)
            graph.add_click("v", item, 1)
        partners = strong_partner_map(graph, cn_threshold=4)
        # u and v share only 3 items; with threshold 4 the candidate filter
        # (degree >= 4) already drops both.
        assert partners == {}

    def test_low_degree_users_skipped(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 5)
        graph.add_click("lurker", "bi0", 1)
        partners = strong_partner_map(graph, cn_threshold=5)
        assert "lurker" not in partners

    def test_invalid_threshold(self, simple_graph):
        with pytest.raises(ValueError):
            strong_partner_map(simple_graph, 0)


class TestDetector:
    def test_name(self):
        assert CommonNeighborsDetector().name == "CN"

    def test_planted_block_found(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 6, 6)
        result = CommonNeighborsDetector(
            cn_threshold=6, min_users=6, min_items=6
        ).detect(graph)
        assert result.suspicious_users == set(users)
        assert set(items) <= result.suspicious_items

    def test_ego_cluster_below_floor_undetected(self):
        """The paper's CN criticism: small ego neighbourhoods are missed."""
        graph = BipartiteGraph()
        make_biclique(graph, 4, 6)  # each ego cluster has 4 users < floor 6
        result = CommonNeighborsDetector(
            cn_threshold=6, min_users=6, min_items=6
        ).detect(graph)
        assert not result.suspicious_users

    def test_min_supporters_filters_items(self):
        graph = BipartiteGraph()
        users, _items = make_biclique(graph, 5, 5)
        graph.add_click(users[0], "solo_item", 1)
        result = CommonNeighborsDetector(
            cn_threshold=5, min_users=5, min_items=5, min_supporters=2
        ).detect(graph)
        assert "solo_item" not in result.suspicious_items

    def test_empty_graph(self, empty_graph):
        result = CommonNeighborsDetector().detect(empty_graph)
        assert not result.suspicious_users

    def test_timing_recorded(self, tiny):
        result = CommonNeighborsDetector(cn_threshold=4, min_users=4, min_items=4).detect(
            tiny.graph
        )
        assert "detection" in result.timings
