"""Tests for the "+UI" screening wrapper and the naive adapter."""

from repro.baselines import (
    LabelPropagationDetector,
    NaiveDetector,
    WithScreening,
)
from repro.config import ScreeningParams
from repro.core.naive import NaiveParams
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


def attackish_graph():
    """A heavy-click biclique (attack-like) plus a light cohort block, over
    an organic background that makes the thresholds sane."""
    graph = BipartiteGraph()
    make_biclique(graph, 5, 5, clicks=13, user_prefix="w", item_prefix="t")
    make_biclique(graph, 6, 6, clicks=2, user_prefix="c", item_prefix="ci")
    for index in range(150):
        graph.add_click(f"bg{index}", "popular", 3)
        graph.add_click(f"bg{index}", f"long_tail{index % 40}", 1)
    return graph


class TestWithScreening:
    def test_name_suffix(self):
        wrapped = WithScreening(LabelPropagationDetector())
        assert wrapped.name == "LPA+UI"

    def test_screening_removes_cohort_keeps_workers(self):
        graph = attackish_graph()
        inner = LabelPropagationDetector(min_users=5, min_items=5)
        wrapped = WithScreening(
            inner,
            screening=ScreeningParams(min_users=2, min_items=2),
            t_hot=300.0,
            t_click=10.0,
            min_users=5,
            min_items=5,
        )
        raw = inner.detect(graph)
        screened = wrapped.detect(graph)
        workers = {f"w{i}" for i in range(5)}
        cohort = {f"c{i}" for i in range(6)}
        assert workers <= raw.suspicious_users
        assert workers <= screened.suspicious_users
        assert not (cohort & screened.suspicious_users)

    def test_precision_never_decreases(self, small):
        """On the integration scenario, screening can only help precision."""
        inner = LabelPropagationDetector(min_users=5, min_items=5)
        wrapped = WithScreening(
            inner,
            screening=ScreeningParams(min_users=2, min_items=2),
            min_users=5,
            min_items=5,
        )
        truth_nodes = small.truth.abnormal_nodes

        def precision(result):
            output = result.suspicious_nodes
            return len(output & truth_nodes) / len(output) if output else 1.0

        assert precision(wrapped.detect(small.graph)) >= precision(
            inner.detect(small.graph)
        )

    def test_timing_split_recorded(self, small):
        wrapped = WithScreening(
            LabelPropagationDetector(min_users=5, min_items=5),
            min_users=5,
            min_items=5,
        )
        result = wrapped.detect(small.graph)
        assert "detection" in result.timings
        assert "screening" in result.timings

    def test_derives_thresholds_when_unset(self, small):
        wrapped = WithScreening(
            LabelPropagationDetector(min_users=5, min_items=5),
            min_users=5,
            min_items=5,
        )
        result = wrapped.detect(small.graph)  # must not raise
        assert isinstance(result.suspicious_users, set)

    def test_small_groups_filtered_before_screening(self):
        graph = attackish_graph()
        inner = LabelPropagationDetector(min_users=2, min_items=2)
        wrapped = WithScreening(inner, min_users=50, min_items=50)
        result = wrapped.detect(graph)
        assert not result.suspicious_users


class TestNaiveAdapter:
    def test_name(self):
        assert NaiveDetector().name == "Naive"

    def test_params_passed_through(self, tiny):
        adapter = NaiveDetector(params=NaiveParams(t_hot=50.0, t_risk=1e12, t_risk_user=1e12))
        result = adapter.detect(tiny.graph)
        assert not result.suspicious_items  # absurd threshold finds nothing

    def test_detect_returns_result(self, tiny):
        result = NaiveDetector().detect(tiny.graph)
        assert "detection" in result.timings
