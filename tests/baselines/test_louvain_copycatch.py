"""Tests for the Louvain and COPYCATCH baselines."""

import time

import pytest

from repro.baselines import CopyCatchDetector, LouvainDetector
from repro.baselines.copycatch import enumerate_bicliques
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


class TestLouvain:
    def test_name(self):
        assert LouvainDetector().name == "Louvain"

    def test_planted_blocks_partitioned(self):
        graph = BipartiteGraph()
        make_biclique(graph, 5, 5, user_prefix="au", item_prefix="ai")
        make_biclique(graph, 5, 5, user_prefix="bu", item_prefix="bi")
        result = LouvainDetector(min_users=5, min_items=5, seed=0).detect(graph)
        assert len(result.groups) == 2
        for group in result.groups:
            prefixes = {str(u)[0] for u in group.users}
            assert len(prefixes) == 1  # blocks not mixed

    def test_floors_filter_small_communities(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        result = LouvainDetector(min_users=5, min_items=5).detect(graph)
        assert not result.groups

    def test_empty_graph(self, empty_graph):
        result = LouvainDetector().detect(empty_graph)
        assert not result.suspicious_users

    def test_covers_attack_workers(self, small):
        result = LouvainDetector(min_users=5, min_items=5).detect(small.graph)
        covered = result.suspicious_users & small.truth.abnormal_users
        assert len(covered) >= 0.5 * len(small.truth.abnormal_users)


class TestEnumerateBicliques:
    def test_finds_planted_biclique(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 4, 4)
        found = enumerate_bicliques(graph, 4, 4, deadline_seconds=5.0)
        assert any(u == set(users) and set(items) <= i for u, i in found)

    def test_respects_size_floors(self):
        graph = BipartiteGraph()
        make_biclique(graph, 2, 6)
        found = enumerate_bicliques(graph, 3, 3, deadline_seconds=2.0)
        assert found == []

    def test_deadline_is_honoured(self, small):
        start = time.perf_counter()
        enumerate_bicliques(small.graph, 2, 2, deadline_seconds=0.2, max_results=10**9)
        assert time.perf_counter() - start < 2.0

    def test_max_results_cap(self):
        graph = BipartiteGraph()
        make_biclique(graph, 6, 6)
        found = enumerate_bicliques(graph, 2, 2, deadline_seconds=5.0, max_results=3)
        assert len(found) <= 3

    def test_maximality_no_duplicate_bicliques(self):
        graph = BipartiteGraph()
        make_biclique(graph, 4, 4)
        found = enumerate_bicliques(graph, 2, 2, deadline_seconds=5.0)
        keys = [
            (tuple(sorted(map(str, u))), tuple(sorted(map(str, i)))) for u, i in found
        ]
        assert len(keys) == len(set(keys))


class TestCopyCatch:
    def test_name(self):
        assert CopyCatchDetector().name == "COPYCATCH"

    def test_planted_biclique_detected(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 5, 5)
        graph.add_click("noise", "elsewhere", 1)
        result = CopyCatchDetector(
            min_users=5, min_items=5, deadline_seconds=5.0
        ).detect(graph)
        assert set(users) <= result.suspicious_users

    def test_tiny_deadline_degrades_gracefully(self, small):
        result = CopyCatchDetector(
            min_users=5, min_items=5, deadline_seconds=0.01
        ).detect(small.graph)
        assert isinstance(result.suspicious_users, set)  # may be empty

    def test_input_untouched(self, tiny):
        before = tiny.graph.copy()
        CopyCatchDetector(min_users=4, min_items=4, deadline_seconds=1.0).detect(
            tiny.graph
        )
        assert tiny.graph == before
