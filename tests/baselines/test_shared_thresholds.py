"""The "+UI" wrapper derives thresholds through the shared memoized resolver.

Before the pipeline refactor every :class:`WithScreening` call re-ran
``pareto_hot_threshold`` / ``t_click_from_graph`` from scratch, so a
Fig. 8 suite recomputed the marketplace statistics once per baseline.
Now resolution routes through
:func:`repro.pipeline.stages.shared_thresholds`, whose version-keyed memo
derives them once per graph state.
"""

from dataclasses import dataclass

import repro.pipeline.stages as stages_module
from repro.baselines import WithScreening
from repro.core.groups import DetectionResult


@dataclass
class _NullInner:
    """A grouped detector that finds nothing (threshold use is the test)."""

    name: str = "Null"

    def detect(self, graph):
        return DetectionResult()


class TestSharedThresholdResolution:
    def test_suite_of_wrappers_derives_once_per_graph_state(self, small, monkeypatch):
        calls = {"t_hot": 0, "t_click": 0}
        real_hot = stages_module.pareto_hot_threshold
        real_click = stages_module.t_click_from_graph

        def counting_hot(graph):
            calls["t_hot"] += 1
            return real_hot(graph)

        def counting_click(graph):
            calls["t_click"] += 1
            return real_click(graph)

        monkeypatch.setattr(stages_module, "pareto_hot_threshold", counting_hot)
        monkeypatch.setattr(stages_module, "t_click_from_graph", counting_click)

        # A fresh copy guarantees a cold memo regardless of test order.
        graph = small.graph.copy()
        WithScreening(_NullInner()).detect(graph)
        WithScreening(_NullInner(name="Null2")).detect(graph)
        assert calls == {"t_hot": 1, "t_click": 1}

    def test_mutation_triggers_rederivation(self, small, monkeypatch):
        calls = {"n": 0}
        real_hot = stages_module.pareto_hot_threshold

        def counting_hot(graph):
            calls["n"] += 1
            return real_hot(graph)

        monkeypatch.setattr(stages_module, "pareto_hot_threshold", counting_hot)
        graph = small.graph.copy()
        WithScreening(_NullInner()).detect(graph)
        graph.add_click("fresh_user", "fresh_item", 3)
        WithScreening(_NullInner()).detect(graph)
        assert calls["n"] == 2

    def test_explicit_thresholds_skip_derivation(self, small, monkeypatch):
        def forbidden(graph):  # pragma: no cover - must never run
            raise AssertionError("explicit thresholds must not derive")

        monkeypatch.setattr(stages_module, "pareto_hot_threshold", forbidden)
        monkeypatch.setattr(stages_module, "t_click_from_graph", forbidden)
        wrapper = WithScreening(_NullInner(), t_hot=60.0, t_click=12.0)
        result = wrapper.detect(small.graph.copy())
        assert result.suspicious_users == set()
