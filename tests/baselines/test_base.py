"""Tests for the detector protocol plumbing."""

from repro.baselines import Detector, LabelPropagationDetector, NaiveDetector
from repro.baselines.base import groups_from_communities
from repro.core.framework import RICDDetector


class TestGroupsFromCommunities:
    def test_size_floors(self):
        communities = [
            ({"u1", "u2", "u3"}, {"i1", "i2"}),
            ({"u4"}, {"i3", "i4", "i5"}),
            ({"u5", "u6"}, {"i6"}),
        ]
        groups = groups_from_communities(communities, min_users=2, min_items=2)
        assert len(groups) == 1
        assert groups[0].users == {"u1", "u2", "u3"}

    def test_sorted_largest_first(self):
        communities = [
            ({"a", "b"}, {"x", "y"}),
            ({"c", "d", "e"}, {"z", "w", "v"}),
        ]
        groups = groups_from_communities(communities, min_users=2, min_items=2)
        assert len(groups[0].users) == 3

    def test_empty_input(self):
        assert groups_from_communities([], 1, 1) == []

    def test_sets_copied(self):
        users = {"u1", "u2"}
        groups = groups_from_communities([(users, {"i1", "i2"})], 2, 2)
        groups[0].users.add("extra")
        assert "extra" not in users


class TestProtocol:
    def test_detectors_satisfy_protocol(self):
        for detector in (
            RICDDetector(),
            LabelPropagationDetector(),
            NaiveDetector(),
        ):
            assert isinstance(detector, Detector)
            assert isinstance(detector.name, str)

    def test_arbitrary_object_fails_protocol(self):
        class NotADetector:
            pass

        assert not isinstance(NotADetector(), Detector)
