"""Cross-module integration tests: the full pipeline, end to end."""

import pytest

import repro
from repro import (
    RICDDetector,
    RICDParams,
    read_click_table,
    small_scenario,
    write_click_table,
)
from repro.eval import node_metrics


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_detection_quality_across_seeds(self, seed):
        """The detector must be robust to the generator's randomness."""
        scenario = small_scenario(seed=seed)
        result = RICDDetector(params=RICDParams(k1=5, k2=5)).detect(scenario.graph)
        metrics = node_metrics(
            result.suspicious_users,
            result.suspicious_items,
            scenario.truth.abnormal_users,
            scenario.truth.abnormal_items,
        )
        assert metrics.precision >= 0.6, f"seed {seed}: precision {metrics.precision}"
        assert metrics.recall >= 0.25, f"seed {seed}: recall {metrics.recall}"

    def test_detection_through_file_round_trip(self, tmp_path, small):
        """CSV export -> import -> detect gives identical output."""
        path = tmp_path / "clicks.csv"
        write_click_table(small.graph, path)
        reloaded = read_click_table(path)
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        direct = detector.detect(small.graph)
        via_file = detector.detect(reloaded)
        assert direct.suspicious_users == via_file.suspicious_users
        assert direct.suspicious_items == via_file.suspicious_items

    def test_detection_is_deterministic(self, small):
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        first = detector.detect(small.graph)
        second = detector.detect(small.graph)
        assert first.suspicious_users == second.suspicious_users
        assert first.user_scores == second.user_scores
        assert [g.users for g in first.groups] == [g.users for g in second.groups]

    def test_no_attacks_no_findings(self):
        """A clean marketplace must produce (nearly) nothing."""
        from repro.datagen import AttackConfig, MarketplaceConfig, generate_scenario

        clean = generate_scenario(
            MarketplaceConfig(
                n_users=3_000,
                n_items=700,
                n_cohorts=4,
                cohort_users=(12, 25),
                cohort_items=(8, 12),
                n_superfans=30,
                superfan_clicks=(12, 18),
                n_swarms=0,
                seed=5,
            ),
            AttackConfig(n_groups=0, seed=6),
        )
        result = RICDDetector(params=RICDParams(k1=5, k2=5)).detect(clean.graph)
        # Cohorts and superfans are organic; a handful of coincidental
        # flags is tolerable, a flood is not.
        assert len(result.suspicious_users) <= 10

    def test_seeded_detection_is_cheaper(self, small):
        """Seed expansion (Algorithm 2) restricts work to a neighbourhood."""
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        seed_worker = small.truth.groups[0].workers[0]
        seeded = detector.detect(small.graph, seed_users=[seed_worker])
        full = detector.detect(small.graph)
        assert seeded.timings["detection"] <= full.timings["detection"] * 1.5

    def test_recommender_attack_detect_clean_cycle(self, small):
        """The README story: measure lift, detect, clean, verify restoration."""
        from repro.recsys import attack_impact, remove_fake_clicks

        group = max(small.truth.groups, key=lambda g: len(g.workers))
        clean = remove_fake_clicks(small.graph, [group])
        impact = attack_impact(clean, small.graph, group, k=10)
        assert impact.mean_score_after >= impact.mean_score_before

        result = RICDDetector(params=RICDParams(k1=5, k2=5)).detect(small.graph)
        flagged_edges = [
            (user, item, clicks)
            for user, item, clicks in group.fake_edges
            if user in result.suspicious_users
        ]
        if flagged_edges:  # detection-dependent, but cleanup must not break
            cleaned = small.graph.copy()
            for user, item, clicks in flagged_edges:
                cleaned.set_click(
                    user, item, max(0, cleaned.get_click(user, item) - clicks)
                )
            assert cleaned.total_clicks < small.graph.total_clicks
