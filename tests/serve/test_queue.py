"""The bounded queue: capacity, oldest-first shed, conservation accounting."""

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.serve import BoundedEventQueue, ClickEvent

pytestmark = pytest.mark.servetest


def events(n, prefix="e"):
    return [ClickEvent(f"u{i}", f"{prefix}{i}", 1, float(i)) for i in range(n)]


def test_capacity_must_be_positive():
    with pytest.raises(ConfigError):
        BoundedEventQueue(0)


def test_fifo_drain_order():
    queue = BoundedEventQueue(capacity=10)
    queue.submit_many(events(5))
    assert [event.item for event in queue.drain()] == ["e0", "e1", "e2", "e3", "e4"]


def test_depth_never_exceeds_capacity():
    queue = BoundedEventQueue(capacity=3)
    for event in events(10):
        queue.submit(event)
        assert len(queue) <= 3
    assert len(queue) == 3


def test_overflow_sheds_oldest_first():
    queue = BoundedEventQueue(capacity=3)
    queue.submit_many(events(5))
    # e0 and e1 (the oldest) were shed; the window slid forward.
    assert [event.item for event in queue.drain()] == ["e2", "e3", "e4"]
    assert queue.stats().shed == 2


def test_conservation_identity_holds_at_every_step():
    queue = BoundedEventQueue(capacity=4)
    for i, event in enumerate(events(20)):
        queue.submit(event)
        if i % 3 == 0:
            queue.drain(2)
        assert queue.stats().balanced
    queue.drain()
    stats = queue.stats()
    assert stats.balanced
    assert stats.submitted == 20
    assert stats.depth == 0
    assert stats.submitted == stats.drained + stats.shed


def test_shed_events_counter_accounts_for_every_loss():
    queue = BoundedEventQueue(capacity=2)
    recorder = obs.Recorder()
    with obs.recording(recorder):
        queue.submit_many(events(7))
    assert recorder.counters["serve.shed_events"] == 5
    assert queue.stats().shed == 5


def test_drain_respects_max_events():
    queue = BoundedEventQueue(capacity=10)
    queue.submit_many(events(6))
    assert len(queue.drain(4)) == 4
    assert len(queue) == 2
    assert len(queue.drain(100)) == 2


def test_requeue_front_restores_order_and_counters():
    queue = BoundedEventQueue(capacity=10)
    queue.submit_many(events(5))
    batch = queue.drain(3)
    queue.requeue_front(batch)
    stats = queue.stats()
    assert stats.drained == 0  # rolled back: the batch was never applied
    assert stats.balanced
    assert [event.item for event in queue.drain()] == ["e0", "e1", "e2", "e3", "e4"]


def test_requeue_front_over_capacity_sheds_the_requeued_oldest():
    queue = BoundedEventQueue(capacity=3)
    queue.submit_many(events(3))
    batch = queue.drain(3)
    # Fresh traffic refilled the queue while the failed batch was out.
    queue.submit_many(events(3, prefix="f"))
    queue.requeue_front(batch)
    stats = queue.stats()
    assert stats.balanced
    assert stats.shed == 3
    # The survivors are the freshest traffic, in order.
    assert [event.item for event in queue.drain()] == ["f0", "f1", "f2"]
