"""Detection-as-a-service: the typed API core and the HTTP transport.

The HTTP tests bind real sockets on port 0 and drive the service with
explicit ``pump``/``checkpoint`` calls on a :class:`SimulatedClock` — no
test here sleeps on the wall clock.  The restart class pins the
headline contract: submit clicks, query a verdict, restart the server
process on the same store, get the same verdict at the same store
version.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.config import RICDParams
from repro.datagen import tiny_scenario
from repro.serve import (
    ApiError,
    DetectionAPI,
    DetectionService,
    ResultRequest,
    ServeConfig,
    SimulatedClock,
    StalenessPolicy,
    SubmitClicksRequest,
    VerdictRequest,
    serve_api,
)

pytestmark = pytest.mark.servertest

PARAMS = RICDParams(k1=4, k2=4)


@pytest.fixture(scope="module")
def scenario_records():
    graph = tiny_scenario().graph
    return [
        (str(user), str(item), graph.get_click(user, item))
        for user in sorted(graph.users(), key=str)
        for item in sorted(graph.user_neighbors(user), key=str)
    ]


def make_service(store_root):
    return DetectionService.from_store(
        store_root,
        params=PARAMS,
        engine="reference",
        config=ServeConfig(staleness=StalenessPolicy(max_batches=10**9)),
        clock=SimulatedClock(),
    )


def http(port, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRequestParsing:
    def test_records_coerced_and_validated(self):
        request = SubmitClicksRequest.from_json(
            {"records": [[1, 2, "3"]], "pump": True}
        )
        assert request.records == (("1", "2", 3),)
        assert request.pump

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"records": [["u", "i"]]},
            {"records": [["u", "i", "many"]]},
            {"records": [["u", "i", 0]]},
            {"records": [["u", "i", -2]]},
        ],
    )
    def test_bad_payloads_raise_api_errors(self, payload):
        with pytest.raises(ApiError):
            SubmitClicksRequest.from_json(payload)

    def test_verdict_side_validated(self):
        with pytest.raises(ApiError):
            VerdictRequest(side="shop", node="u1")


class TestTypedCore:
    """The DetectionAPI without any HTTP in the loop."""

    @pytest.fixture()
    def api(self, tmp_path, scenario_records):
        api = DetectionAPI(make_service(tmp_path / "store"))
        api.submit_clicks(SubmitClicksRequest(records=tuple(scenario_records), pump=True))
        api.checkpoint()
        return api

    def test_submit_reports_applied_and_version(self, tmp_path):
        api = DetectionAPI(make_service(tmp_path / "store"))
        response = api.submit_clicks(
            SubmitClicksRequest(records=(("u", "i", 2),), pump=True)
        )
        assert response.accepted == 1 and response.applied == 1
        assert response.queue_depth == 0
        assert response.store_version == 1

    def test_verdict_flags_planted_workers(self, api):
        result = api.service.result
        assert result.suspicious_users, "tiny scenario must trip detection"
        worker = str(next(iter(result.suspicious_users)))
        verdict = api.verdict(VerdictRequest(side="user", node=worker))
        assert verdict.suspicious
        assert verdict.score is not None and verdict.score > 0
        assert verdict.groups  # member of at least one flagged group
        assert verdict.store_version == api.service.store_version

    def test_verdict_clears_unknown_node(self, api):
        verdict = api.verdict(VerdictRequest(side="user", node="nobody-here"))
        assert not verdict.suspicious
        assert verdict.score is None and verdict.groups == ()

    def test_group_verdict_composition(self, api):
        result = api.service.result
        group = api.group(0)
        assert group.users == tuple(sorted(str(u) for u in result.groups[0].users))
        with pytest.raises(ApiError) as excinfo:
            api.group(len(result.groups))
        assert excinfo.value.status == 404

    def test_live_and_versioned_result_agree_at_head(self, api):
        live = api.result(ResultRequest())
        stored = api.result(ResultRequest(version=live.store_version))
        assert live.live and not stored.live
        assert live.result["suspicious_users"] == stored.result["suspicious_users"]

    def test_missing_version_is_a_404(self, api):
        with pytest.raises(ApiError) as excinfo:
            api.result(ResultRequest(version=999))
        assert excinfo.value.status == 404

    def test_status_reports_store_and_graph(self, api):
        status = api.status()
        assert status.store_version in status.store_versions
        assert status.num_users > 0 and status.num_edges > 0
        assert status.level == "normal"


class TestHTTPServer:
    @pytest.fixture()
    def served(self, tmp_path, scenario_records):
        service = make_service(tmp_path / "store")
        server, thread = serve_api(service)
        port = server.server_address[1]
        http(port, "POST", "/v1/clicks", {"records": scenario_records, "pump": True})
        http(port, "POST", "/v1/checkpoint")
        yield service, port
        server.shutdown()

    def test_submit_then_verdict_over_http(self, served):
        service, port = served
        worker = str(next(iter(service.result.suspicious_users)))
        status, verdict = http(port, "GET", f"/v1/verdict/user/{worker}")
        assert status == 200
        assert verdict["suspicious"] is True
        assert verdict["store_version"] == service.store_version

    def test_pump_endpoint_drains_one_batch(self, served):
        service, port = served
        http(port, "POST", "/v1/clicks", {"records": [["x", "y", 1]]})
        status, report = http(port, "POST", "/v1/pump")
        assert status == 200
        assert report["applied"] == 1 and report["queue_depth"] == 0

    def test_status_and_result_round_trip(self, served):
        service, port = served
        status_code, status = http(port, "GET", "/v1/status")
        assert status_code == 200
        assert status["store_version"] == service.store_version
        _, live = http(port, "GET", "/v1/result")
        _, stored = http(port, "GET", f"/v1/result/{live['store_version']}")
        assert live["result"]["suspicious_users"] == stored["result"]["suspicious_users"]

    @pytest.mark.parametrize(
        "method, path, expected",
        [
            ("GET", "/v1/nope", 404),
            ("GET", "/nope", 404),
            ("GET", "/v1/verdict/shop/u1", 400),
            ("GET", "/v1/result/not-a-number", 400),
            ("GET", "/v1/verdict/group/999", 404),
            ("POST", "/v1/verdict/user/u1", 404),
        ],
    )
    def test_error_routing(self, served, method, path, expected):
        _, port = served
        status, body = http(port, method, path, {} if method == "POST" else None)
        assert status == expected
        assert "error" in body

    def test_malformed_json_body_is_a_400(self, served):
        _, port = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/clicks",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestRestartContract:
    """Same store, new process: same verdict at the same graph version."""

    def test_verdicts_survive_a_server_restart(self, tmp_path, scenario_records):
        service = make_service(tmp_path / "store")
        server, _ = serve_api(service)
        port = server.server_address[1]
        http(port, "POST", "/v1/clicks", {"records": scenario_records, "pump": True})
        http(port, "POST", "/v1/checkpoint")
        workers = sorted(str(u) for u in service.result.suspicious_users)
        assert workers
        before = {
            worker: http(port, "GET", f"/v1/verdict/user/{worker}")[1]
            for worker in workers
        }
        _, result_before = http(port, "GET", "/v1/result")
        server.shutdown()

        # "Restart": a fresh service + server over the same store root.
        restarted = make_service(tmp_path / "store")
        server2, _ = serve_api(restarted)
        port2 = server2.server_address[1]
        for worker, old in before.items():
            status, new = http(port2, "GET", f"/v1/verdict/user/{worker}")
            assert status == 200
            assert new["suspicious"] == old["suspicious"] is True
            assert new["store_version"] == old["store_version"]
            assert new["score"] == pytest.approx(old["score"])
            assert new["groups"] == old["groups"]
        _, result_after = http(port2, "GET", "/v1/result")
        assert result_after["store_version"] == result_before["store_version"]
        assert (
            result_after["result"]["suspicious_users"]
            == result_before["result"]["suspicious_users"]
        )
        server2.shutdown()

    def test_restarted_store_versions_continue_monotonically(self, tmp_path):
        service = make_service(tmp_path / "store")
        api = DetectionAPI(service)
        api.submit_clicks(SubmitClicksRequest(records=(("u", "i", 2),), pump=True))
        head = api.checkpoint().store_version

        restarted = DetectionAPI(make_service(tmp_path / "store"))
        assert restarted.status().store_version == head
        restarted.submit_clicks(SubmitClicksRequest(records=(("u2", "i", 1),), pump=True))
        assert restarted.checkpoint().store_version > head
