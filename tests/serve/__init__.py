"""Online-service suite: clock, queue, scheduler, service, backpressure.

Everything here drives :mod:`repro.serve` through a
:class:`~repro.serve.SimulatedClock`, so the whole suite is deterministic
and wall-clock free — zero ``time.sleep`` calls, including the threaded
pump-loop tests (the simulated clock's ``sleep`` advances instead of
blocking).
"""
