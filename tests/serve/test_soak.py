"""Bounded soak: 30 simulated seconds of traffic under ingest faults.

The CI ``servetest`` entry re-runs this module with ``RICD_FAULTS``
exported (``sites=ingest``), so the ambient-environment injection path is
exercised too; standalone runs install their own injector.  Either way
the soak is wall-clock free — the 30 seconds are simulated — and the
exit criteria are conservation (no click lost to a fault) and full
recovery to a batch-equal state once injection stops.
"""

import contextlib
import os
import random

import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.graph import BipartiteGraph
from repro.resilience import faults
from repro.serve import DetectionService, ServeConfig, SimulatedClock, StalenessPolicy

from ..shard.canon import canonical_result

pytestmark = pytest.mark.servetest

PARAMS = RICDParams(k1=4, k2=4)

STEP_SECONDS = 0.05
SOAK_SECONDS = 30.0
EVENTS_PER_STEP = 2


def test_soak_under_ingest_faults_conserves_and_recovers():
    ambient = os.environ.get("RICD_FAULTS")
    scope = (
        contextlib.nullcontext()
        if ambient
        else faults.injecting("error=0.25,sites=ingest,seed=11")
    )
    clock = SimulatedClock()
    service = DetectionService.over_graph(
        BipartiteGraph(),
        params=PARAMS,
        engine="reference",
        config=ServeConfig(
            queue_capacity=200,
            max_batch=25,
            staleness=StalenessPolicy(max_dirty=None, max_batches=20, max_age=5.0),
        ),
        clock=clock,
    )
    rng = random.Random(2026)
    steps = int(SOAK_SECONDS / STEP_SECONDS)
    faulted_pumps = 0
    with scope:
        for step in range(steps):
            clock.advance(STEP_SECONDS)
            for _ in range(EVENTS_PER_STEP):
                service.submit(
                    f"u{rng.randrange(60)}", f"i{rng.randrange(24)}", rng.randint(1, 3)
                )
            report = service.pump()
            faulted_pumps += int(report.ingest_fault)
            stats = service.queue.stats()
            assert stats.balanced
            assert stats.depth <= service.config.queue_capacity
        assert clock.now() >= SOAK_SECONDS

    # Injection over (the ambient env injector is silenced too): the
    # backlog a total-failure spec may have pinned in the queue drains.
    faults.install(None)
    try:
        final = service.checkpoint()
    finally:
        faults.reset()

    snapshot = service.snapshot()
    submitted = steps * EVENTS_PER_STEP
    assert snapshot.queue.submitted == submitted
    assert snapshot.queue.depth == 0
    # Conservation through every fault: ingested + shed == submitted.
    assert snapshot.applied + snapshot.queue.shed == submitted
    assert snapshot.rechecks >= 1
    if not ambient:
        assert faulted_pumps > 0  # the soak actually soaked

    # Recovery: the post-fault state is batch-equal on the live graph.
    expected = RICDDetector(params=PARAMS, engine="reference").detect(service.online.graph)
    assert canonical_result(final) == canonical_result(expected)
