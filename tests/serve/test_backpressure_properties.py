"""Property-based backpressure invariants (Hypothesis).

A deterministic in-test mirror of the queue's ring-buffer semantics
predicts, for any interleaving of submits and pumps, exactly which
events survive shedding.  Against that model the suite pins:

* depth never exceeds capacity, at every step;
* the shed counter is monotone and matches the model exactly;
* the final unbounded drain converges to the batch result over the
  model's surviving events — nothing lost, nothing invented.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.graph import BipartiteGraph
from repro.serve import DetectionService, ServeConfig, SimulatedClock, StalenessPolicy

from ..shard.canon import canonical_result

pytestmark = pytest.mark.servetest

PARAMS = RICDParams(k1=4, k2=4)

submits = st.tuples(
    st.just("submit"),
    st.integers(min_value=0, max_value=4),   # user id
    st.integers(min_value=0, max_value=3),   # item id
    st.integers(min_value=1, max_value=3),   # clicks
)
operations = st.lists(
    st.one_of(submits, st.just(("pump",))), min_size=1, max_size=60
)


@settings(max_examples=30, deadline=None)
@given(
    ops=operations,
    capacity=st.integers(min_value=1, max_value=8),
    max_batch=st.integers(min_value=1, max_value=4),
)
def test_queue_invariants_and_final_convergence(ops, capacity, max_batch):
    service = DetectionService.over_graph(
        BipartiteGraph(),
        params=PARAMS,
        engine="reference",
        config=ServeConfig(
            queue_capacity=capacity,
            max_batch=max_batch,
            staleness=StalenessPolicy(max_batches=3),
        ),
        clock=SimulatedClock(),
    )
    # The deterministic mirror: same ring-buffer semantics, plain data.
    model_queue: deque = deque()
    model_applied: list = []
    model_shed = 0

    for op in ops:
        if op[0] == "submit":
            _, user_id, item_id, clicks = op
            service.submit(f"u{user_id}", f"i{item_id}", clicks)
            model_queue.append((f"u{user_id}", f"i{item_id}", clicks))
            if len(model_queue) > capacity:
                model_queue.popleft()
                model_shed += 1
        else:
            service.pump()
            model_applied.extend(
                model_queue.popleft() for _ in range(min(max_batch, len(model_queue)))
            )
        stats = service.queue.stats()
        assert stats.depth <= capacity
        assert stats.balanced
        assert stats.shed == model_shed  # monotone by construction

    # Final unbounded drain: whatever survived shedding is applied.
    final = service.checkpoint()
    model_applied.extend(model_queue)
    model_queue.clear()
    snapshot = service.snapshot()
    assert snapshot.queue.depth == 0
    assert snapshot.applied == len(model_applied)
    assert snapshot.applied + snapshot.queue.shed == snapshot.queue.submitted

    reference_graph = BipartiteGraph()
    for user, item, clicks in model_applied:
        reference_graph.add_click(user, item, clicks)
    assert sorted(service.online.graph.edges()) == sorted(reference_graph.edges())
    expected = RICDDetector(params=PARAMS, engine="reference").detect(reference_graph)
    assert canonical_result(final) == canonical_result(expected)
