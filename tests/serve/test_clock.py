"""The injectable clock seam: protocol conformance and simulated stepping."""

import threading

import pytest

from repro.serve import Clock, MonotonicClock, SimulatedClock

pytestmark = pytest.mark.servetest


def test_both_clocks_satisfy_the_protocol():
    assert isinstance(MonotonicClock(), Clock)
    assert isinstance(SimulatedClock(), Clock)


def test_simulated_clock_starts_where_told():
    assert SimulatedClock().now() == 0.0
    assert SimulatedClock(start=100.0).now() == 100.0


def test_advance_moves_time_and_returns_new_now():
    clock = SimulatedClock()
    assert clock.advance(2.5) == 2.5
    assert clock.advance(0.5) == 3.0
    assert clock.now() == 3.0


def test_advance_rejects_negative_steps():
    clock = SimulatedClock(start=5.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    assert clock.now() == 5.0


def test_advance_to_is_monotone():
    clock = SimulatedClock()
    assert clock.advance_to(10.0) == 10.0
    # Moving "back" is a no-op, never a rewind.
    assert clock.advance_to(4.0) == 10.0
    assert clock.now() == 10.0


def test_sleep_advances_instead_of_blocking():
    clock = SimulatedClock()
    clock.sleep(1.5)
    assert clock.now() == 1.5
    clock.sleep(0.0)
    clock.sleep(-3.0)  # non-positive sleeps are no-ops, like time.sleep(0)
    assert clock.now() == 1.5


def test_simulated_clock_is_thread_safe():
    clock = SimulatedClock()
    steps = 200

    def stepper():
        for _ in range(steps):
            clock.advance(1.0)

    threads = [threading.Thread(target=stepper) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert clock.now() == 4 * steps


def test_monotonic_clock_moves_forward_without_sleeping():
    clock = MonotonicClock()
    first = clock.now()
    clock.sleep(0)  # must not block
    assert clock.now() >= first
