"""The detection service end to end: pump, recheck cadence, ladder, faults.

Every test drives the service in pump mode (or thread mode) on a
:class:`SimulatedClock` — no test here ever sleeps on the wall clock.
"""

import pytest

from repro import obs
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.errors import ConfigError
from repro.graph import BipartiteGraph
from repro.resilience.faults import injecting
from repro.serve import (
    DetectionService,
    ServeConfig,
    SimulatedClock,
    StalenessPolicy,
)

from ..shard.canon import canonical_result

pytestmark = pytest.mark.servetest

PARAMS = RICDParams(k1=4, k2=4)


class TickingClock(SimulatedClock):
    """A simulated clock that advances ``step`` on every ``now()`` read.

    Lets a test make a recheck "take" simulated time (each internal clock
    read moves the clock), so clock-anchored budgets can expire without
    any wall-clock involvement.
    """

    def __init__(self, step: float):
        super().__init__()
        self.step = step

    def now(self) -> float:
        value = super().now()
        self.advance(self.step)
        return value


def make_service(clock=None, **config_kwargs):
    config_kwargs.setdefault("staleness", StalenessPolicy(max_batches=10**9))
    return DetectionService.over_graph(
        BipartiteGraph(),
        params=PARAMS,
        engine="reference",
        config=ServeConfig(**config_kwargs),
        clock=clock or SimulatedClock(),
    )


def submit_burst(service, n, clicks=1, prefix="u"):
    for i in range(n):
        service.submit(f"{prefix}{i}", f"i{i % 5}", clicks)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_batch": 0},
        {"coarse_factor": 1},
        {"high_watermark": 1.5},
        {"low_watermark": 0.9, "high_watermark": 0.5},
        {"recheck_budget": 0.0},
        {"poll_interval": 0.0},
    ],
)
def test_config_rejects_degenerate_envelopes(kwargs):
    with pytest.raises(ConfigError):
        ServeConfig(**kwargs)


# ----------------------------------------------------------------------
# Pump + recheck cadence
# ----------------------------------------------------------------------
def test_pump_drains_at_most_max_batch():
    service = make_service(max_batch=3)
    submit_burst(service, 7)
    assert service.pump().applied == 3
    assert service.pump().applied == 3
    assert service.pump().applied == 1
    assert service.pump().applied == 0


def test_batch_bound_fires_at_the_exact_pump():
    service = make_service(staleness=StalenessPolicy(max_batches=3), max_batch=1)
    submit_burst(service, 3)
    assert service.pump().recheck_reason is None
    assert service.pump().recheck_reason is None
    report = service.pump()
    assert report.recheck_reason == "batches"
    assert service.online.batches_since_recheck == 0


def test_dirty_bound_fires_when_region_grows_past_it():
    service = make_service(staleness=StalenessPolicy(max_dirty=6, max_batches=None), max_batch=2)
    submit_burst(service, 4)  # 4 users + up to 4 items dirty
    first = service.pump()   # 2 users + <=2 items dirty: below the bound
    assert first.recheck_reason is None
    second = service.pump()  # region now >= 6 nodes
    assert second.recheck_reason == "dirty"
    assert service.online.dirty_size == 0


def test_age_bound_fires_on_an_idle_pump():
    clock = SimulatedClock()
    service = make_service(
        clock=clock, staleness=StalenessPolicy(max_batches=None, max_age=60.0)
    )
    submit_burst(service, 2)
    assert service.pump().recheck_reason is None
    clock.advance(60.0)
    # No new traffic: the idle pump still notices the aged dirty region.
    report = service.pump()
    assert report.applied == 0
    assert report.recheck_reason == "age"
    assert service.recheck_lags[-1] >= 60.0


def test_no_recheck_while_nothing_is_dirty():
    service = make_service(staleness=StalenessPolicy(max_batches=1))
    assert service.pump().recheck_reason is None
    assert service.snapshot().rechecks == 0


# ----------------------------------------------------------------------
# Conservation: no event silently lost
# ----------------------------------------------------------------------
def test_ingested_plus_shed_equals_submitted():
    service = make_service(queue_capacity=10, max_batch=4)
    submit_burst(service, 50)
    service.drain()
    snapshot = service.snapshot()
    assert snapshot.queue.depth == 0
    assert snapshot.applied + snapshot.queue.shed == snapshot.queue.submitted == 50
    assert snapshot.queue.shed == 40  # capacity 10: the window kept the tail


def test_drain_is_idempotent():
    service = make_service(max_batch=5)
    submit_burst(service, 12)
    first = service.drain()
    again = service.drain()
    assert canonical_result(first) == canonical_result(again)
    assert service.snapshot().applied == 12
    assert service.online.dirty_size == 0


def test_stop_without_start_is_a_safe_drain():
    service = make_service()
    submit_burst(service, 3)
    service.stop(drain=True)
    service.stop(drain=True)  # idempotent
    assert service.snapshot().applied == 3


def test_thread_mode_start_stop_is_deterministic_under_simulated_clock():
    clock = SimulatedClock()
    service = make_service(clock=clock, max_batch=2)
    service.start()
    service.start()  # second start is a no-op
    submit_burst(service, 9)
    result = service.stop(drain=True)
    snapshot = service.snapshot()
    assert snapshot.applied + snapshot.queue.shed == snapshot.queue.submitted == 9
    assert snapshot.queue.depth == 0
    assert result is service.online.current_result
    # The idle pump loop parked on clock.sleep: simulated time moved,
    # the wall clock did not (nothing here ever calls time.sleep).
    assert clock.now() >= 0.0


# ----------------------------------------------------------------------
# Checkpoint parity
# ----------------------------------------------------------------------
def test_checkpoint_equals_one_shot_batch_detection():
    from repro.datagen import tiny_scenario

    scenario = tiny_scenario()
    service = make_service(max_batch=500)
    for user, item, clicks in scenario.graph.edges():
        service.submit(user, item, clicks)
    streamed = service.checkpoint()
    expected = RICDDetector(params=PARAMS, engine="reference").detect(service.online.graph)
    assert canonical_result(streamed) == canonical_result(expected)
    assert streamed.suspicious_users  # the planted attack actually trips detection


# ----------------------------------------------------------------------
# Fault injection at the ingest site
# ----------------------------------------------------------------------
def test_ingest_fault_requeues_the_batch_and_retries():
    service = make_service(max_batch=5)
    submit_burst(service, 5)
    with injecting("error=1.0,sites=ingest,max=1"):
        report = service.pump()
        assert report.ingest_fault
        assert report.applied == 0
        # The batch went back to pending: nothing lost, nothing applied.
        assert len(service.queue) == 5
        assert service.snapshot().applied == 0
        retry = service.pump()  # injector exhausted (max=1): retry lands
    assert not retry.ingest_fault
    assert retry.applied == 5
    snapshot = service.snapshot()
    assert snapshot.applied == 5
    assert snapshot.queue.balanced


def test_recheck_fault_serves_previous_result_marked_stale():
    service = make_service(staleness=StalenessPolicy(max_batches=1))
    submit_burst(service, 3)
    with injecting("error=1.0,sites=recheck,max=1"):
        service.pump()
    snapshot = service.snapshot()
    assert snapshot.result.stale
    assert snapshot.degraded
    assert "serve.recheck_failed" in snapshot.provenance
    # The dirty region survived the failed pass; the next recheck covers it.
    assert service.online.dirty_size > 0
    service.drain()
    assert not service.snapshot().result.stale
    assert service.online.dirty_size == 0


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def test_sustained_pressure_walks_the_ladder_one_level_per_pump():
    service = make_service(queue_capacity=10, max_batch=1, staleness=StalenessPolicy(max_batches=10**9))
    submit_burst(service, 10)  # depth 10 >= high watermark (8)
    assert service.pump().level == "coarse"
    submit_burst(service, 2)   # keep depth at the watermark
    assert service.pump().level == "stale"
    snapshot = service.snapshot()
    assert snapshot.degraded
    assert "serve.ladder.coarse" in snapshot.provenance
    assert "serve.ladder.stale" in snapshot.provenance


def test_coarse_level_scales_the_staleness_bounds():
    service = make_service(
        queue_capacity=20,
        max_batch=1,
        coarse_factor=4,
        staleness=StalenessPolicy(max_batches=2),
    )
    # Depth sits at exactly the high watermark (16) after the first drain,
    # then decays one per pump but stays above the low watermark (4): one
    # escalation to coarse, no further movement.
    submit_burst(service, 17)
    assert service.pump().level == "coarse"
    # At scale 4 the batch bound is 8, so pumps 2..7 stay recheck-free...
    reasons = [service.pump().recheck_reason for _ in range(6)]
    assert reasons == [None] * 6
    # ...and the 8th batch since the last recheck trips the scaled bound.
    assert service.pump().recheck_reason == "batches"


def test_stale_level_suppresses_rechecks_with_explicit_provenance():
    service = make_service(
        queue_capacity=10, max_batch=1, staleness=StalenessPolicy(max_batches=1)
    )
    submit_burst(service, 20)  # overflow: 10 shed, depth pinned at capacity
    first = service.pump()
    assert first.recheck_reason == "batches"  # level was still normal
    assert first.level == "coarse"            # escalated after the drain
    second = service.pump()
    assert second.level == "stale"            # depth still at the watermark
    # At level 2 the next due recheck (batch bound 1 * coarse_factor 4) is
    # suppressed: the previous result keeps serving, explicitly marked.
    reports = [service.pump() for _ in range(2)]
    assert all(r.recheck_reason is None and not r.recheck_suppressed for r in reports)
    suppressed = service.pump()
    assert suppressed.recheck_suppressed
    assert suppressed.recheck_reason is None
    snapshot = service.snapshot()
    assert snapshot.degraded
    assert "serve.stale" in snapshot.provenance


def test_ladder_deescalates_after_the_queue_drains():
    service = make_service(queue_capacity=10, max_batch=1, staleness=StalenessPolicy(max_batches=1))
    submit_burst(service, 10)
    service.pump()
    assert service.snapshot().level == "coarse"
    # Drain below the low watermark (2); no shed happened, so each idle
    # pump steps the ladder back down one level.
    while len(service.queue) > 0:
        service.pump()
    assert service.snapshot().level == "normal"
    assert "serve.ladder.normal" in service.snapshot().provenance


def test_shed_traffic_marks_the_snapshot_degraded_until_recheck():
    service = make_service(queue_capacity=2, max_batch=2, staleness=StalenessPolicy(max_batches=10**9))
    submit_burst(service, 5)  # sheds 3
    service.pump()
    snapshot = service.snapshot()
    assert snapshot.degraded
    assert "serve.shed" in snapshot.provenance


# ----------------------------------------------------------------------
# Budget-watched rechecks
# ----------------------------------------------------------------------
def test_recheck_over_clock_budget_escalates():
    clock = TickingClock(step=1.0)
    service = make_service(
        clock=clock,
        queue_capacity=10,
        max_batch=2,
        recheck_budget=0.5,
        staleness=StalenessPolicy(max_batches=1),
    )
    # Leave 4 events queued after the pump (above the low watermark 2),
    # so the over-budget escalation is not immediately walked back.
    submit_burst(service, 6)
    report = service.pump()
    assert report.recheck_reason == "batches"
    snapshot = service.snapshot()
    assert "serve.recheck_over_budget" in snapshot.provenance
    assert snapshot.level == "coarse"


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_gauges_and_counters_land_in_the_recorder():
    clock = SimulatedClock()
    service = make_service(clock=clock, staleness=StalenessPolicy(max_batches=2), queue_capacity=3)
    recorder = obs.Recorder()
    with obs.recording(recorder):
        submit_burst(service, 5)  # sheds 2 through the bounded queue
        service.pump()            # batch 1: marks dirty at t=0, no recheck yet
        clock.advance(2.0)
        submit_burst(service, 2, prefix="late")
        service.pump()            # batch 2: recheck fires, region aged 2s
    assert recorder.counters["serve.shed_events"] == 2
    assert recorder.counters["serve.ingested"] == 5
    assert recorder.counters["serve.rechecks"] == 1
    assert recorder.gauges["serve.queue_depth"] == 0
    assert recorder.gauges["serve.dirty_region"] == 0
    assert recorder.gauges["serve.recheck_lag"] == 2.0
    assert recorder.gauges["serve.ladder_level"] == "normal"
    assert recorder.gauges["serve.events_per_s"] > 0
    assert recorder.gauges["serve.recheck_reason"] == "batches"
    assert "serve.recheck" in recorder.spans
