"""Bounded-staleness policy: exact bound boundaries, disabled bounds, scaling."""

import pytest

from repro.errors import ConfigError
from repro.serve import RecheckScheduler, StalenessPolicy

pytestmark = pytest.mark.servetest


def test_policy_requires_at_least_one_bound():
    with pytest.raises(ConfigError):
        StalenessPolicy(max_dirty=None, max_batches=None, max_age=None)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_dirty": 0},
        {"max_batches": 0},
        {"max_age": 0.0},
        {"max_age": -1.0},
    ],
)
def test_policy_rejects_degenerate_bounds(kwargs):
    with pytest.raises(ConfigError):
        StalenessPolicy(**kwargs)


def test_nothing_due_while_dirty_region_is_empty():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=1, max_batches=1, max_age=0.001))
    assert scheduler.due(dirty_size=0, batches_since=99, dirty_age=1e9) is None


def test_dirty_bound_fires_exactly_at_the_boundary():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=10, max_batches=None, max_age=None))
    assert scheduler.due(dirty_size=9, batches_since=0, dirty_age=0.0) is None
    assert scheduler.due(dirty_size=10, batches_since=0, dirty_age=0.0) == "dirty"
    assert scheduler.due(dirty_size=11, batches_since=0, dirty_age=0.0) == "dirty"


def test_batches_bound_fires_exactly_at_the_boundary():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=None, max_batches=5, max_age=None))
    assert scheduler.due(dirty_size=1, batches_since=4, dirty_age=0.0) is None
    assert scheduler.due(dirty_size=1, batches_since=5, dirty_age=0.0) == "batches"


def test_age_bound_fires_exactly_at_the_boundary():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=None, max_batches=None, max_age=60.0))
    assert scheduler.due(dirty_size=1, batches_since=0, dirty_age=59.999) is None
    assert scheduler.due(dirty_size=1, batches_since=0, dirty_age=60.0) == "age"


def test_whichever_bound_trips_first_wins_in_fixed_priority():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=10, max_batches=5, max_age=60.0))
    # Only the size bound tripped.
    assert scheduler.due(dirty_size=10, batches_since=1, dirty_age=1.0) == "dirty"
    # Only the batch bound tripped.
    assert scheduler.due(dirty_size=1, batches_since=5, dirty_age=1.0) == "batches"
    # Only the age bound tripped.
    assert scheduler.due(dirty_size=1, batches_since=1, dirty_age=60.0) == "age"
    # All tripped: reported reason follows dirty > batches > age priority.
    assert scheduler.due(dirty_size=10, batches_since=5, dirty_age=60.0) == "dirty"


def test_disabled_bounds_never_fire():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=None, max_batches=None, max_age=1.0))
    assert scheduler.due(dirty_size=10**9, batches_since=10**9, dirty_age=0.5) is None
    assert scheduler.due(dirty_size=1, batches_since=0, dirty_age=1.0) == "age"


def test_scale_multiplies_every_bound():
    scheduler = RecheckScheduler(StalenessPolicy(max_dirty=10, max_batches=5, max_age=60.0))
    # At scale 4 (the degradation ladder's coarse cadence) the same state
    # that fired at scale 1 is no longer due.
    assert scheduler.due(dirty_size=10, batches_since=5, dirty_age=60.0, scale=4) is None
    assert scheduler.due(dirty_size=40, batches_since=0, dirty_age=0.0, scale=4) == "dirty"
    assert scheduler.due(dirty_size=1, batches_since=20, dirty_age=0.0, scale=4) == "batches"
    assert scheduler.due(dirty_size=1, batches_since=0, dirty_age=240.0, scale=4) == "age"
