"""Differential test: incremental replay converges to the batch result.

The incremental layer promises that streaming a click table through
:class:`~repro.core.incremental.IncrementalRICD` and running one final
recheck leaves the detection state equal to a one-shot batch
:meth:`~repro.core.framework.RICDDetector.detect` over the same table.
Starting from an *empty* graph makes every node dirty by the final
recheck, so the dirty region is the whole graph and the comparison is
exact — groups, suspicious sets, and risk scores, in canonical order —
across the same scenario grid the engine/shard equivalences are pinned
on.
"""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.framework import RICDDetector
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.graph import BipartiteGraph

from ..shard.canon import canonical_result
from .scenarios import SCENARIO_GRID, build_scenario

pytestmark = pytest.mark.difftest

PARAMS = RICDParams(k1=5, k2=5)
SCREENING = ScreeningParams()


def click_records(graph):
    """The graph's click table as deterministic-order records."""
    return [
        (user, item, graph.get_click(user, item))
        for user in sorted(graph.users(), key=str)
        for item in sorted(graph.user_neighbors(user), key=str)
    ]


@pytest.mark.parametrize("case", SCENARIO_GRID, ids=lambda case: case[0])
def test_replay_all_batches_matches_one_shot_batch(case):
    _, seed, density, exponent, camouflage = case
    scenario = build_scenario(seed, density, exponent, camouflage)

    online = IncrementalRICD(
        BipartiteGraph(),
        params=PARAMS,
        screening=SCREENING,
        # Rechecks deferred entirely to the explicit final call.
        recheck_batches=10**9,
    )
    records = click_records(scenario.graph)
    chunk = max(1, len(records) // 7)
    for start in range(0, len(records), chunk):
        online.ingest(ClickBatch.of(records[start : start + chunk]))
    online.recheck()

    # The replayed graph is the scenario's click *table* (zero-click
    # items of the generated marketplace never appear in any record), so
    # the one-shot reference runs on exactly that table.
    expected = RICDDetector(params=PARAMS, screening=SCREENING).detect(online.graph)
    assert online.graph.num_edges == scenario.graph.num_edges
    assert canonical_result(online.current_result) == canonical_result(expected)
