"""Differential test: the streaming service's checkpoints are batch-equal.

The service contract: at every :meth:`~repro.serve.DetectionService
.checkpoint` the served state equals a one-shot batch
:meth:`~repro.core.framework.RICDDetector.detect` over the same prefix
graph — groups, suspicious sets, and risk scores, in canonical order.
Between checkpoints the bounded-staleness regional rechecks may (and do)
serve approximations; the checkpoints are the exact synchronization
points.  Pinned across the same scenario grid as the engine and
incremental equivalences, replayed through a simulated clock with
multiple intermediate checkpoints per scenario.
"""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.framework import RICDDetector
from repro.graph import BipartiteGraph
from repro.serve import DetectionService, ServeConfig, SimulatedClock, StalenessPolicy

from ..shard.canon import canonical_result
from .scenarios import SCENARIO_GRID, build_scenario
from .test_incremental_parity import click_records

pytestmark = pytest.mark.difftest

PARAMS = RICDParams(k1=5, k2=5)
SCREENING = ScreeningParams()
CHECKPOINTS = 3


@pytest.mark.parametrize("case", SCENARIO_GRID, ids=lambda case: case[0])
def test_every_checkpoint_matches_one_shot_batch_on_the_prefix(case):
    _, seed, density, exponent, camouflage = case
    scenario = build_scenario(seed, density, exponent, camouflage)
    records = click_records(scenario.graph)

    clock = SimulatedClock()
    service = DetectionService.over_graph(
        BipartiteGraph(),
        params=PARAMS,
        screening=SCREENING,
        engine="reference",
        config=ServeConfig(
            queue_capacity=len(records) + 1,  # parity run: nothing shed
            max_batch=max(1, len(records) // 40),
            staleness=StalenessPolicy(max_dirty=400, max_batches=5, max_age=30.0),
        ),
        clock=clock,
    )
    batch = RICDDetector(params=PARAMS, screening=SCREENING, engine="reference")

    marks = sorted(
        round(len(records) * step / CHECKPOINTS) for step in range(1, CHECKPOINTS + 1)
    )
    for index, (user, item, clicks) in enumerate(records, start=1):
        clock.advance(0.01)
        service.submit(user, item, clicks, timestamp=clock.now())
        if len(service.queue) >= service.config.max_batch:
            service.pump()
        if index in marks:
            streamed = service.checkpoint()
            # The checkpoint is an exact sync on the *prefix* graph the
            # stream has built so far.
            expected = batch.detect(service.online.graph)
            assert canonical_result(streamed) == canonical_result(expected)

    snapshot = service.snapshot()
    assert snapshot.queue.shed == 0
    assert snapshot.applied == len(records)
    assert snapshot.rechecks >= CHECKPOINTS  # regional rechecks ran between syncs
