"""The seeded scenario grid shared by the differential and shard suites.

One grid, two consumers: ``tests/difftest/`` proves the alternate
execution paths (engines, parallel harness, recorder) agree on it, and
``tests/shard/`` proves the sharded pipeline agrees with the unsharded
reference on exactly the same inputs.  Keeping the grid in one place
means a new axis (density, skew, camouflage) automatically hardens both
suites.
"""

from repro.datagen import AttackConfig, MarketplaceConfig, generate_scenario

#: (label, seed, attack density, popularity exponent, camouflage on?).
#: Density 1.0 = perfect bicliques (CorePruning-only territory); 0.7 =
#: ragged near-bicliques where SquarePruning does the work.  The exponent
#: steepens the hot-item skew, moving T_hot and the screening decisions.
SCENARIO_GRID = [
    ("dense-flat", 11, 1.0, 2.0, False),
    ("dense-skewed", 12, 1.0, 3.2, True),
    ("ragged-flat", 13, 0.7, 2.0, True),
    ("ragged-skewed", 14, 0.7, 3.2, False),
    ("sparse-attack", 15, 0.55, 2.6, True),
]


def build_scenario(seed: int, density: float, exponent: float, camouflage: bool):
    """One grid cell's scenario (deterministic for a given parameter tuple)."""
    marketplace = MarketplaceConfig(
        n_users=1_500,
        n_items=400,
        popularity_exponent=exponent,
        n_cohorts=3,
        cohort_users=(10, 20),
        cohort_items=(6, 10),
        n_superfans=20,
        n_swarms=1,
        swarm_users=(20, 24),
        swarm_items=(6, 8),
        seed=seed,
    )
    attacks = AttackConfig(
        n_groups=3,
        workers_per_group=(6, 9),
        targets_per_group=(6, 9),
        target_clicks=(12, 14),
        density=density,
        camouflage_items=(3, 8) if camouflage else (0, 0),
        sloppy_fraction=0.2,
        sloppy_target_clicks=(3, 6),
        seed=seed + 1,
    )
    return generate_scenario(marketplace, attacks)
