"""Differential tests: every alternate execution path must agree exactly.

The repo has three pairs of paths that promise identical detection
output:

* the pure-Python **reference** extraction engine vs the scipy **sparse**
  engine (and the ``auto`` switch between them);
* the **serial** evaluation harness vs the ``jobs=2`` process-pool path;
* running with an **active recorder** (``--trace``) vs without.

Each pair is exercised over a grid of seeded randomized scenarios that
vary the attack density (biclique vs near-biclique), the marketplace's
hot-item skew, and camouflage on/off — the axes along which the engines'
pruning orders could plausibly diverge.  Canonical group sets, not just
summary metrics, are compared.
"""

import pytest

from repro import obs
from repro.config import RICDParams
from repro.core.extraction import extract_groups
from repro.core.extraction_bitset import bitset_available, extract_groups_bitset
from repro.core.extraction_sparse import extract_groups_sparse, sparse_available
from repro.core.framework import RICDDetector
from repro.eval import run_suite
from repro.eval.reporting import format_float, render_table

from .scenarios import SCENARIO_GRID, build_scenario

pytestmark = pytest.mark.difftest


@pytest.fixture(scope="module", params=SCENARIO_GRID, ids=lambda case: case[0])
def scenario(request):
    _, seed, density, exponent, camouflage = request.param
    return build_scenario(seed, density, exponent, camouflage)


def _group_set(groups):
    """Order-free canonical form of a group list."""
    return {
        (frozenset(map(str, g.users)), frozenset(map(str, g.items)))
        for g in groups
    }


def _result_key(result):
    return (
        sorted(map(str, result.suspicious_users)),
        sorted(map(str, result.suspicious_items)),
        _group_set(result.groups),
    )


needs_scipy = pytest.mark.skipif(not sparse_available(), reason="scipy not installed")
needs_numpy = pytest.mark.skipif(not bitset_available(), reason="numpy not installed")


class TestEngineEquivalence:
    @needs_scipy
    def test_extraction_engines_identical_groups(self, scenario):
        params = RICDParams(k1=5, k2=5, t_hot=60, t_click=12)
        reference = extract_groups(scenario.graph, params)
        sparse = extract_groups_sparse(scenario.graph, params)
        assert _group_set(reference) == _group_set(sparse)

    @needs_numpy
    def test_bitset_extraction_identical_groups(self, scenario):
        params = RICDParams(k1=5, k2=5, t_hot=60, t_click=12)
        reference = extract_groups(scenario.graph, params)
        bitset = extract_groups_bitset(scenario.graph, params)
        assert _group_set(reference) == _group_set(bitset)

    @needs_scipy
    @needs_numpy
    def test_full_detector_identical_across_engines(self, scenario, shard_count):
        params = RICDParams(k1=5, k2=5)
        keys = {}
        for engine in ("reference", "sparse", "bitset", "auto"):
            detector = RICDDetector(
                params=params,
                engine=engine,
                auto_engine_edge_threshold=1,
                shards=shard_count,
            )
            keys[engine] = _result_key(detector.detect(scenario.graph))
        assert (
            keys["reference"] == keys["sparse"] == keys["bitset"] == keys["auto"]
        )

    @needs_scipy
    def test_auto_threshold_does_not_change_output(self, scenario, shard_count):
        params = RICDParams(k1=5, k2=5)
        low = RICDDetector(
            params=params,
            engine="auto",
            auto_engine_edge_threshold=1,
            shards=shard_count,
        )
        high = RICDDetector(
            params=params,
            engine="auto",
            auto_engine_edge_threshold=10**9,
            shards=shard_count,
        )
        assert _result_key(low.detect(scenario.graph)) == _result_key(
            high.detect(scenario.graph)
        )


def _suite(shards: int = 1):
    # COPYCATCH is excluded: its wall-clock deadline is the one legitimate
    # source of run-to-run variation (see tests/eval/test_parallel.py).
    from repro.baselines import (
        CommonNeighborsDetector,
        LabelPropagationDetector,
        NaiveDetector,
        WithScreening,
    )

    params = RICDParams(k1=5, k2=5)
    return [
        RICDDetector(params=params, shards=shards),
        WithScreening(LabelPropagationDetector(min_users=5, min_items=5)),
        WithScreening(
            CommonNeighborsDetector(cn_threshold=5, min_users=5, min_items=5)
        ),
        NaiveDetector(),
    ]


def _suite_report(runs) -> str:
    """A deterministic textual report: everything except wall-clock."""
    rows = [
        [
            run.name,
            format_float(run.exact.precision),
            format_float(run.exact.recall),
            format_float(run.exact.f1),
            format_float(run.known.f1 if run.known else None),
            len(run.result.suspicious_users),
            len(run.result.suspicious_items),
            len(run.result.groups),
            run.degraded,
        ]
        for run in runs
    ]
    return render_table(
        ["method", "P", "R", "F1", "F1(known)", "users", "items", "groups", "degraded"],
        rows,
    )


class TestParallelEquivalence:
    def test_serial_vs_jobs2_reports_byte_identical(self, scenario, shard_count):
        serial = run_suite(_suite(shard_count), scenario, label_seed=5)
        parallel = run_suite(_suite(shard_count), scenario, label_seed=5, jobs=2)
        assert _suite_report(serial) == _suite_report(parallel)
        for left, right in zip(serial, parallel):
            assert _result_key(left.result) == _result_key(right.result)


class TestRecorderTransparency:
    def test_enabled_recorder_changes_no_detection_output(self, scenario, shard_count):
        detector = RICDDetector(params=RICDParams(k1=5, k2=5), shards=shard_count)
        plain = detector.detect(scenario.graph)
        with obs.recording(obs.Recorder()) as recorder:
            traced = detector.detect(scenario.graph)
        assert _result_key(plain) == _result_key(traced)
        # Sanity: the traced run really did record.
        assert recorder.counters["identify.groups"] == len(traced.groups)

    def test_traced_suite_report_matches_untraced(self, scenario, shard_count):
        untraced = run_suite(_suite(shard_count), scenario, label_seed=5, jobs=2)
        with obs.recording(obs.Recorder()):
            traced = run_suite(_suite(shard_count), scenario, label_seed=5, jobs=2)
        assert _suite_report(untraced) == _suite_report(traced)
