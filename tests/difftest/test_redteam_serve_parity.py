"""Differential test: slow-drip red-team campaigns are batch-equal.

The temporal half of the attack zoo (ISSUE 8): an adaptive campaign
dripped through the online :class:`~repro.serve.DetectionService` as
unit-click micro-batches over a simulated clock must, at the final
checkpoint, produce *exactly* the one-shot batch detection over the same
final click table.  Slow-dripping buys the attacker staleness between
rechecks, never a different sync-point verdict — clicks are additive and
``checkpoint()`` is batch-equal by the serve contract.

Pinned per attack family (adaptive variants — the ones that actually
drip in practice) via :func:`repro.serve.drip_campaign`.
"""

from __future__ import annotations

import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import clean_marketplace, family_names, plan_family
from repro.serve import drip_campaign

from ..shard.canon import canonical_result

pytestmark = pytest.mark.difftest

PARAMS = RICDParams(k1=4, k2=4)
BUDGET = 500


def _plan(family, adaptive=True):
    clean = clean_marketplace("tiny", seed=9)
    plan = plan_family(clean, family, budget=BUDGET, seed=4, adaptive=adaptive)
    return clean, plan


@pytest.mark.parametrize("family", family_names())
def test_drip_checkpoint_equals_one_shot_batch(family):
    clean, plan = _plan(family)
    outcome = drip_campaign(clean, plan, n_batches=8, params=PARAMS)
    assert outcome.events == BUDGET

    # One-shot reference: the same plan applied to the same clean table.
    attacked = clean.copy()
    plan.apply(attacked)
    reference = RICDDetector(params=PARAMS).detect(attacked)
    assert canonical_result(outcome.final) == canonical_result(reference)

    workers = {worker for group in plan.groups for worker in group.workers}
    assert outcome.n_workers == len(workers)
    assert outcome.final_flagged_workers == len(
        reference.suspicious_users & workers
    )


def test_static_campaign_also_batch_equal():
    # The invariant is not an adaptive artifact: the overt paper-style
    # drip lands on the same verdict too (and is actually detected).
    clean, plan = _plan("coattails", adaptive=False)
    outcome = drip_campaign(clean, plan, n_batches=5, params=PARAMS)
    attacked = clean.copy()
    plan.apply(attacked)
    reference = RICDDetector(params=PARAMS).detect(attacked)
    assert canonical_result(outcome.final) == canonical_result(reference)
    assert outcome.final_worker_recall == pytest.approx(
        len(reference.suspicious_users & {w for g in plan.groups for w in g.workers})
        / outcome.n_workers
    )


def test_mid_stream_flags_never_exceed_campaign_workers():
    clean, plan = _plan("poisoning")
    outcome = drip_campaign(clean, plan, n_batches=6, params=PARAMS)
    assert 0 <= outcome.mid_flagged_workers <= outcome.n_workers
    assert outcome.n_batches == 6
