"""Differential test: warm store resume equals a cold build.

The store layer promises that persisting a detected version and
rehydrating every cache layer from it — the indexed snapshot, the
resolved thresholds, the fixpoint memos — changes *nothing* observable
about detection.  Both paths are pinned in canonical, order-free form
across the shared scenario grid, and (because detectors take the
``shard_count`` fixture) the shardtest re-run with ``--shards 3``
covers the sharded pipeline over store-loaded graphs too.
"""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.framework import RICDDetector
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.graph import BipartiteGraph
from repro.store import DetectionStore, memos_to_json

from ..shard.canon import canonical_result
from .scenarios import SCENARIO_GRID, build_scenario

pytestmark = pytest.mark.difftest

PARAMS = RICDParams(k1=5, k2=5)
SCREENING = ScreeningParams()


def click_records(graph):
    return [
        (user, item, graph.get_click(user, item))
        for user in sorted(graph.users(), key=str)
        for item in sorted(graph.user_neighbors(user), key=str)
    ]


def persist_detected(root, graph, shards):
    """Detect cold, commit one fully-derived version, return the result."""
    detector = RICDDetector(
        params=PARAMS, screening=SCREENING, engine="bitset", shards=shards
    )
    result = detector.detect(graph)
    store = DetectionStore.create(root)
    store.begin_version()
    snapshot = graph.indexed()
    store.put_snapshot(snapshot)
    store.put_thresholds(
        detector.params,
        detector.resolve_thresholds(graph),
        detector.screening,
        memos=memos_to_json(snapshot.derived),
    )
    store.put_result(result)
    store.commit()
    return result


@pytest.mark.parametrize("case", SCENARIO_GRID, ids=lambda case: case[0])
def test_warm_detection_matches_cold(case, shard_count, tmp_path):
    """Reload + rehydrate + detect == the detection that was persisted."""
    _, seed, density, exponent, camouflage = case
    scenario = build_scenario(seed, density, exponent, camouflage)
    cold = persist_detected(tmp_path / "store", scenario.graph, shard_count)

    reopened = DetectionStore.open(tmp_path / "store")
    warm_graph = reopened.load_graph()
    stored_params, stored_resolved, stored_screening = reopened.load_thresholds()
    warm_detector = RICDDetector(
        params=stored_params,
        screening=stored_screening,
        engine="bitset",
        shards=shard_count,
    )
    warm_detector._thresholds().rehydrate(warm_graph, stored_params, stored_resolved)
    warm = warm_detector.detect(warm_graph)

    assert canonical_result(warm) == canonical_result(cold)
    assert canonical_result(reopened.load_result()) == canonical_result(cold)


@pytest.mark.parametrize("case", SCENARIO_GRID, ids=lambda case: case[0])
def test_warm_resume_then_stream_matches_cold_batch(case, shard_count, tmp_path):
    """Persist a prefix, resume from the store, stream the rest: the final
    state equals a one-shot cold detection over the full table."""
    _, seed, density, exponent, camouflage = case
    scenario = build_scenario(seed, density, exponent, camouflage)
    records = click_records(scenario.graph)
    half = len(records) // 2

    prefix = BipartiteGraph()
    for user, item, clicks in records[:half]:
        prefix.add_click(user, item, clicks)
    persist_detected(tmp_path / "store", prefix, shard_count)

    resumed = IncrementalRICD.from_store(
        DetectionStore.open(tmp_path / "store"), recheck_batches=10**9
    )
    resumed.ingest(ClickBatch.of(records[half:]))
    resumed.recheck()

    expected = RICDDetector(
        params=PARAMS, screening=SCREENING, shards=shard_count
    ).detect(resumed.graph)
    assert resumed.graph.num_edges == scenario.graph.num_edges
    assert canonical_result(resumed.current_result) == canonical_result(expected)
