"""The versioned detection store: write protocol, reads, integrity, crashes.

Everything here runs on ``tmp_path`` stores; the crash-safety class
drives the ``store`` fault-injection site and pins the catalog contract:
a version exists exactly when the catalog references it, and the catalog
never references a partial artifact.
"""

import json

import numpy as np
import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.framework import RICDDetector
from repro.core.groups import DetectionResult, SuspiciousGroup
from repro.errors import (
    CorruptArtifactError,
    ReproError,
    SchemaVersionError,
    StoreError,
)
from repro.graph import BipartiteGraph
from repro.resilience.faults import injecting
from repro.store import CATALOG_SCHEMA, DetectionStore

from ..shard.canon import canonical_result

pytestmark = pytest.mark.servertest

PARAMS = RICDParams(k1=3, k2=3)


def attack_graph() -> BipartiteGraph:
    graph = BipartiteGraph()
    for u in range(5):
        for i in range(5):
            graph.add_click(f"u{u}", f"i{i}", 40)
    for u in range(30):
        for i in range(4):
            graph.add_click(f"bg{u}", f"b{(u + i) % 11}", 1)
    return graph


def commit_snapshot(store, graph, result=None):
    store.begin_version()
    store.put_snapshot(graph.indexed())
    if result is not None:
        store.put_result(result)
    return store.commit()


class TestLifecycle:
    def test_create_open_round_trip(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        assert store.head is None and store.versions() == []
        again = DetectionStore.open(tmp_path / "s")
        assert again.head is None

    def test_create_refuses_existing_store(self, tmp_path):
        DetectionStore.create(tmp_path / "s")
        with pytest.raises(StoreError):
            DetectionStore.create(tmp_path / "s")

    def test_open_refuses_non_store(self, tmp_path):
        with pytest.raises(StoreError):
            DetectionStore.open(tmp_path)

    def test_open_rejects_unknown_catalog_schema(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        catalog = json.loads((store.root / "catalog.json").read_text())
        catalog["schema"] = "ricd.store/99"
        (store.root / "catalog.json").write_text(json.dumps(catalog))
        with pytest.raises(SchemaVersionError) as excinfo:
            DetectionStore.open(tmp_path / "s")
        assert excinfo.value.found == "ricd.store/99"
        assert CATALOG_SCHEMA in excinfo.value.supported

    def test_open_or_create_is_idempotent(self, tmp_path):
        first = DetectionStore.open_or_create(tmp_path / "s")
        commit_snapshot(first, attack_graph())
        second = DetectionStore.open_or_create(tmp_path / "s")
        assert second.head == 1


class TestWriteProtocol:
    def test_versions_are_monotone(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        graph = attack_graph()
        assert commit_snapshot(store, graph) == 1
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        assert store.commit() == 2
        assert store.versions() == [1, 2]

    def test_first_version_must_be_a_snapshot(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        store.begin_version()
        with pytest.raises(StoreError):
            store.put_delta([("u", "i", 1)])

    def test_commit_requires_snapshot_or_delta(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        store.begin_version()
        with pytest.raises(StoreError):
            store.commit()

    def test_concurrent_begin_rejected_and_abort_clears(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        store.begin_version()
        with pytest.raises(StoreError):
            store.begin_version()
        store.abort()
        assert store.begin_version() == 1

    def test_put_without_begin_raises(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        with pytest.raises(StoreError):
            store.put_snapshot(attack_graph().indexed())

    def test_unknown_version_reads_raise(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        with pytest.raises(StoreError):
            store.load_snapshot()  # empty store
        commit_snapshot(store, attack_graph())
        with pytest.raises(StoreError):
            store.entry(7)


class TestRoundTrips:
    def test_snapshot_load_equals_cold_index(self, tmp_path):
        graph = attack_graph()
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, graph)
        loaded = DetectionStore.open(tmp_path / "s").load_snapshot()
        cold = graph.indexed()
        assert list(loaded.users) == [str(u) for u in cold.users]
        np.testing.assert_array_equal(loaded.user_idx, cold.user_idx)
        np.testing.assert_array_equal(loaded.item_idx, cold.item_idx)
        np.testing.assert_array_equal(loaded.clicks, cold.clicks)

    def test_delta_chain_replay_equals_cold_build(self, tmp_path):
        graph = attack_graph()
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, graph)
        extra = [("zz1", "i0", 7), ("u0", "i0", 2), ("zz1", "zzi", 1)]
        more = [("zz2", "zzi", 4)]
        for batch in (extra, more):
            store.begin_version()
            store.put_delta(batch)
            store.commit()
        for user, item, clicks in extra + more:
            graph.add_click(user, item, clicks)
        loaded = DetectionStore.open(tmp_path / "s").load_graph()
        cold = graph.indexed()
        warm = loaded.indexed()
        assert warm.num_edges == cold.num_edges
        np.testing.assert_array_equal(warm.clicks, cold.clicks)
        assert sorted(map(str, loaded.users())) == sorted(map(str, graph.users()))

    def test_intermediate_versions_stay_loadable(self, tmp_path):
        graph = attack_graph()
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, graph)
        store.begin_version()
        store.put_delta([("late", "i0", 9)])
        store.commit()
        v1 = store.load_snapshot(1)
        assert "late" not in v1.user_index
        v2 = store.load_snapshot(2)
        assert "late" in v2.user_index

    def test_result_round_trip_preserves_provenance(self, tmp_path):
        graph = attack_graph()
        result = RICDDetector(params=PARAMS).detect(graph)
        result.degraded = True
        result.degradations = ("shard.2", "serve.stale")
        result.stale = True
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, graph, result)
        loaded = DetectionStore.open(tmp_path / "s").load_result()
        assert loaded.degraded and loaded.stale
        assert loaded.degradations == ("shard.2", "serve.stale")
        assert canonical_result(loaded) == canonical_result(result)

    def test_thresholds_round_trip(self, tmp_path):
        graph = attack_graph()
        detector = RICDDetector(params=PARAMS)
        resolved = detector.resolve_thresholds(graph)
        store = DetectionStore.create(tmp_path / "s")
        store.begin_version()
        store.put_snapshot(graph.indexed())
        store.put_thresholds(PARAMS, resolved, ScreeningParams(hot_click_cap=6.0))
        store.commit()
        stored_input, stored_resolved, stored_screening = DetectionStore.open(
            tmp_path / "s"
        ).load_thresholds()
        assert stored_input == PARAMS
        assert stored_resolved == resolved
        assert stored_screening.hot_click_cap == 6.0

    def test_missing_slots_read_as_none(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        assert store.load_result() is None
        assert store.load_thresholds() is None

    def test_groups_survive_the_round_trip(self, tmp_path):
        group = SuspiciousGroup(
            users=frozenset({"u1", "u2"}),
            items=frozenset({"i1", "i2"}),
            hot_items=frozenset({"h1"}),
        )
        result = DetectionResult.from_groups([group])
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph(), result)
        loaded = store.load_result()
        (loaded_group,) = loaded.groups
        assert set(map(str, loaded_group.users)) == {"u1", "u2"}
        assert set(map(str, loaded_group.hot_items)) == {"h1"}


class TestCompaction:
    def test_compact_folds_the_delta_chain(self, tmp_path):
        graph = attack_graph()
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, graph)
        store.begin_version()
        store.put_delta([("zz", "i0", 5)])
        store.commit()
        before = store.load_snapshot()
        assert store.compact() == 2
        assert "snapshot" in store.entry(2)
        after = DetectionStore.open(tmp_path / "s").load_snapshot()
        np.testing.assert_array_equal(before.clicks, after.clicks)
        assert before.users == after.users

    def test_compact_is_idempotent(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        assert store.compact() == 1
        assert store.compact() == 1

    def test_history_survives_compaction(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("zz", "i0", 5)])
        store.commit()
        store.compact()
        v1 = store.load_snapshot(1)
        assert "zz" not in v1.user_index
        store.verify()


class TestIntegrity:
    def test_verify_passes_on_clean_store(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph(), RICDDetector(params=PARAMS).detect(attack_graph()))
        store.verify()

    def test_verify_detects_bit_rot(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph(), RICDDetector(params=PARAMS).detect(attack_graph()))
        result_path = store.root / store.entry(1)["result"]
        result_path.write_text(result_path.read_text().replace("suspicious", "suspect"))
        with pytest.raises(CorruptArtifactError) as excinfo:
            store.verify()
        assert excinfo.value.version == 1

    def test_verify_detects_missing_artifact(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        snapshot_dir = store.root / store.entry(1)["snapshot"]
        next(iter(sorted(snapshot_dir.iterdir()))).unlink()
        with pytest.raises(CorruptArtifactError):
            store.verify(1)


class TestCrashSafety:
    """The ``store`` injection site: catalog never names a partial artifact."""

    def test_fault_before_artifact_write_leaves_store_unchanged(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        with injecting("error=1.0,sites=store,max=1"):
            with pytest.raises(ReproError):
                store.put_delta([("zz", "i0", 1)])
        store.abort()
        reopened = DetectionStore.open(tmp_path / "s")
        assert reopened.head == 1
        reopened.verify()

    def test_fault_at_catalog_publish_rolls_back(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("zz", "i0", 1)])
        with injecting("error=1.0,sites=store,max=1"):
            with pytest.raises(ReproError):
                store.commit()
        # In-memory view rolled back to match the on-disk catalog.
        assert store.head == 1
        reopened = DetectionStore.open(tmp_path / "s")
        assert reopened.head == 1 and reopened.versions() == [1]
        reopened.verify()
        # The orphaned delta file is invisible; a retry reclaims the slot.
        store.abort()
        store.begin_version()
        store.put_delta([("zz", "i0", 1)])
        assert store.commit() == 2
        assert "zz" in store.load_snapshot().user_index

    def test_interrupted_compaction_keeps_the_chain_loadable(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("zz", "i0", 1)])
        store.commit()
        with injecting("error=1.0,sites=store,max=1"):
            with pytest.raises(ReproError):
                store.compact()
        reopened = DetectionStore.open(tmp_path / "s")
        assert "snapshot" not in reopened.entry(2)
        assert "zz" in reopened.load_snapshot().user_index
        reopened.verify()

    def test_sustained_faults_never_corrupt_the_catalog(self, tmp_path):
        """Probabilistic storm: every surviving commit is fully readable."""
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        committed = 1
        with injecting("error=0.4,sites=store,seed=7"):
            for round_index in range(12):
                store.begin_version()
                try:
                    store.put_delta([(f"w{round_index}", "i0", 1 + round_index)])
                    store.commit()
                    committed += 1
                except ReproError:
                    store.abort()
        reopened = DetectionStore.open(tmp_path / "s")
        assert reopened.head == committed
        assert reopened.versions() == list(range(1, committed + 1))
        reopened.verify()
        reopened.load_snapshot()
