"""Garbage collection of unreferenced store artifacts.

Aborted writes and crashes between artifact write and catalog publish
leave invisible files under the artifact directories.  ``verify()``
reports them as orphans; ``gc()`` reaps them; and — the crash-safety
contract — GC never tears a file the atomically-published catalog
references, at any injected fault point.
"""

import pytest

np = pytest.importorskip("numpy")

from repro import obs
from repro.errors import ReproError
from repro.resilience.faults import injecting
from repro.store import DetectionStore

from .test_store import attack_graph, commit_snapshot

pytestmark = pytest.mark.servertest


def artifact_files(root):
    files = set()
    for subdir in ("snapshots", "deltas", "thresholds", "results"):
        base = root / subdir
        if base.exists():
            files.update(
                p.relative_to(root).as_posix() for p in base.rglob("*") if p.is_file()
            )
    return files


def referenced_files(store):
    refs = set()
    for entry in store._catalog["entries"].values():
        refs.update(entry["checksums"])
    return refs


class TestOrphanReporting:
    def test_clean_store_has_no_orphans(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        assert store.verify() == []

    def test_abort_leaves_reported_orphans(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        store.abort()
        orphans = store.verify()
        assert orphans == ["deltas/v2.json"]

    def test_pending_version_is_not_reported(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        # Mid-write: the uncommitted delta is pending, not orphaned.
        assert store.verify() == []
        store.commit()
        assert store.verify() == []

    def test_stranger_files_outside_artifact_dirs_untouched(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        note = store.root / "NOTES.txt"
        note.write_text("operator scribble\n")
        assert store.verify() == []
        store.gc()
        assert note.exists()


class TestGC:
    def test_gc_reaps_aborted_write(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        store.abort()
        recorder = obs.Recorder()
        with obs.recording(recorder):
            reaped = store.gc()
        assert reaped == ["deltas/v2.json"]
        assert recorder.counters["store.gc_reaped"] == 1
        assert store.verify() == []
        # The committed version is untouched and still loads.
        assert store.load_graph(1).total_clicks == attack_graph().total_clicks

    def test_gc_reaps_orphaned_snapshot_dir_and_prunes_it(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_snapshot(attack_graph().indexed())
        store.abort()
        assert (store.root / "snapshots" / "v2").exists()
        store.gc()
        assert not (store.root / "snapshots" / "v2").exists()
        assert (store.root / "snapshots" / "v1").exists()
        store.verify()

    def test_gc_spares_in_progress_write(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        assert store.gc() == []
        store.commit()
        assert store.load_graph(2).has_user("uX")

    def test_compact_sweeps_leftovers(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        store.commit()
        # Strand an aborted write, then compact: the fold publishes and
        # the sweep reclaims the stranded file.
        store.begin_version()
        store.put_delta([("uY", "i0", 1)])
        store.abort()
        assert store.compact() == 2
        assert store.verify() == []
        assert not (store.root / "deltas" / "v3.json").exists()
        assert store.load_graph(2).has_user("uX")


class TestGCCrashSafety:
    """GC never races the atomic catalog publish.

    A crash at any ``store`` fault-injection point leaves either the old
    catalog (new artifacts orphaned and invisible) or the new one (all
    artifacts referenced).  In both halves, reopening and running GC must
    keep every referenced file on disk and keep every committed version
    loadable.
    """

    def _assert_gc_safe(self, root):
        reopened = DetectionStore.open(root)
        reopened.gc()
        remaining = artifact_files(reopened.root)
        assert referenced_files(reopened) <= remaining
        for version in reopened.versions():
            reopened.load_snapshot(version)
        assert reopened.verify() == []

    def test_crashed_commit_then_gc(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        with injecting("error=1.0,sites=store,max=1"):
            with pytest.raises(ReproError):
                store.commit()
        self._assert_gc_safe(tmp_path / "s")

    def test_crashed_compact_then_gc(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        store.begin_version()
        store.put_delta([("uX", "i0", 3)])
        store.commit()
        # Crash inside compact: either before the folded snapshot is
        # written or before the catalog naming it publishes.
        with injecting("error=1.0,sites=store,max=1"):
            with pytest.raises(ReproError):
                store.compact()
        self._assert_gc_safe(tmp_path / "s")
        # Retrying on the reopened store succeeds and leaves no orphans.
        reopened = DetectionStore.open(tmp_path / "s")
        assert reopened.compact() == 2
        assert reopened.verify() == []

    def test_sustained_faults_with_gc_between_attempts(self, tmp_path):
        store = DetectionStore.create(tmp_path / "s")
        commit_snapshot(store, attack_graph())
        with injecting("error=0.4,sites=store,seed=11"):
            for _attempt in range(12):
                try:
                    store.begin_version()
                    store.put_delta([("uX", "i0", 1)])
                    store.commit()
                except ReproError:
                    store.abort()
                    store.gc()
        self._assert_gc_safe(tmp_path / "s")
