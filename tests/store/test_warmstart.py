"""The warm-start path: every cache layer rehydrates from the store.

Pins the cold==warm contract at each layer: the graph's memoized index
(zero ``graph.indexed.misses`` after a store load), the resolved
thresholds cache, the bitset fixpoint memos, the incremental detector's
resume, and the detection service's restart — including degraded/stale
provenance surviving the round trip.
"""

import pytest

from repro import obs
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.datagen import tiny_scenario
from repro.graph import BipartiteGraph
from repro.resilience.faults import injecting
from repro.serve import DetectionService, ServeConfig, SimulatedClock, StalenessPolicy
from repro.store import DetectionStore

from ..shard.canon import canonical_result

pytestmark = pytest.mark.servertest

PARAMS = RICDParams(k1=4, k2=4)


@pytest.fixture(scope="module")
def scenario():
    return tiny_scenario()


def records_of(graph):
    return [
        (user, item, graph.get_click(user, item))
        for user in sorted(graph.users(), key=str)
        for item in sorted(graph.user_neighbors(user), key=str)
    ]


def persisted_store(tmp_path, graph, engine="bitset"):
    """A store holding one detected version of ``graph``."""
    detector = RICDDetector(params=PARAMS, engine=engine)
    result = detector.detect(graph)
    store = DetectionStore.create(tmp_path / "store")
    store.begin_version()
    snapshot = graph.indexed()
    store.put_snapshot(snapshot)
    from repro.store import memos_to_json

    store.put_thresholds(
        detector.params,
        detector.resolve_thresholds(graph),
        detector.screening,
        memos=memos_to_json(snapshot.derived),
    )
    store.put_result(result)
    store.commit()
    return store, result


class TestGraphWarmCache:
    def test_loaded_graph_indexes_without_a_miss(self, tmp_path, scenario):
        graph = scenario.graph.copy()
        store, _ = persisted_store(tmp_path, graph)
        warm = DetectionStore.open(store.root).load_graph()
        recorder = obs.Recorder()
        with obs.recording(recorder):
            warm.indexed()
        assert recorder.counters.get("graph.indexed.hits", 0) == 1
        assert recorder.counters.get("graph.indexed.misses", 0) == 0

    def test_snapshot_version_is_the_store_version(self, tmp_path, scenario):
        store, _ = persisted_store(tmp_path, scenario.graph.copy())
        assert store.load_snapshot().version == 1

    def test_mutating_the_warm_graph_invalidates_cleanly(self, tmp_path, scenario):
        store, _ = persisted_store(tmp_path, scenario.graph.copy())
        warm = store.load_graph()
        before = warm.indexed().num_edges
        warm.add_click("fresh-user", "fresh-item", 3)
        after = warm.indexed()
        assert after.num_edges == before + 1
        assert "fresh-user" in after.user_index


class TestThresholdRehydration:
    def test_rehydrated_thresholds_hit_without_resolving(self, tmp_path, scenario):
        graph = scenario.graph.copy()
        store, _ = persisted_store(tmp_path, graph)
        reopened = DetectionStore.open(store.root)
        warm = reopened.load_graph()
        stored_input, stored_resolved, _ = reopened.load_thresholds()
        detector = RICDDetector(params=stored_input)
        detector._thresholds().rehydrate(warm, stored_input, stored_resolved)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            resolved = detector.resolve_thresholds(warm)
        assert recorder.counters.get("detect.threshold_cache_hits", 0) == 1
        assert recorder.counters.get("detect.threshold_cache_misses", 0) == 0
        assert resolved == stored_resolved

    def test_rehydrated_values_match_a_cold_resolve(self, tmp_path, scenario):
        graph = scenario.graph.copy()
        store, _ = persisted_store(tmp_path, graph)
        _, stored_resolved, _ = DetectionStore.open(store.root).load_thresholds()
        cold = RICDDetector(params=PARAMS).resolve_thresholds(graph)
        assert stored_resolved == cold


class TestFixpointMemoRehydration:
    def test_memos_round_trip_into_the_snapshot(self, tmp_path, scenario):
        graph = scenario.graph.copy()
        store, _ = persisted_store(tmp_path, graph, engine="bitset")
        cold_derived = graph.indexed().derived
        memo_keys = [key for key in cold_derived if key[0] == "prune_fixpoint_bitset"]
        assert memo_keys, "bitset detection should have left a fixpoint memo"
        warm = DetectionStore.open(store.root).load_snapshot()
        for key in memo_keys:
            assert key in warm.derived
            warm_users, warm_items = warm.derived[key]
            cold_users, cold_items = cold_derived[key]
            assert {str(u) for u in warm_users} == {str(u) for u in cold_users}
            assert {str(i) for i in warm_items} == {str(i) for i in cold_items}


class TestIncrementalResume:
    def test_resume_then_ingest_matches_cold_batch(self, tmp_path, scenario):
        graph = scenario.graph.copy()
        records = records_of(graph)
        half = len(records) // 2

        cold_half = BipartiteGraph()
        for user, item, clicks in records[:half]:
            cold_half.add_click(user, item, clicks)
        store = DetectionStore.create(tmp_path / "store")
        online = IncrementalRICD(cold_half, params=PARAMS, recheck_batches=10**9)
        online.attach_store(store)
        online.persist_checkpoint()

        resumed = IncrementalRICD.from_store(DetectionStore.open(store.root))
        resumed.ingest(ClickBatch.of(records[half:]))
        resumed.recheck()

        expected = RICDDetector(params=PARAMS).detect(resumed.graph)
        assert canonical_result(resumed.current_result) == canonical_result(expected)

    def test_from_store_defaults_params_to_stored(self, tmp_path, scenario):
        store, _ = persisted_store(tmp_path, scenario.graph.copy())
        resumed = IncrementalRICD.from_store(DetectionStore.open(store.root))
        assert resumed._detector.params == PARAMS

    def test_resume_serves_persisted_result_without_detecting(self, tmp_path, scenario):
        store, result = persisted_store(tmp_path, scenario.graph.copy())
        resumed = IncrementalRICD.from_store(DetectionStore.open(store.root))
        assert canonical_result(resumed.current_result) == canonical_result(result)

    def test_recheck_persists_a_new_version(self, tmp_path, scenario):
        store, _ = persisted_store(tmp_path, scenario.graph.copy())
        resumed = IncrementalRICD.from_store(store)
        resumed.ingest(ClickBatch.of([("fresh", "i-fresh", 9)]))
        resumed.recheck()
        assert store.head == 2
        assert ("fresh", "i-fresh", 9) in store.load_delta_records(2)

    def test_persist_failure_keeps_records_pending(self, tmp_path, scenario):
        store, _ = persisted_store(tmp_path, scenario.graph.copy())
        resumed = IncrementalRICD.from_store(store)
        resumed.ingest(ClickBatch.of([("fresh", "i-fresh", 9)]))
        recorder = obs.Recorder()
        with obs.recording(recorder):
            with injecting("error=1.0,sites=store"):
                resumed.recheck()  # detection fine; persistence absorbed
        assert store.head == 1
        assert recorder.counters.get("store.persist_failures", 0) >= 1
        resumed.recheck()  # pressure off: pending records land
        assert store.head == 2
        assert ("fresh", "i-fresh", 9) in store.load_delta_records(2)

    def test_cleanup_forces_next_persist_to_snapshot(self, tmp_path, scenario):
        store, result = persisted_store(tmp_path, scenario.graph.copy())
        resumed = IncrementalRICD.from_store(store)
        if not result.suspicious_users:
            pytest.skip("scenario produced no removable suspicious nodes")
        user = next(iter(result.suspicious_users))
        item = next(iter(resumed.graph.user_neighbors(user)))
        resumed.apply_cleanup([(user, item, resumed.graph.get_click(user, item))])
        # Cleanup rechecks (and persists) immediately; the removal cannot
        # ride an append-only delta, so version 2 is a full snapshot.
        assert store.head == 2
        assert "snapshot" in store.entry(2)
        resumed.ingest(ClickBatch.of([("post-clean", "i0", 2)]))
        resumed.recheck()
        assert store.head == 3
        assert "delta" in store.entry(3)  # back to cheap deltas afterwards


class TestServiceRestart:
    def make_service(self, root, clock=None):
        return DetectionService.from_store(
            root,
            params=PARAMS,
            engine="reference",
            config=ServeConfig(staleness=StalenessPolicy(max_batches=10**9)),
            clock=clock or SimulatedClock(),
        )

    def test_bootstrap_commits_version_one(self, tmp_path):
        service = self.make_service(tmp_path / "store")
        assert service.store_version == 1

    def test_restart_resumes_same_result_at_same_version(self, tmp_path, scenario):
        service = self.make_service(tmp_path / "store")
        for user, item, clicks in records_of(scenario.graph):
            service.submit(user, item, clicks)
        checkpointed = service.checkpoint()
        version = service.store_version

        restarted = self.make_service(tmp_path / "store")
        assert restarted.store_version == version
        assert canonical_result(restarted.result) == canonical_result(checkpointed)

    def test_restart_equals_cold_detection(self, tmp_path, scenario):
        service = self.make_service(tmp_path / "store")
        for user, item, clicks in records_of(scenario.graph):
            service.submit(user, item, clicks)
        service.checkpoint()
        restarted = self.make_service(tmp_path / "store")
        cold = RICDDetector(params=PARAMS, engine="reference").detect(
            restarted.online.graph
        )
        assert canonical_result(restarted.result) == canonical_result(cold)

    def test_stale_flag_survives_the_round_trip(self, tmp_path, scenario):
        service = self.make_service(tmp_path / "store")
        for user, item, clicks in records_of(scenario.graph):
            service.submit(user, item, clicks)
        service.pump_until_idle()
        with injecting("error=1.0,sites=recheck,max=1"):
            service.online.recheck()
        assert service.result.stale
        assert service.store_version is not None
        restarted = self.make_service(tmp_path / "store")
        assert restarted.result.stale
        assert restarted.snapshot().degraded
