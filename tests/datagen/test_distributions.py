"""Tests for the heavy-tailed samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.distributions import (
    pareto_share,
    sample_heavy_tail_counts,
    sample_truncated_zipf,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100, 1.2).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 0.9)
        assert (np.diff(weights) <= 0).all()

    def test_zero_exponent_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_offset_flattens_head(self):
        sharp = zipf_weights(100, 2.0, offset=0)
        flat = zipf_weights(100, 2.0, offset=50)
        assert flat[0] / flat[9] < sharp[0] / sharp[9]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, 1.0, offset=-1)


class TestHeavyTailCounts:
    def test_respects_minimum(self):
        rng = np.random.default_rng(0)
        counts = sample_heavy_tail_counts(rng, 1000, mean=5.0, minimum=2)
        assert counts.min() >= 2

    def test_respects_maximum(self):
        rng = np.random.default_rng(0)
        counts = sample_heavy_tail_counts(rng, 1000, mean=5.0, minimum=1, maximum=10)
        assert counts.max() <= 10

    def test_mean_close_to_target(self):
        rng = np.random.default_rng(0)
        counts = sample_heavy_tail_counts(rng, 50_000, mean=4.3, minimum=1)
        assert counts.mean() == pytest.approx(4.3, rel=0.1)

    def test_heavy_tail_present(self):
        rng = np.random.default_rng(0)
        counts = sample_heavy_tail_counts(rng, 50_000, mean=4.3, minimum=1)
        assert counts.max() > 10 * counts.mean()

    def test_invalid_mean(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_heavy_tail_counts(rng, 10, mean=1.0, minimum=1)

    def test_zero_size(self):
        rng = np.random.default_rng(0)
        assert sample_heavy_tail_counts(rng, 0, mean=3.0).size == 0


class TestTruncatedZipf:
    def test_support_bounds(self):
        rng = np.random.default_rng(0)
        values = sample_truncated_zipf(rng, 5000, exponent=1.5, maximum=7)
        assert values.min() >= 1
        assert values.max() <= 7

    def test_mass_concentrated_at_one(self):
        rng = np.random.default_rng(0)
        values = sample_truncated_zipf(rng, 5000, exponent=2.0, maximum=10)
        assert (values == 1).mean() > 0.5

    def test_invalid_maximum(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_truncated_zipf(rng, 10, exponent=1.0, maximum=0)


class TestParetoShare:
    def test_exact_8020(self):
        values = np.array([80.0, 10, 5, 3, 2])
        assert pareto_share(values, 0.8) == pytest.approx(0.2)

    def test_uniform_distribution(self):
        assert pareto_share(np.ones(100), 0.8) == pytest.approx(0.8)

    def test_empty_and_zero(self):
        assert pareto_share(np.array([])) == 0.0
        assert pareto_share(np.zeros(5)) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            pareto_share(np.ones(3), 0.0)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=100)
    )
    @settings(max_examples=60)
    def test_share_in_unit_interval(self, values):
        share = pareto_share(np.array(values), 0.8)
        assert 0.0 < share <= 1.0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=100)
    )
    @settings(max_examples=60)
    def test_monotone_in_mass_fraction(self, values):
        array = np.array(values)
        assert pareto_share(array, 0.5) <= pareto_share(array, 0.9)
