"""Tests for the "Ride Item's Coattails" attack injector."""

import pytest

from repro.core.thresholds import pareto_hot_threshold
from repro.datagen import AttackConfig, MarketplaceConfig, generate_marketplace, inject_attacks
from repro.errors import DataGenError


@pytest.fixture()
def market():
    return generate_marketplace(
        MarketplaceConfig(
            n_users=1500, n_items=400, n_cohorts=0, n_superfans=0, n_swarms=0, seed=2
        )
    )


def small_attack(**overrides):
    defaults = dict(
        n_groups=2,
        workers_per_group=(6, 8),
        targets_per_group=(5, 6),
        hot_items_per_group=(1, 2),
        target_clicks=(12, 14),
        sloppy_fraction=0.0,
        hijacked_user_fraction=0.0,
        worker_reuse_fraction=0.0,
        seed=9,
    )
    defaults.update(overrides)
    return AttackConfig(**defaults)


class TestConfigValidation:
    def test_defaults_valid(self):
        AttackConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_groups": -1},
            {"workers_per_group": (0, 5)},
            {"targets_per_group": (0, 3)},
            {"target_clicks": (10, 5)},
            {"density": 0.0},
            {"density": 1.5},
            {"hijacked_user_fraction": -0.1},
            {"sloppy_fraction": 2.0},
            {"sloppy_target_clicks": (0, 3)},
            {"worker_reuse_fraction": 1.5},
            {"camouflage_items": (4, 1)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DataGenError):
            AttackConfig(**kwargs)


class TestInjection:
    def test_truth_counts_match_groups(self, market):
        truth = inject_attacks(market, small_attack())
        assert len(truth.groups) == 2
        assert truth.abnormal_users == {
            worker for group in truth.groups for worker in group.workers
        }
        assert truth.abnormal_items == {
            target for group in truth.groups for target in group.target_items
        }

    def test_group_sizes_within_ranges(self, market):
        truth = inject_attacks(market, small_attack())
        for group in truth.groups:
            assert 6 <= len(group.workers) <= 8
            assert 5 <= len(group.target_items) <= 6
            assert 1 <= len(group.hot_items) <= 2

    def test_target_items_are_fresh(self, market):
        before = set(market.items())
        truth = inject_attacks(market, small_attack())
        for target in truth.abnormal_items:
            assert target not in before

    def test_hot_items_are_genuinely_hot(self, market):
        boundary = pareto_hot_threshold(market)
        truth = inject_attacks(market, small_attack())
        for group in truth.groups:
            for hot in group.hot_items:
                assert market.item_total_clicks(hot) >= boundary

    def test_full_density_forms_biclique(self, market):
        truth = inject_attacks(market, small_attack(density=1.0))
        group = truth.groups[0]
        for worker in group.workers:
            for target in group.target_items:
                assert market.get_click(worker, target) >= 12

    def test_partial_density_thins_edges(self, market):
        truth = inject_attacks(market, small_attack(density=0.5, seed=3))
        group = truth.groups[0]
        realised = sum(
            1
            for worker in group.workers
            for target in group.target_items
            if market.has_edge(worker, target)
        )
        possible = len(group.workers) * len(group.target_items)
        assert realised < possible

    def test_worker_clicks_hot_items_lightly(self, market):
        truth = inject_attacks(market, small_attack())
        group = truth.groups[0]
        for worker in group.workers:
            for hot in group.hot_items:
                assert 1 <= market.get_click(worker, hot) <= 3

    def test_sloppy_workers_click_below_threshold(self, market):
        truth = inject_attacks(
            market, small_attack(sloppy_fraction=1.0, sloppy_target_clicks=(3, 5))
        )
        group = truth.groups[0]
        for worker in group.workers:
            for target in group.target_items:
                clicks = market.get_click(worker, target)
                if clicks:
                    assert clicks <= 5

    def test_hijacked_workers_are_existing_users(self, market):
        organic = set(market.users())
        truth = inject_attacks(market, small_attack(hijacked_user_fraction=1.0))
        for group in truth.groups:
            hijacked = [w for w in group.workers if w in organic]
            assert hijacked  # at least some accounts came from the pool

    def test_worker_reuse_shares_accounts(self, market):
        truth = inject_attacks(
            market,
            small_attack(n_groups=4, worker_reuse_fraction=0.5, seed=5),
        )
        all_workers = [w for g in truth.groups for w in g.workers]
        assert len(all_workers) > len(set(all_workers))  # someone serves twice

    def test_fake_edges_recorded(self, market):
        truth = inject_attacks(market, small_attack())
        group = truth.groups[0]
        assert group.fake_click_volume > 0
        for user, item, clicks in group.fake_edges:
            assert market.get_click(user, item) >= 1
            assert clicks >= 1

    def test_zero_groups(self, market):
        truth = inject_attacks(market, small_attack(n_groups=0))
        assert not truth.groups
        assert not truth.abnormal_users

    def test_deterministic(self):
        config = MarketplaceConfig(
            n_users=800, n_items=200, n_cohorts=0, n_superfans=0, n_swarms=0, seed=4
        )
        results = []
        for _round in range(2):
            graph = generate_marketplace(config)
            truth = inject_attacks(graph, small_attack())
            results.append((graph, sorted(map(str, truth.abnormal_users))))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]

    def test_injecting_into_empty_graph_raises(self):
        from repro.graph import BipartiteGraph

        with pytest.raises(DataGenError):
            inject_attacks(BipartiteGraph(), small_attack())


class TestGroundTruth:
    def test_merge(self, market):
        first = inject_attacks(market, small_attack(seed=1))
        second = inject_attacks(market, small_attack(seed=2))
        merged = first.merge(second)
        assert merged.abnormal_users == first.abnormal_users | second.abnormal_users
        assert len(merged.groups) == len(first.groups) + len(second.groups)

    def test_membership_helpers(self, market):
        truth = inject_attacks(market, small_attack())
        worker = next(iter(truth.abnormal_users))
        target = next(iter(truth.abnormal_items))
        assert truth.is_abnormal_user(worker)
        assert truth.is_abnormal_item(target)
        assert not truth.is_abnormal_user("u0_not_a_worker")
        assert worker in truth.abnormal_nodes
