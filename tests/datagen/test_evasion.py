"""Tests for the adversarial (K-free) evasion campaign."""

import pytest

from repro.config import RICDParams
from repro.core import RICDDetector
from repro.core.camouflage import contains_biclique
from repro.datagen import (
    EvasionConfig,
    MarketplaceConfig,
    generate_marketplace,
    inject_evasive_campaign,
)
from repro.errors import DataGenError


@pytest.fixture()
def market():
    return generate_marketplace(
        MarketplaceConfig(
            n_users=1500, n_items=400, n_cohorts=0, n_superfans=0, n_swarms=0, seed=8
        )
    )


def config(params=None, **overrides):
    defaults = dict(n_workers=16, n_targets=8, hot_items=1, seed=3)
    defaults.update(overrides)
    return EvasionConfig(params or RICDParams(k1=4, k2=4), **defaults)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"n_targets": 0},
            {"hot_items": -1},
            {"target_clicks": (5, 3)},
            {"target_clicks": (0, 3)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(DataGenError):
            config(**kwargs)


class TestInvisibility:
    def test_fake_target_edges_are_k_free(self, market):
        params = RICDParams(k1=4, k2=4)
        truth = inject_evasive_campaign(market, config(params))
        group = truth.groups[0]
        target_edges = {
            (user, item)
            for user, item, _clicks in group.fake_edges
            if str(item).startswith("ev_t")
        }
        assert not contains_biclique(target_edges, params.k1, params.k2)

    def test_per_target_worker_ceiling(self, market):
        params = RICDParams(k1=4, k2=4)
        truth = inject_evasive_campaign(market, config(params))
        for target in truth.abnormal_items:
            assert market.item_degree(target) <= params.k1 - 1

    def test_extraction_blind_to_campaign(self, market):
        params = RICDParams(k1=4, k2=4)
        truth = inject_evasive_campaign(market, config(params))
        result = RICDDetector(params=params, max_group_users=None).detect(market)
        assert not (result.suspicious_users & truth.abnormal_users)
        assert not (result.suspicious_items & truth.abnormal_items)

    def test_overt_equivalent_is_caught(self, market):
        """Sanity: the same budget spent overtly IS detectable."""
        from repro.datagen import AttackConfig, inject_attacks

        params = RICDParams(k1=4, k2=4)
        truth = inject_attacks(
            market,
            AttackConfig(
                n_groups=1,
                workers_per_group=(8, 8),
                targets_per_group=(8, 8),
                target_clicks=(12, 13),
                density=1.0,
                sloppy_fraction=0.0,
                hijacked_user_fraction=0.0,
                worker_reuse_fraction=0.0,
                organic_target_users=(0, 0),
                seed=5,
            ),
        )
        result = RICDDetector(params=params, max_group_users=None).detect(market)
        caught = result.suspicious_users & truth.abnormal_users
        assert len(caught) >= 6


class TestStructure:
    def test_hot_rides_recorded(self, market):
        truth = inject_evasive_campaign(market, config())
        group = truth.groups[0]
        assert len(group.hot_items) == 1
        hot = group.hot_items[0]
        for worker in group.workers:
            assert market.get_click(worker, hot) == 1

    def test_no_hot_items_option(self, market):
        truth = inject_evasive_campaign(market, config(hot_items=0))
        assert truth.groups[0].hot_items == []

    def test_truth_labels_complete(self, market):
        truth = inject_evasive_campaign(market, config())
        assert len(truth.abnormal_users) == 16
        assert len(truth.abnormal_items) == 8

    def test_k1_one_injects_no_target_edges(self, market):
        truth = inject_evasive_campaign(
            market, config(RICDParams(k1=1, k2=4), hot_items=0)
        )
        assert all(
            market.item_degree(target) == 0 for target in truth.abnormal_items
        )
