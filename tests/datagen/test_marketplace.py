"""Tests for the organic marketplace generator."""

import numpy as np
import pytest

from repro.core.thresholds import pareto_hot_threshold
from repro.datagen import MarketplaceConfig, generate_marketplace
from repro.datagen.distributions import pareto_share
from repro.errors import DataGenError
from repro.graph import side_stats


@pytest.fixture(scope="module")
def default_market():
    """One full-size organic marketplace, generated once per module."""
    return generate_marketplace(MarketplaceConfig(seed=0))


class TestConfigValidation:
    def test_defaults_valid(self):
        MarketplaceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"n_items": 0},
            {"avg_items_per_user": 1.0},
            {"avg_clicks_per_user": 2.0, "avg_items_per_user": 3.0},
            {"max_clicks_per_edge": 1},
            {"n_cohorts": -1},
            {"cohort_users": (5, 2)},
            {"cohort_items": (0, 4)},
            {"cohort_item_pool": (0.5, 0.2)},
            {"n_superfans": -1},
            {"superfan_items": (3, 1)},
            {"superfan_clicks": (0, 5)},
            {"superfan_item_pool": (0.9, 0.9)},
            {"n_swarms": -2},
            {"swarm_users": (9, 3)},
            {"swarm_items": (0, 2)},
            {"swarm_clicks": (5, 1)},
            {"swarm_item_pool": (1.2, 1.5)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DataGenError):
            MarketplaceConfig(**kwargs)


class TestGeneratedShape:
    def test_all_users_present(self, default_market):
        assert default_market.num_users >= 20_000  # organic users (ids u0..)

    def test_all_items_present(self, default_market):
        assert default_market.num_items == 4_000

    def test_every_user_has_an_edge(self):
        config = MarketplaceConfig(
            n_users=500, n_items=100, n_cohorts=0, n_superfans=0, n_swarms=0, seed=3
        )
        graph = generate_marketplace(config)
        assert all(graph.user_degree(u) >= 1 for u in graph.users())

    def test_user_stats_near_paper(self, default_market):
        stats = side_stats(default_market, "user")
        # Table II targets: Avg_clk 11.35, Avg_cnt 4.32.  Cohorts/superfans/
        # swarms inflate the organic baseline somewhat; keep a loose band.
        assert 10.0 <= stats.avg_clk <= 16.0
        assert 3.5 <= stats.avg_cnt <= 6.0

    def test_item_stats_near_paper(self, default_market):
        stats = side_stats(default_market, "item")
        assert 45.0 <= stats.avg_clk <= 85.0
        assert stats.stdev > 5 * stats.avg_clk  # heavy tail (paper: 18x)

    def test_heavy_tail_pareto(self, default_market):
        totals = np.array(
            [default_market.item_total_clicks(i) for i in default_market.items()]
        )
        assert pareto_share(totals, 0.8) < 0.25

    def test_hot_threshold_well_above_mean(self, default_market):
        stats = side_stats(default_market, "item")
        threshold = pareto_hot_threshold(default_market)
        assert threshold > 4 * stats.avg_clk

    def test_popularity_ranking_respected(self, default_market):
        """Rank-0 item must vastly outclick a deep-tail item."""
        top = default_market.item_total_clicks("i0")
        tail = default_market.item_total_clicks("i3999")
        assert top > 50 * max(tail, 1)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        config = MarketplaceConfig(n_users=400, n_items=80, seed=11)
        assert generate_marketplace(config) == generate_marketplace(config)

    def test_different_seed_different_graph(self):
        a = generate_marketplace(MarketplaceConfig(n_users=400, n_items=80, seed=1))
        b = generate_marketplace(MarketplaceConfig(n_users=400, n_items=80, seed=2))
        assert a != b


class TestOverlays:
    def test_cohorts_add_dense_blocks(self):
        base = MarketplaceConfig(
            n_users=1000, n_items=300, n_cohorts=0, n_superfans=0, n_swarms=0, seed=5
        )
        with_cohorts = MarketplaceConfig(
            n_users=1000,
            n_items=300,
            n_cohorts=3,
            cohort_users=(10, 15),
            cohort_items=(5, 8),
            n_superfans=0,
            n_swarms=0,
            seed=5,
        )
        plain = generate_marketplace(base)
        cohorted = generate_marketplace(with_cohorts)
        assert cohorted.total_clicks > plain.total_clicks

    def test_superfans_create_heavy_ordinary_edges(self):
        config = MarketplaceConfig(
            n_users=1000,
            n_items=300,
            n_cohorts=0,
            n_superfans=20,
            superfan_clicks=(15, 20),
            n_swarms=0,
            seed=5,
        )
        graph = generate_marketplace(config)
        heavy_edges = sum(1 for _u, _i, clicks in graph.edges() if clicks >= 15)
        assert heavy_edges >= 20  # at least one per superfan

    def test_swarms_create_large_heavy_blocks(self):
        config = MarketplaceConfig(
            n_users=1000,
            n_items=300,
            n_cohorts=0,
            n_superfans=0,
            n_swarms=1,
            swarm_users=(20, 20),
            swarm_items=(8, 8),
            swarm_clicks=(12, 12),
            seed=5,
        )
        graph = generate_marketplace(config)
        # Some item must have >= 15 users clicking it exactly 12 times.
        found = any(
            sum(1 for clicks in graph.item_neighbors(item).values() if clicks >= 12)
            >= 15
            for item in graph.items()
        )
        assert found
