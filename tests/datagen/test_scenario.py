"""Tests for scenario presets."""

import pytest

from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph
from repro.datagen import generate_scenario, small_scenario, tiny_scenario
from repro.datagen import AttackConfig, MarketplaceConfig


class TestPresets:
    def test_tiny_shape(self, tiny):
        assert 700 <= tiny.graph.num_users <= 900
        assert len(tiny.truth.groups) == 1

    def test_small_shape(self, small):
        assert 2_900 <= small.graph.num_users <= 3_200
        assert len(small.truth.groups) == 4

    def test_small_coherence(self, small):
        """Most injected targets must classify as ordinary items."""
        threshold = pareto_hot_threshold(small.graph)
        t_click = t_click_from_graph(small.graph)
        assert t_click >= 8
        ordinary = sum(
            1
            for item in small.truth.abnormal_items
            if small.graph.item_total_clicks(item) < threshold
        )
        assert ordinary >= 0.7 * len(small.truth.abnormal_items)

    def test_abnormal_fractions(self, small):
        assert 0.0 < small.abnormal_fraction_users < 0.1
        assert 0.0 < small.abnormal_fraction_items < 0.2

    def test_deterministic(self):
        assert tiny_scenario(seed=3).graph == tiny_scenario(seed=3).graph

    def test_seeds_differ(self):
        assert tiny_scenario(seed=1).graph != tiny_scenario(seed=2).graph

    def test_custom_generation(self):
        scenario = generate_scenario(
            MarketplaceConfig(
                n_users=300, n_items=80, n_cohorts=0, n_superfans=0, n_swarms=0, seed=0
            ),
            AttackConfig(
                n_groups=1,
                workers_per_group=(4, 4),
                targets_per_group=(3, 3),
                seed=1,
            ),
        )
        assert len(scenario.truth.groups) == 1
        assert len(scenario.truth.groups[0].workers) == 4

    def test_empty_graph_fractions(self):
        from repro.datagen.labels import GroundTruth
        from repro.datagen.scenario import Scenario
        from repro.graph import BipartiteGraph

        scenario = Scenario(
            graph=BipartiteGraph(),
            truth=GroundTruth(),
            marketplace_config=MarketplaceConfig(),
            attack_config=AttackConfig(),
        )
        assert scenario.abnormal_fraction_users == 0.0
        assert scenario.abnormal_fraction_items == 0.0
