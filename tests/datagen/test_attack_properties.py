"""Property suite pinning the attack-zoo invariants (ISSUE 8).

Three families of properties, checked for **every** attack family of the
registry, static and adaptive:

* **Click-budget conservation** — the :class:`ClickBudget` ledger is
  strict: a planned campaign spends its budget exactly, the unit-event
  drip is the same multiset of clicks, and applying the plan raises the
  graph's total click mass by exactly the budget.
* **Label soundness** — every fake-edge user is labelled abnormal, no
  organic user or item is ever labelled, and every fresh target listing
  is labelled.  :meth:`AttackPlan.apply` returns the same labels the
  plan carries.
* **Seed determinism** — the same (graph, family, budget, seed,
  adaptivity) plans byte-identical campaigns; planning never mutates
  the marketplace it observes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import clean_marketplace, family_names, plan_family

FAMILIES = family_names()
GRID = [
    pytest.param(family, adaptive, id=f"{family}-{'adaptive' if adaptive else 'static'}")
    for family in FAMILIES
    for adaptive in (False, True)
]

# One shared pre-attack marketplace: planning is read-only (pinned by
# test_planning_never_mutates_the_marketplace below), so every example
# can observe the same snapshot.
_BASE = clean_marketplace("tiny", seed=11)

budgets = st.integers(min_value=120, max_value=1_500)
seeds = st.integers(min_value=0, max_value=2**16)


def _total_clicks(graph) -> int:
    return sum(graph.user_total_clicks(user) for user in graph.users())


class TestBudgetConservation:
    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_budget_is_spent_exactly(self, family, adaptive, budget, seed):
        plan = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        # The ledger view, the edge view, and the drip view all agree.
        assert plan.clicks_spent == budget
        assert sum(clicks for _u, _i, clicks in plan.fake_edges) == budget
        events = plan.unit_events()
        assert len(events) == budget
        assert all(clicks == 1 for _u, _i, clicks in events)

    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_apply_adds_exactly_budget_clicks(self, family, adaptive, budget, seed):
        plan = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        attacked = _BASE.copy()
        before = _total_clicks(attacked)
        plan.apply(attacked)
        assert _total_clicks(attacked) - before == budget

    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds, n_batches=st.integers(min_value=1, max_value=9))
    @settings(max_examples=4, deadline=None)
    def test_schedule_partitions_the_drip(self, family, adaptive, budget, seed, n_batches):
        plan = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        batches = plan.schedule(n_batches)
        assert len(batches) <= n_batches
        records = [record for batch in batches for record in batch.records]
        assert records == plan.unit_events()


class TestLabelSoundness:
    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_labels_cover_workers_and_never_organics(self, family, adaptive, budget, seed):
        plan = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        truth = plan.truth()
        # Every user that placed a fake click is labelled...
        fake_edge_users = {user for user, _item, _clicks in plan.fake_edges}
        assert fake_edge_users <= truth.abnormal_users
        # ...no organic user or item ever is (the zoo's planners only use
        # fresh worker accounts and fresh target listings; uplift victims
        # and ridden hot items stay unlabelled)...
        assert truth.abnormal_users <= plan.fresh_users
        assert truth.abnormal_items <= plan.fresh_items
        # ...and every fresh target listing is labelled, even when the
        # budget clipped its incoming edges.
        for group in plan.groups:
            assert set(group.target_items) <= truth.abnormal_items
            assert set(group.workers) <= truth.abnormal_users

    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_apply_returns_the_plan_labels(self, family, adaptive, budget, seed):
        plan = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        attacked = _BASE.copy()
        applied = plan.apply(attacked)
        planned = plan.truth()
        assert applied.abnormal_users == planned.abnormal_users
        assert applied.abnormal_items == planned.abnormal_items
        # Every labelled node actually exists on the attacked graph.
        assert applied.abnormal_users <= set(attacked.users())
        assert applied.abnormal_items <= set(attacked.items())


class TestSeedDeterminism:
    @pytest.mark.parametrize("family, adaptive", GRID)
    @given(budget=budgets, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_same_seed_same_plan(self, family, adaptive, budget, seed):
        first = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        second = plan_family(_BASE, family, budget=budget, seed=seed, adaptive=adaptive)
        assert first.fake_edges == second.fake_edges
        assert first.fresh_users == second.fresh_users
        assert first.fresh_items == second.fresh_items
        assert (first.family, first.adaptive) == (second.family, second.adaptive)

    @pytest.mark.parametrize("family, adaptive", GRID)
    def test_plan_is_stable_across_marketplace_rebuilds(self, family, adaptive):
        rebuilt = clean_marketplace("tiny", seed=11)
        on_cached = plan_family(_BASE, family, budget=500, seed=3, adaptive=adaptive)
        on_rebuilt = plan_family(rebuilt, family, budget=500, seed=3, adaptive=adaptive)
        assert on_cached.fake_edges == on_rebuilt.fake_edges

    def test_planning_never_mutates_the_marketplace(self):
        pristine = clean_marketplace("tiny", seed=11)
        before = _total_clicks(_BASE)
        for family in FAMILIES:
            for adaptive in (False, True):
                plan_family(_BASE, family, budget=400, seed=1, adaptive=adaptive)
        assert _total_clicks(_BASE) == before
        assert set(_BASE.users()) == set(pristine.users())
        assert set(_BASE.items()) == set(pristine.items())

    def test_different_seeds_can_differ(self):
        # Not a hard guarantee per family (tiny budgets can coincide),
        # but across the zoo at a real budget the RNG must actually bite.
        differing = [
            family
            for family in FAMILIES
            if plan_family(_BASE, family, budget=800, seed=0).fake_edges
            != plan_family(_BASE, family, budget=800, seed=99).fake_edges
        ]
        assert differing, "no family's plan depends on its seed"
