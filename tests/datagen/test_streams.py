"""Tests for scenario-to-stream conversion and online replay."""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.incremental import IncrementalRICD
from repro.datagen.streams import ReplayResult, StreamConfig, replay, scenario_to_stream
from repro.errors import DataGenError
from repro.graph import BipartiteGraph


class TestStreamConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0},
            {"campaign_start": 0},
            {"campaign_start": 9, "campaign_end": 5},
            {"campaign_end": 20, "days": 10},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(DataGenError):
            StreamConfig(**kwargs)


class TestScenarioToStream:
    def test_batch_count_matches_days(self, tiny):
        batches = scenario_to_stream(tiny, StreamConfig(days=7, campaign_end=6))
        assert len(batches) == 7

    def test_stream_replays_full_graph(self, tiny):
        """Summing every batch reproduces the scenario graph exactly."""
        batches = scenario_to_stream(tiny, StreamConfig(days=6, campaign_end=5))
        rebuilt = BipartiteGraph()
        for batch in batches:
            for user, item, clicks in batch.records:
                rebuilt.add_click(user, item, clicks)
        for user, item, clicks in tiny.graph.edges():
            assert rebuilt.get_click(user, item) == clicks
        assert rebuilt.total_clicks == tiny.graph.total_clicks

    def test_fake_edges_confined_to_campaign_window(self, tiny):
        config = StreamConfig(days=10, campaign_start=4, campaign_end=7)
        batches = scenario_to_stream(tiny, config)
        fake_pairs = {
            (user, item)
            for group in tiny.truth.groups
            for user, item, _clicks in group.fake_edges
        }
        for day_index, batch in enumerate(batches, start=1):
            for user, item, _clicks in batch.records:
                if (user, item) in fake_pairs:
                    assert config.campaign_start <= day_index <= config.campaign_end

    def test_deterministic(self, tiny):
        first = scenario_to_stream(tiny, StreamConfig(seed=4))
        second = scenario_to_stream(tiny, StreamConfig(seed=4))
        assert [b.records for b in first] == [b.records for b in second]


class TestReplay:
    def test_replay_detects_during_or_after_campaign(self, tiny):
        online = IncrementalRICD(
            BipartiteGraph(),
            params=RICDParams(k1=4, k2=4),
            screening=ScreeningParams(min_users=2, min_items=2),
            recheck_batches=1,
        )
        config = StreamConfig(days=8, campaign_start=3, campaign_end=6)
        outcome = replay(tiny, online, config)
        assert isinstance(outcome, ReplayResult)
        group_id = tiny.truth.groups[0].group_id
        assert group_id in outcome.detection_day
        assert outcome.detection_day[group_id] >= config.campaign_start

    def test_invalid_detection_bar(self, tiny):
        online = IncrementalRICD(BipartiteGraph(), params=RICDParams(k1=4, k2=4))
        with pytest.raises(DataGenError):
            replay(tiny, online, detection_bar=0.0)
