"""Shared fixtures: cached scenarios and hand-built graphs.

Scenario generation is deterministic, so session-scoped caching is safe;
tests must not mutate the fixture graphs (take ``.copy()`` first).
"""

from __future__ import annotations

import pytest

from repro.datagen import small_scenario, tiny_scenario
from repro.graph import BipartiteGraph


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/goldens/*.json from the current outputs",
    )
    parser.addoption(
        "--shards",
        type=int,
        default=1,
        help=(
            "run the differential suites with RICD detectors sharded this "
            "many ways (1 = classic unsharded detectors, the default)"
        ),
    )


@pytest.fixture()
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """Whether golden snapshot files should be rewritten instead of compared."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def shard_count(request: pytest.FixtureRequest) -> int:
    """Shard count the differential suites build their RICD detectors with.

    The CI ``shardtest`` entry re-runs ``tests/difftest/`` with
    ``--shards 3`` so every engine/parallel/recorder equivalence is also
    pinned under component-sharded execution.
    """
    return request.config.getoption("--shards")


@pytest.fixture(scope="session")
def tiny():
    """A few-hundred-node scenario with one injected group."""
    return tiny_scenario()


@pytest.fixture(scope="session")
def small():
    """A 2k-user scenario with four injected groups."""
    return small_scenario()


@pytest.fixture()
def empty_graph() -> BipartiteGraph:
    """A fresh empty graph."""
    return BipartiteGraph()


@pytest.fixture()
def simple_graph() -> BipartiteGraph:
    """A small hand-built graph used across unit tests.

    Layout::

        u1 -3-> i1      u1 -1-> i2
        u2 -2-> i1      u2 -5-> i3
        u3 -1-> i2      u3 -1-> i3
    """
    graph = BipartiteGraph()
    graph.add_click("u1", "i1", 3)
    graph.add_click("u1", "i2", 1)
    graph.add_click("u2", "i1", 2)
    graph.add_click("u2", "i3", 5)
    graph.add_click("u3", "i2", 1)
    graph.add_click("u3", "i3", 1)
    return graph


def make_biclique(
    graph: BipartiteGraph,
    n_users: int,
    n_items: int,
    clicks: int = 1,
    user_prefix: str = "bu",
    item_prefix: str = "bi",
) -> tuple[list[str], list[str]]:
    """Add a complete ``n_users x n_items`` biclique to ``graph``.

    Returns the created (user ids, item ids).  Used by extraction and
    property tests to plant known dense structures.
    """
    users = [f"{user_prefix}{index}" for index in range(n_users)]
    items = [f"{item_prefix}{index}" for index in range(n_items)]
    for user in users:
        for item in items:
            graph.add_click(user, item, clicks)
    return users, items
