"""Tests for the detector evaluation harness."""

from repro.baselines import NaiveDetector, WithScreening
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.eval import (
    default_detector_suite,
    evaluate_detector,
    run_suite,
    simulate_known_labels,
)


class TestEvaluateDetector:
    def test_exact_metrics_computed(self, small):
        run = evaluate_detector(RICDDetector(params=RICDParams(k1=5, k2=5)), small)
        assert run.name == "RICD"
        assert 0.0 <= run.exact.precision <= 1.0
        assert run.elapsed > 0.0
        assert run.known is None

    def test_known_metrics_computed(self, small):
        known = simulate_known_labels(small.graph, small.truth, seed=0)
        run = evaluate_detector(
            RICDDetector(params=RICDParams(k1=5, k2=5)), small, known
        )
        assert run.known is not None
        # Known labels are a subset of the truth, so known-recall can only
        # be >= exact recall while precision can only be <=.
        assert run.known.precision <= run.exact.precision + 1e-9
        assert run.known.recall >= run.exact.recall - 1e-9


class TestSuite:
    def test_default_suite_composition(self):
        suite = default_detector_suite()
        names = [d.name for d in suite]
        assert names[0] == "RICD"
        assert set(names[1:]) == {
            "LPA+UI",
            "CN+UI",
            "Louvain+UI",
            "COPYCATCH+UI",
            "FRAUDAR+UI",
            "Naive+UI",
        }

    def test_include_unscreened(self):
        suite = default_detector_suite(include_unscreened=True)
        names = {d.name for d in suite}
        assert "LPA" in names and "LPA+UI" in names

    def test_floors_follow_params(self):
        suite = default_detector_suite(params=RICDParams(k1=7, k2=9))
        wrapped = [d for d in suite if isinstance(d, WithScreening)]
        assert all(w.min_users == 7 and w.min_items == 9 for w in wrapped)

    def test_run_suite_order_and_labels(self, small):
        detectors = [
            RICDDetector(params=RICDParams(k1=5, k2=5)),
            NaiveDetector(),
        ]
        runs = run_suite(detectors, small, simulate_labels=True, label_seed=1)
        assert [r.name for r in runs] == ["RICD", "Naive"]
        assert all(r.known is not None for r in runs)

    def test_run_suite_without_labels(self, small):
        runs = run_suite([NaiveDetector()], small, simulate_labels=False)
        assert runs[0].known is None
