"""Tests for the partial-label (expert-labelling) simulation."""

import pytest

from repro.eval import simulate_known_labels


class TestSimulateKnownLabels:
    def test_known_is_subset_of_truth(self, small):
        known = simulate_known_labels(small.graph, small.truth, seed=0)
        assert set(known.users) <= small.truth.abnormal_users
        assert set(known.items) <= small.truth.abnormal_items

    def test_prior_fraction_contributes(self, small):
        known = simulate_known_labels(
            small.graph, small.truth, known_attacker_fraction=1.0, seed=0
        )
        # With the full prior, the known set equals the exact truth.
        assert set(known.users) == small.truth.abnormal_users
        assert set(known.items) == small.truth.abnormal_items

    def test_zero_prior_zero_sample(self, small):
        known = simulate_known_labels(
            small.graph,
            small.truth,
            sample_size=0,
            known_attacker_fraction=0.0,
            seed=0,
        )
        assert known.size == 0

    def test_incomplete_by_default(self, small):
        known = simulate_known_labels(small.graph, small.truth, seed=0)
        truth_size = len(small.truth.abnormal_users) + len(small.truth.abnormal_items)
        assert 0 < known.size < truth_size

    def test_deterministic(self, small):
        a = simulate_known_labels(small.graph, small.truth, seed=3)
        b = simulate_known_labels(small.graph, small.truth, seed=3)
        assert a == b

    def test_invalid_arguments(self, small):
        with pytest.raises(ValueError):
            simulate_known_labels(small.graph, small.truth, sample_size=-1)
        with pytest.raises(ValueError):
            simulate_known_labels(
                small.graph, small.truth, known_attacker_fraction=1.5
            )

    def test_size_property(self, small):
        known = simulate_known_labels(small.graph, small.truth, seed=0)
        assert known.size == len(known.users) + len(known.items)
