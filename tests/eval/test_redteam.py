"""Unit tests for the red-team frontier harness (ISSUE 8)."""

from __future__ import annotations

import pytest

from repro.config import RICDParams
from repro.datagen import clean_marketplace, family_names
from repro.errors import DataGenError
from repro.eval.metrics import Metrics
from repro.eval.robustness import FrontierPoint, RedTeamReport, red_team

PARAMS = RICDParams(k1=4, k2=4)


@pytest.fixture(scope="module")
def clean_graph():
    return clean_marketplace("tiny", seed=3)


@pytest.fixture(scope="module")
def report(clean_graph):
    return red_team(
        clean_graph,
        families=("coattails", "obfuscation"),
        budgets=(400,),
        adaptivity=(False, True),
        params=PARAMS,
        seed=0,
        with_feedback=False,
    )


def _metrics(precision=1.0, recall=0.5):
    return Metrics(
        precision=precision,
        recall=recall,
        f1=0.0,
        true_positives=1,
        output_size=1,
        known_size=2,
    )


class TestFrontierPoint:
    def test_recall_recovered_without_feedback_is_zero(self):
        point = FrontierPoint(
            family="coattails",
            budget=400,
            adaptive=False,
            metrics=_metrics(recall=0.5),
            feedback_metrics=None,
            feedback_rounds=0,
            n_workers=12,
            n_groups=1,
        )
        assert point.recall_recovered == 0.0
        row = point.to_row()
        assert row["family"] == "coattails"
        assert "feedback" not in row

    def test_recall_recovered_and_row_with_feedback(self):
        point = FrontierPoint(
            family="learned",
            budget=400,
            adaptive=True,
            metrics=_metrics(recall=0.1),
            feedback_metrics=_metrics(recall=0.7),
            feedback_rounds=3,
            n_workers=10,
            n_groups=2,
        )
        assert point.recall_recovered == pytest.approx(0.6)
        row = point.to_row()
        assert row["feedback"]["rounds"] == 3
        assert row["feedback"]["recall_recovered"] == pytest.approx(0.6)


class TestRedTeam:
    def test_grid_shape_and_order(self, report):
        assert [(p.family, p.budget, p.adaptive) for p in report.points] == [
            ("coattails", 400, False),
            ("coattails", 400, True),
            ("obfuscation", 400, False),
            ("obfuscation", 400, True),
        ]
        assert report.families() == ["coattails", "obfuscation"]

    def test_without_feedback_has_no_feedback_metrics(self, report):
        assert all(p.feedback_metrics is None for p in report.points)
        assert all(p.feedback_rounds == 0 for p in report.points)

    def test_campaigns_are_sized(self, report):
        for point in report.points:
            assert point.n_workers >= 1
            assert point.n_groups >= 1

    def test_best_recall(self, report):
        best = report.best_recall("coattails")
        assert best == max(
            p.metrics.recall for p in report.points if p.family == "coattails"
        )
        assert report.best_recall("no-such-family") == 0.0

    def test_to_json_artifact_schema(self, report):
        payload = report.to_json()
        assert payload["schema"] == "ricd.redteam.frontier/v1"
        assert payload["seed"] == 0
        assert payload["families"] == ["coattails", "obfuscation"]
        assert len(payload["points"]) == 4
        for row in payload["points"]:
            assert set(row) == {
                "family",
                "budget",
                "adaptive",
                "n_workers",
                "n_groups",
                "precision",
                "recall",
                "f1",
            }

    def test_deterministic_given_seed(self, clean_graph, report):
        again = red_team(
            clean_graph,
            families=("coattails", "obfuscation"),
            budgets=(400,),
            adaptivity=(False, True),
            params=PARAMS,
            seed=0,
            with_feedback=False,
        )
        assert again.to_json() == report.to_json()

    def test_unknown_family_raises(self, clean_graph):
        with pytest.raises(DataGenError):
            red_team(clean_graph, families=("no-such-family",), budgets=(400,))

    def test_defaults_cover_the_whole_zoo(self, clean_graph):
        single = red_team(
            clean_graph,
            budgets=(300,),
            adaptivity=(False,),
            params=PARAMS,
            with_feedback=False,
        )
        assert single.families() == family_names()

    def test_feedback_populates_metrics(self, clean_graph):
        fed = red_team(
            clean_graph,
            families=("coattails",),
            budgets=(400,),
            adaptivity=(True,),
            params=PARAMS,
            seed=0,
            with_feedback=True,
        )
        (point,) = fed.points
        assert point.feedback_metrics is not None
        assert point.feedback_metrics.recall >= point.metrics.recall
        assert point.to_row()["feedback"]["rounds"] == point.feedback_rounds


class TestHotCapRelaxation:
    """The Fig. 7 loop's ``hot_click_cap`` relaxation closes the hot-pad gap.

    Adaptive workers pad their mean hot-item clicks to exactly the
    deployed ``hot_click_cap``, so the user behaviour check clears every
    one of them: the baseline detector *and* a feedback loop that only
    relaxes ``t_click``/``alpha``/``k`` recover nothing.  Raising the cap
    per relaxation round (``FeedbackPolicy.hot_cap_step``) moves the
    organic-looking band above the padded mean and recovers the workers.
    """

    @pytest.fixture(scope="class")
    def attacked(self):
        from repro.datagen.attacks import plan_family

        graph = clean_marketplace("tiny", seed=0)
        attacked = graph.copy()
        plan = plan_family(attacked, "coattails", budget=800, seed=1, adaptive=True)
        truth = plan.apply(attacked)
        return attacked, truth

    def test_hot_pad_attack_evades_cap_blind_feedback(self, attacked):
        from repro.config import FeedbackPolicy
        from repro.core.framework import RICDDetector
        from repro.eval.robustness import node_metrics

        graph, truth = attacked
        expectation = len(truth.abnormal_users) + len(truth.abnormal_items)
        blind = RICDDetector(
            params=PARAMS,
            feedback=FeedbackPolicy(
                expectation=expectation, max_rounds=4, t_click_step=2.0,
                alpha_step=0.1, shrink_k=True,
            ),
        ).detect(graph)
        metrics = node_metrics(
            blind.suspicious_users, blind.suspicious_items,
            truth.abnormal_users, truth.abnormal_items,
        )
        # All four rounds spent, zero recall: the gap the relaxation closes.
        assert blind.feedback_rounds == 4
        assert metrics.recall == 0.0

    def test_cap_relaxation_recovers_the_workers(self, attacked):
        from repro.config import FeedbackPolicy
        from repro.core.framework import RICDDetector
        from repro.eval.robustness import node_metrics

        graph, truth = attacked
        expectation = len(truth.abnormal_users) + len(truth.abnormal_items)
        relaxed = RICDDetector(
            params=PARAMS,
            feedback=FeedbackPolicy(
                expectation=expectation, max_rounds=4, t_click_step=2.0,
                alpha_step=0.1, shrink_k=True, hot_cap_step=2.0,
            ),
        ).detect(graph)
        metrics = node_metrics(
            relaxed.suspicious_users, relaxed.suspicious_items,
            truth.abnormal_users, truth.abnormal_items,
        )
        assert metrics.recall > 0.5
        assert metrics.precision > 0.5

    def test_red_team_harness_uses_the_relaxation(self, attacked):
        """The sized policy the frontier harness builds has the step on."""
        from repro.eval.robustness import _sized_feedback_policy

        policy = _sized_feedback_policy(10)
        assert policy.hot_cap_step > 0

    def test_ceiling_bounds_the_relaxation(self):
        from repro.config import FeedbackPolicy, ScreeningParams
        from repro.core.identification import adjust_parameters

        policy = FeedbackPolicy(hot_cap_step=5.0, hot_cap_ceiling=8.0)
        screening = ScreeningParams()
        params = PARAMS.replace(t_click=10.0)
        for _ in range(4):
            params, screening = adjust_parameters(params, screening, policy)
        assert screening.hot_click_cap == 8.0
