"""Parallel-vs-serial equivalence of the evaluation harness.

The process-pool fan-out must be a pure wall-clock optimisation: same
metrics, same groupings, same ordering.  COPYCATCH is left out of the
suites here — its wall-clock deadline makes it the one detector whose
output legitimately varies under CPU contention.
"""

import multiprocessing
import os

import pytest

from repro import obs
from repro.baselines import (
    CommonNeighborsDetector,
    LabelPropagationDetector,
    NaiveDetector,
    WithScreening,
)
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.eval import run_suite, sensitivity_sweep


def _suite():
    params = RICDParams(k1=5, k2=5)
    return [
        RICDDetector(params=params),
        RICDDetector(params=params, variant="ricd-ui"),
        WithScreening(LabelPropagationDetector(min_users=5, min_items=5)),
        WithScreening(CommonNeighborsDetector(cn_threshold=5, min_users=5, min_items=5)),
        NaiveDetector(),
    ]


def _run_key(run):
    """Everything observable about a run except wall-clock."""
    return (
        run.name,
        run.exact,
        run.known,
        sorted(map(str, run.result.suspicious_users)),
        sorted(map(str, run.result.suspicious_items)),
        [
            (sorted(map(str, g.users)), sorted(map(str, g.items)))
            for g in run.result.groups
        ],
    )


class TestSuiteEquivalence:
    def test_parallel_matches_serial(self, small):
        serial = run_suite(_suite(), small, label_seed=3)
        parallel = run_suite(_suite(), small, label_seed=3, jobs=4)
        assert [_run_key(r) for r in serial] == [_run_key(r) for r in parallel]

    def test_order_follows_input(self, tiny):
        detectors = [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))]
        runs = run_suite(detectors, tiny, simulate_labels=False, jobs=2)
        assert [r.name for r in runs] == ["Naive", "RICD"]

    def test_jobs_one_is_serial_path(self, tiny):
        runs = run_suite([NaiveDetector()], tiny, simulate_labels=False, jobs=1)
        assert len(runs) == 1 and runs[0].known is None

    def test_more_jobs_than_detectors(self, tiny):
        runs = run_suite(
            [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))],
            tiny,
            simulate_labels=False,
            jobs=16,
        )
        assert len(runs) == 2


class _WorkerKiller:
    """A detector that hard-kills any pool worker it runs in.

    ``os._exit`` (not an exception) reproduces the real failure mode —
    OOM-killer / segfault — that breaks the whole ProcessPoolExecutor.
    In the parent (serial re-run) there is no parent process, so it
    delegates to a plain Naive detection and succeeds.
    """

    name = "WorkerKiller"

    def detect(self, graph):
        if multiprocessing.parent_process() is not None:
            os._exit(3)
        return NaiveDetector().detect(graph)


class TestBrokenPoolRecovery:
    def test_dead_worker_recovered_serially(self, tiny):
        detectors = [NaiveDetector(), _WorkerKiller(), NaiveDetector()]
        runs = run_suite(detectors, tiny, simulate_labels=False, jobs=2)
        assert [r.name for r in runs] == ["Naive", "WorkerKiller", "Naive"]
        # The killer's run was recovered in the parent and flagged; its
        # output matches what the serial path produces.
        by_name = {id(r): r for r in runs}
        killer = runs[1]
        assert killer.degraded
        assert killer.result.suspicious_users == runs[0].result.suspicious_users
        # Runs that happened to be lost with the pool are also recovered
        # (degraded or not, no run may be missing).
        assert all(r.result is not None for r in by_name.values())

    def test_recovery_counted_on_active_recorder(self, tiny):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            run_suite(
                [NaiveDetector(), _WorkerKiller()],
                tiny,
                simulate_labels=False,
                jobs=2,
            )
        assert recorder.counters["parallel.broken_pool_recoveries"] >= 1
        assert recorder.gauges.get("parallel.degraded") is True

    def test_healthy_suite_is_not_degraded(self, tiny):
        runs = run_suite(
            [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))],
            tiny,
            simulate_labels=False,
            jobs=2,
        )
        assert not any(r.degraded for r in runs)


class TestWorkerSlotNumbering:
    @staticmethod
    def _worker_slots(recorder):
        slots = []
        for name in recorder.counters:
            if name.startswith("parallel.worker"):
                slots.append(int(name.split(".")[1].removeprefix("worker")))
        return sorted(set(slots))

    def test_slots_are_dense_on_a_healthy_pool(self, tiny):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            run_suite(
                [NaiveDetector() for _ in range(4)],
                tiny,
                simulate_labels=False,
                jobs=3,
            )
        slots = self._worker_slots(recorder)
        assert slots == list(range(len(slots)))

    def test_slots_stay_dense_after_broken_pool_recovery(self, tiny):
        """Regression: serial re-runs must not leave holes in the
        ``parallel.worker<N>.tasks`` numbering.

        Slots are assigned per worker *pid* in order of first shipped
        trace; tasks recovered in the parent after the pool breaks ship
        no worker trace, so the numbering over surviving workers must
        remain 0..k with no gaps — a pid-keyed scheme would skip numbers.
        """
        detectors = [
            NaiveDetector(),
            _WorkerKiller(),
            NaiveDetector(),
            _WorkerKiller(),
            NaiveDetector(),
        ]
        recorder = obs.Recorder()
        with obs.recording(recorder):
            runs = run_suite(detectors, tiny, simulate_labels=False, jobs=3)
        assert len(runs) == len(detectors)
        assert recorder.counters["parallel.broken_pool_recoveries"] >= 1
        slots = self._worker_slots(recorder)
        assert slots == list(range(len(slots)))
        # The gauge agrees with the densely numbered slot count.
        if slots:
            assert recorder.gauges["parallel.workers_used"] == len(slots)


class TestWorkerTraceAggregation:
    def test_worker_spans_and_counters_merge_into_parent(self, tiny):
        detectors = [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))]
        recorder = obs.Recorder()
        with obs.recording(recorder):
            run_suite(detectors, tiny, simulate_labels=False, jobs=2)
        # Counters recorded inside workers arrive additively in the parent.
        assert recorder.counters["eval.detectors_evaluated"] == len(detectors)
        assert recorder.counters["parallel.tasks"] == len(detectors)
        # Worker slots are numbered from zero in order of first result.
        worker_tasks = {
            name: value
            for name, value in recorder.counters.items()
            if name.startswith("parallel.worker")
        }
        assert sum(worker_tasks.values()) == len(detectors)
        assert "parallel.worker0.tasks" in worker_tasks
        assert recorder.gauges["parallel.workers_used"] == len(worker_tasks)
        # Spans from inside the detectors crossed the process boundary.
        assert any(path.startswith("detector.RICD") for path in recorder.spans)

    def test_untraced_parallel_run_ships_no_traces(self, tiny):
        # No recorder active: workers must not pay for recording, and the
        # run must still succeed end to end.
        runs = run_suite(
            [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))],
            tiny,
            simulate_labels=False,
            jobs=2,
        )
        assert len(runs) == 2
        assert obs.current() is None


class TestSweepEquivalence:
    def test_parallel_matches_serial(self, tiny):
        base = RICDParams(k1=4, k2=4)
        values = [3, 4, 5]
        serial = sensitivity_sweep(tiny, "k1", values, base_params=base)
        parallel = sensitivity_sweep(tiny, "k1", values, base_params=base, jobs=3)
        assert [(p.parameter, p.value, p.exact, p.known) for p in serial] == [
            (p.parameter, p.value, p.exact, p.known) for p in parallel
        ]

    def test_invalid_parameter_rejected_before_fanout(self, tiny):
        with pytest.raises(ValueError):
            sensitivity_sweep(tiny, "bogus", [1], jobs=4)
