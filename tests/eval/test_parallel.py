"""Parallel-vs-serial equivalence of the evaluation harness.

The process-pool fan-out must be a pure wall-clock optimisation: same
metrics, same groupings, same ordering.  COPYCATCH is left out of the
suites here — its wall-clock deadline makes it the one detector whose
output legitimately varies under CPU contention.
"""

import pytest

from repro.baselines import (
    CommonNeighborsDetector,
    LabelPropagationDetector,
    NaiveDetector,
    WithScreening,
)
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.eval import run_suite, sensitivity_sweep


def _suite():
    params = RICDParams(k1=5, k2=5)
    return [
        RICDDetector(params=params),
        RICDDetector(params=params, variant="ricd-ui"),
        WithScreening(LabelPropagationDetector(min_users=5, min_items=5)),
        WithScreening(CommonNeighborsDetector(cn_threshold=5, min_users=5, min_items=5)),
        NaiveDetector(),
    ]


def _run_key(run):
    """Everything observable about a run except wall-clock."""
    return (
        run.name,
        run.exact,
        run.known,
        sorted(map(str, run.result.suspicious_users)),
        sorted(map(str, run.result.suspicious_items)),
        [
            (sorted(map(str, g.users)), sorted(map(str, g.items)))
            for g in run.result.groups
        ],
    )


class TestSuiteEquivalence:
    def test_parallel_matches_serial(self, small):
        serial = run_suite(_suite(), small, label_seed=3)
        parallel = run_suite(_suite(), small, label_seed=3, jobs=4)
        assert [_run_key(r) for r in serial] == [_run_key(r) for r in parallel]

    def test_order_follows_input(self, tiny):
        detectors = [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))]
        runs = run_suite(detectors, tiny, simulate_labels=False, jobs=2)
        assert [r.name for r in runs] == ["Naive", "RICD"]

    def test_jobs_one_is_serial_path(self, tiny):
        runs = run_suite([NaiveDetector()], tiny, simulate_labels=False, jobs=1)
        assert len(runs) == 1 and runs[0].known is None

    def test_more_jobs_than_detectors(self, tiny):
        runs = run_suite(
            [NaiveDetector(), RICDDetector(params=RICDParams(k1=4, k2=4))],
            tiny,
            simulate_labels=False,
            jobs=16,
        )
        assert len(runs) == 2


class TestSweepEquivalence:
    def test_parallel_matches_serial(self, tiny):
        base = RICDParams(k1=4, k2=4)
        values = [3, 4, 5]
        serial = sensitivity_sweep(tiny, "k1", values, base_params=base)
        parallel = sensitivity_sweep(tiny, "k1", values, base_params=base, jobs=3)
        assert [(p.parameter, p.value, p.exact, p.known) for p in serial] == [
            (p.parameter, p.value, p.exact, p.known) for p in parallel
        ]

    def test_invalid_parameter_rejected_before_fanout(self, tiny):
        with pytest.raises(ValueError):
            sensitivity_sweep(tiny, "bogus", [1], jobs=4)
