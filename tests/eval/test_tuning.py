"""Tests for the grid-search tuner."""

import pytest

from repro.config import RICDParams
from repro.eval import simulate_known_labels
from repro.eval.tuning import TUNABLE_FIELDS, grid_search


@pytest.fixture(scope="module")
def tuned(small):
    base = RICDParams(k1=5, k2=5)
    return grid_search(
        small,
        grid={"k1": [4, 5, 8], "alpha": [0.9, 1.0]},
        base_params=base,
    )


class TestGridSearch:
    def test_all_combinations_evaluated(self, tuned):
        assert len(tuned.points) == 6

    def test_best_is_argmax(self, tuned):
        best_value = tuned.best.metrics.f1
        assert all(point.metrics.f1 <= best_value + 1e-12 for point in tuned.points)

    def test_top_ordering(self, tuned):
        top = tuned.top(3)
        values = [point.metrics.f1 for point in top]
        assert values == sorted(values, reverse=True)
        assert top[0].params == tuned.best_params

    def test_non_swept_fields_preserved(self, tuned):
        assert all(point.params.k2 == 5 for point in tuned.points)

    def test_objective_precision(self, small):
        result = grid_search(
            small,
            grid={"k1": [4, 8]},
            base_params=RICDParams(k1=5, k2=5),
            objective="precision",
        )
        best = result.best.metrics.precision
        assert all(p.metrics.precision <= best + 1e-12 for p in result.points)

    def test_known_label_objective(self, small):
        known = simulate_known_labels(small.graph, small.truth, seed=0)
        result = grid_search(
            small,
            grid={"k1": [5]},
            base_params=RICDParams(k1=5, k2=5),
            known=known,
        )
        # With partial labels the metric must be the deflated one.
        assert result.best.metrics.known_size == known.size

    @pytest.mark.parametrize(
        ("grid", "objective"),
        [
            ({}, "f1"),
            ({"k3": [1]}, "f1"),
            ({"k1": [5]}, "accuracy"),
        ],
    )
    def test_invalid_inputs(self, small, grid, objective):
        with pytest.raises(ValueError):
            grid_search(small, grid=grid, objective=objective)

    def test_tunable_fields_constant(self):
        assert set(TUNABLE_FIELDS) == {"k1", "k2", "alpha", "t_hot", "t_click"}
