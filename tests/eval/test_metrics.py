"""Tests for Eq. 5/6 metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import Metrics, confusion_counts, node_metrics

node_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=20)


class TestNodeMetrics:
    def test_perfect_detection(self):
        metrics = node_metrics({"w"}, {"t"}, {"w"}, {"t"})
        assert metrics.as_row() == (1.0, 1.0, 1.0)

    def test_empty_output(self):
        metrics = node_metrics(set(), set(), {"w"}, {"t"})
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_empty_known(self):
        metrics = node_metrics({"w"}, set(), set(), set())
        assert metrics.recall == 0.0
        assert metrics.precision == 0.0

    def test_partial(self):
        metrics = node_metrics({"w1", "fp"}, {"t1"}, {"w1", "w2"}, {"t1", "t2"})
        assert metrics.true_positives == 2
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 4)

    def test_cross_side_ids_do_not_match(self):
        """A user id equal to a known *item* id must not count."""
        metrics = node_metrics({"x"}, set(), set(), {"x"})
        assert metrics.true_positives == 0

    @given(node_sets, node_sets, node_sets, node_sets)
    @settings(max_examples=80)
    def test_bounds_and_f1_consistency(self, du, di, ku, ki):
        # Shift item ids so user/item universes stay disjoint.
        di = {f"i{x}" for x in di}
        ki = {f"i{x}" for x in ki}
        metrics = node_metrics(du, di, ku, ki)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        if metrics.precision + metrics.recall > 0:
            expected = (
                2
                * metrics.precision
                * metrics.recall
                / (metrics.precision + metrics.recall)
            )
            assert metrics.f1 == pytest.approx(expected)
        else:
            assert metrics.f1 == 0.0

    @given(node_sets, node_sets)
    @settings(max_examples=50)
    def test_detecting_exactly_known_is_perfect(self, users, items):
        items = {f"i{x}" for x in items}
        metrics = node_metrics(users, items, users, items)
        if users or items:
            assert metrics.as_row() == (1.0, 1.0, 1.0)


class TestConfusionCounts:
    def test_counts(self):
        tp, fp, fn = confusion_counts({"a", "b", "c"}, {"b", "c", "d"})
        assert (tp, fp, fn) == (2, 1, 1)

    def test_disjoint(self):
        assert confusion_counts({"a"}, {"b"}) == (0, 1, 1)


class TestMetricsDataclass:
    def test_as_row(self):
        metrics = Metrics(0.5, 0.25, 1 / 3, 1, 2, 4)
        assert metrics.as_row() == (0.5, 0.25, 1 / 3)
