"""Tests for the adversarial-robustness evaluation API."""

import pytest

from repro.config import RICDParams
from repro.core import RICDDetector
from repro.datagen import (
    AttackConfig,
    MarketplaceConfig,
    generate_marketplace,
    generate_scenario,
)
from repro.eval import camouflage_sweep, evaluate_across_seeds, evasion_economics


def small_template(seed=0):
    return generate_scenario(
        MarketplaceConfig(
            n_users=1500,
            n_items=400,
            n_cohorts=2,
            cohort_users=(10, 18),
            cohort_items=(6, 9),
            n_superfans=15,
            superfan_clicks=(12, 18),
            n_swarms=0,
            seed=seed,
        ),
        AttackConfig(
            n_groups=2,
            workers_per_group=(6, 9),
            targets_per_group=(6, 8),
            target_clicks=(13, 15),
            density=1.0,
            sloppy_fraction=0.0,
            seed=seed + 1,
        ),
    )


def make_detector():
    return RICDDetector(params=RICDParams(k1=5, k2=5))


class TestCamouflageSweep:
    def test_levels_evaluated_in_order(self):
        points = camouflage_sweep(
            small_template(), make_detector, levels=((0, 0), (4, 8))
        )
        assert [p.camouflage_items for p in points] == [(0, 0), (4, 8)]

    def test_ricd_is_camouflage_stable(self):
        """Property (2)/(3): RICD quality should not collapse under camouflage."""
        points = camouflage_sweep(
            small_template(), make_detector, levels=((0, 0), (10, 20))
        )
        clean, heavy = points[0].metrics, points[1].metrics
        if clean.f1 > 0:  # guard against degenerate template
            assert heavy.f1 >= clean.f1 - 0.25


class TestEvasionEconomics:
    @pytest.fixture(scope="class")
    def report(self):
        clean = generate_marketplace(
            MarketplaceConfig(
                n_users=1500, n_items=400, n_cohorts=0, n_superfans=0, n_swarms=0, seed=9
            )
        )
        return evasion_economics(
            clean, RICDParams(k1=5, k2=5), n_workers=10, n_targets=10, seed=2
        )

    def test_overt_campaign_is_caught(self, report):
        assert report.overt_detection_rate >= 0.8

    def test_evasive_campaign_escapes(self, report):
        assert report.evasive_detection_rate == 0.0

    def test_evasion_costs_lift(self, report):
        """Invisibility is bought with effectiveness (property 3)."""
        assert report.evasive_mean_lift < report.overt_mean_lift

    def test_bound_respected(self, report):
        assert report.evasive_fake_edges <= report.invisible_click_bound


class TestSeedSummary:
    def test_aggregates(self):
        summary = evaluate_across_seeds(
            make_detector, small_template, seeds=(0, 1)
        )
        assert summary.n_seeds == 2
        assert 0.0 <= summary.min_f1 <= summary.mean_f1 <= summary.max_f1 <= 1.0
        assert summary.stdev_f1 >= 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            evaluate_across_seeds(make_detector, small_template, seeds=())
