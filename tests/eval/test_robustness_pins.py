"""Seed-pinned regressions for the robustness studies (ISSUE 8).

The camouflage sweep and the evasion-economics report are the two
robustness numbers quoted in the docs; these tests pin their exact
outputs under fixed seeds, captured against the pre-refactor
single-module ``datagen/attacks.py``.  The attacks package-ification
keeps the classic injector RNG-for-RNG identical, so any drift here
means the refactor (or a later change) silently moved an experiment.
"""

from __future__ import annotations

import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import (
    AttackConfig,
    MarketplaceConfig,
    generate_marketplace,
    generate_scenario,
)
from repro.eval.robustness import camouflage_sweep, evasion_economics

APPROX = dict(rel=1e-9, abs=1e-12)


@pytest.fixture(scope="module")
def sweep_points():
    template = generate_scenario(
        MarketplaceConfig(
            n_users=1500,
            n_items=400,
            n_cohorts=2,
            cohort_users=(10, 18),
            cohort_items=(6, 9),
            n_superfans=15,
            superfan_clicks=(12, 18),
            n_swarms=0,
            seed=7,
        ),
        AttackConfig(
            n_groups=2,
            workers_per_group=(6, 9),
            targets_per_group=(6, 8),
            target_clicks=(13, 15),
            density=1.0,
            sloppy_fraction=0.0,
            seed=8,
        ),
    )
    return camouflage_sweep(
        template,
        lambda: RICDDetector(params=RICDParams(k1=5, k2=5)),
        levels=((0, 0), (3, 10), (12, 25)),
    )


class TestCamouflageSweepPin:
    # (precision, recall, f1, true_positives, output_size, known_size)
    PINNED = (
        (1.0, 0.4642857142857143, 0.6341463414634146, 13, 13, 28),
        (1.0, 0.43333333333333335, 0.6046511627906976, 13, 13, 30),
        (0.0, 0.0, 0.0, 0, 0, 28),
    )

    def test_levels_round_trip(self, sweep_points):
        assert [p.camouflage_items for p in sweep_points] == [
            (0, 0),
            (3, 10),
            (12, 25),
        ]

    @pytest.mark.parametrize("index", range(3))
    def test_pinned_metrics(self, sweep_points, index):
        m = sweep_points[index].metrics
        precision, recall, f1, tp, output, known = self.PINNED[index]
        assert m.precision == pytest.approx(precision, **APPROX)
        assert m.recall == pytest.approx(recall, **APPROX)
        assert m.f1 == pytest.approx(f1, **APPROX)
        assert (m.true_positives, m.output_size, m.known_size) == (tp, output, known)


class TestEvasionEconomicsPin:
    def test_pinned_report(self):
        marketplace = generate_marketplace(
            MarketplaceConfig(n_swarms=0, n_superfans=0, seed=21)
        )
        report = evasion_economics(
            marketplace,
            RICDParams(k1=10, k2=10),
            n_workers=25,
            n_targets=12,
            seed=3,
        )
        assert report.overt_detection_rate == pytest.approx(1.0, **APPROX)
        assert report.evasive_detection_rate == pytest.approx(0.0, **APPROX)
        assert report.overt_mean_lift == pytest.approx(
            0.014199805866472535, **APPROX
        )
        assert report.evasive_mean_lift == pytest.approx(
            0.0018685375879311811, **APPROX
        )
        assert report.invisible_click_bound == 285
        assert report.evasive_fake_edges == 108
