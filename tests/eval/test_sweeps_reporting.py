"""Tests for sensitivity sweeps and the text renderers."""

import pytest

from repro.config import RICDParams
from repro.eval import render_series, render_table, sensitivity_sweep
from repro.eval.reporting import format_float, render_timeline
from repro.eval.sweeps import SWEEPABLE_PARAMETERS


class TestSensitivitySweep:
    def test_sweep_points_in_order(self, small):
        base = RICDParams(k1=5, k2=5, t_hot=200.0, t_click=13.0)
        points = sensitivity_sweep(small, "k1", [4, 5, 6], base_params=base)
        assert [p.value for p in points] == [4.0, 5.0, 6.0]
        assert all(p.parameter == "k1" for p in points)

    def test_recall_monotone_decreasing_in_k1(self, small):
        base = RICDParams(k1=5, k2=5, t_hot=200.0, t_click=13.0)
        points = sensitivity_sweep(small, "k1", [4, 6, 8], base_params=base)
        recalls = [p.exact.recall for p in points]
        assert recalls[0] >= recalls[-1]

    def test_alpha_values_are_floats(self, small):
        base = RICDParams(k1=5, k2=5, t_hot=200.0, t_click=13.0)
        points = sensitivity_sweep(small, "alpha", [0.8, 1.0], base_params=base)
        assert len(points) == 2

    def test_unknown_parameter_rejected(self, small):
        with pytest.raises(ValueError):
            sensitivity_sweep(small, "k3", [1, 2])

    def test_sweepable_set(self):
        assert set(SWEEPABLE_PARAMETERS) == {"k1", "k2", "alpha", "t_click", "t_hot"}


class TestFormatFloat:
    def test_values(self):
        assert format_float(0.8125) == "0.812"
        assert format_float(None) == "-"
        assert format_float(12.0, 1) == "12.0"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = [line for line in text.splitlines() if "|" in line]
        assert len({line.index("|") for line in lines}) == 1  # aligned pipes

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderSeries:
    def test_columns(self):
        text = render_series("x", [1, 2], {"p": [0.5, 0.6], "r": [0.9, 0.8]})
        assert "0.500" in text
        assert "0.800" in text

    def test_short_series_padded(self):
        text = render_series("x", [1, 2], {"p": [0.5]})
        assert text.splitlines()[-1].rstrip().endswith("-")


class TestRenderTimeline:
    def test_events_marked(self):
        text = render_timeline(
            [1, 2], {"fake": [0.0, 5.0]}, {2: "detected"}, title="T"
        )
        assert "detected" in text
        assert text.splitlines()[0] == "T"
