"""Run the public API's embedded doctests as part of the suite.

Every usage example shown in a docstring must actually work; this module
executes them so documentation rot fails CI.
"""

import doctest

import pytest

import repro._util
import repro.core.camouflage
import repro.core.framework
import repro.core.i2i
import repro.core.incremental
import repro.core.thresholds
import repro.datagen.distributions
import repro.eval.metrics
import repro.eval.reporting
import repro.graph.bipartite
import repro.graph.io

MODULES = [
    repro._util,
    repro.core.camouflage,
    repro.core.framework,
    repro.core.i2i,
    repro.core.incremental,
    repro.core.thresholds,
    repro.datagen.distributions,
    repro.eval.metrics,
    repro.eval.reporting,
    repro.graph.bipartite,
    repro.graph.io,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
