"""Property-based tests of Algorithm 3's pruning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ceil_frac
from repro.config import RICDParams
from repro.core.extraction import core_pruning, extract_groups, prune_to_fixpoint
from repro.graph import BipartiteGraph, from_click_records

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=11).map(lambda n: f"i{n}"),
        st.just(1),
    ),
    max_size=80,
)

param_values = st.tuples(
    st.integers(min_value=1, max_value=4),  # k1
    st.integers(min_value=1, max_value=4),  # k2
    st.sampled_from([0.5, 0.7, 0.8, 1.0]),  # alpha
)


@given(records, param_values)
@settings(max_examples=80)
def test_core_pruning_postcondition(rows, values):
    k1, k2, alpha = values
    graph = from_click_records(rows)
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    core_pruning(graph, params)
    for user in graph.users():
        assert graph.user_degree(user) >= ceil_frac(alpha, k2)
    for item in graph.items():
        assert graph.item_degree(item) >= ceil_frac(alpha, k1)


@given(records, param_values)
@settings(max_examples=60)
def test_fixpoint_is_stable(rows, values):
    k1, k2, alpha = values
    graph = from_click_records(rows)
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    prune_to_fixpoint(graph, params)
    snapshot = graph.copy()
    prune_to_fixpoint(graph, params)
    assert graph == snapshot


@given(records, param_values)
@settings(max_examples=60)
def test_square_pruning_lemma2_postcondition(rows, values):
    """Every survivor has >= k1 (resp. k2) strong same-side partners, self included."""
    k1, k2, alpha = values
    graph = from_click_records(rows)
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    prune_to_fixpoint(graph, params)
    user_floor = ceil_frac(alpha, k2)
    for user in graph.users():
        strong = sum(
            1
            for other in graph.users()
            if other != user
            and len(
                set(graph.user_neighbors(user)) & set(graph.user_neighbors(other))
            )
            >= user_floor
        )
        if graph.user_degree(user) >= user_floor:
            strong += 1
        assert strong >= k1
    item_floor = ceil_frac(alpha, k1)
    for item in graph.items():
        strong = sum(
            1
            for other in graph.items()
            if other != item
            and len(
                set(graph.item_neighbors(item)) & set(graph.item_neighbors(other))
            )
            >= item_floor
        )
        if graph.item_degree(item) >= item_floor:
            strong += 1
        assert strong >= k2


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25)
def test_planted_biclique_always_recovered(n_users, n_items):
    """Completeness: a clean biclique at exactly (k1, k2) is never lost."""
    graph = BipartiteGraph()
    for user_index in range(n_users):
        for item_index in range(n_items):
            graph.add_click(f"u{user_index}", f"i{item_index}", 1)
    groups = extract_groups(graph, RICDParams(k1=n_users, k2=n_items, alpha=1.0))
    assert len(groups) == 1
    assert len(groups[0].users) == n_users
    assert len(groups[0].items) == n_items


@given(records)
@settings(max_examples=50)
def test_extraction_output_within_input(rows):
    graph = from_click_records(rows)
    groups = extract_groups(graph, RICDParams(k1=2, k2=2))
    all_users = set(graph.users())
    all_items = set(graph.items())
    for group in groups:
        assert group.users <= all_users
        assert group.items <= all_items


@given(records, st.sampled_from([0.5, 0.7, 1.0]))
@settings(max_examples=50)
def test_lower_alpha_keeps_no_fewer_nodes(rows, alpha):
    """Relaxing alpha never shrinks the surviving vertex set."""
    strict_graph = from_click_records(rows)
    prune_to_fixpoint(strict_graph, RICDParams(k1=3, k2=3, alpha=1.0))
    loose_graph = from_click_records(rows)
    prune_to_fixpoint(loose_graph, RICDParams(k1=3, k2=3, alpha=alpha))
    assert set(strict_graph.users()) <= set(loose_graph.users())
    assert set(strict_graph.items()) <= set(loose_graph.items())
