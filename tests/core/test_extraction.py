"""Tests for Algorithm 3: CorePruning, SquarePruning, group extraction."""

import pytest

from repro.config import RICDParams
from repro.core.extraction import (
    core_pruning,
    extract_groups,
    prune_to_fixpoint,
    square_pruning,
)
from repro.graph import BipartiteGraph

from ..conftest import make_biclique


def params(k1=3, k2=3, alpha=1.0):
    return RICDParams(k1=k1, k2=k2, alpha=alpha)


class TestCorePruning:
    def test_removes_low_degree_users(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        graph.add_click("loner", "bi0", 1)  # degree 1 < ceil(1.0 * 3)
        core_pruning(graph, params())
        assert not graph.has_user("loner")
        assert graph.num_users == 3

    def test_cascades(self):
        # A chain where removing the first user drops an item below floor,
        # which drops another user, etc.
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        graph.add_click("x", "extra", 1)
        graph.add_click("y", "extra", 1)
        graph.add_click("y", "extra2", 1)
        core_pruning(graph, params(k1=2, k2=2))
        # x (degree 1) goes; "extra" drops to degree 1 and goes; y follows.
        assert not graph.has_user("x")
        assert not graph.has_item("extra")
        assert not graph.has_user("y")

    def test_biclique_survives(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 4, 5)
        core_pruning(graph, params(k1=4, k2=5))
        assert set(graph.users()) == set(users)
        assert set(graph.items()) == set(items)

    def test_lemma1_postcondition(self, small):
        """After CorePruning every survivor satisfies Lemma 1 degrees."""
        graph = small.graph.copy()
        p = params(k1=5, k2=5, alpha=0.8)
        core_pruning(graph, p)
        for user in graph.users():
            assert graph.user_degree(user) >= p.user_degree_floor
        for item in graph.items():
            assert graph.item_degree(item) >= p.item_degree_floor

    def test_returns_whether_removed(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        assert core_pruning(graph, params()) is False
        graph.add_click("loner", "bi0", 1)
        assert core_pruning(graph, params()) is True

    def test_alpha_scales_floor(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        graph.add_click("partial", "bi0", 1)
        graph.add_click("partial", "bi1", 1)
        # ceil(0.6 * 3) = 2 -> degree-2 user survives.
        core_pruning(graph, params(alpha=0.6))
        assert graph.has_user("partial")


class TestSquarePruning:
    def test_biclique_survives(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 4, 4)
        prune_to_fixpoint(graph, params(k1=4, k2=4))
        assert set(graph.users()) == set(users)
        assert set(graph.items()) == set(items)

    def test_exact_core_size_survives(self):
        """A k1 x k2 biclique must survive (self counts in Lemma 2)."""
        graph = BipartiteGraph()
        make_biclique(graph, 3, 3)
        prune_to_fixpoint(graph, params(k1=3, k2=3))
        assert graph.num_users == 3
        assert graph.num_items == 3

    def test_undersized_biclique_removed(self):
        graph = BipartiteGraph()
        make_biclique(graph, 2, 5)  # only 2 users < k1=3
        prune_to_fixpoint(graph, params(k1=3, k2=3))
        assert graph.num_users == 0

    def test_sparse_star_removed(self):
        """A hub item with many degree-1 users is not a biclique."""
        graph = BipartiteGraph()
        for index in range(10):
            graph.add_click(f"u{index}", "hub", 1)
        square_pruning(graph, params(k1=2, k2=2))
        assert graph.num_users == 0

    def test_extension_at_lower_alpha(self):
        """An 80%-connected extension user survives alpha=0.8, dies at 1.0."""
        graph = BipartiteGraph()
        _users, items = make_biclique(graph, 4, 5)
        for item in items[:4]:  # connected to 4/5 = 80% of core items
            graph.add_click("ext", item, 1)
        strict = graph.copy()
        prune_to_fixpoint(strict, params(k1=4, k2=5, alpha=1.0))
        assert not strict.has_user("ext")
        loose = graph.copy()
        prune_to_fixpoint(loose, params(k1=4, k2=5, alpha=0.8))
        assert loose.has_user("ext")


class TestExtractGroups:
    def test_planted_biclique_found(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 4, 4)
        # Background noise that must be pruned away.
        graph.add_click("n1", "other", 1)
        graph.add_click("n2", "other", 1)
        groups = extract_groups(graph, params(k1=4, k2=4))
        assert len(groups) == 1
        assert groups[0].users == set(users)
        assert groups[0].items == set(items)

    def test_two_disjoint_groups(self):
        graph = BipartiteGraph()
        make_biclique(graph, 4, 4, user_prefix="au", item_prefix="ai")
        make_biclique(graph, 5, 5, user_prefix="bu", item_prefix="bi")
        groups = extract_groups(graph, params(k1=4, k2=4))
        assert len(groups) == 2
        assert len(groups[0].users) == 5  # largest first

    def test_component_floors(self):
        graph = BipartiteGraph()
        make_biclique(graph, 3, 6)
        groups = extract_groups(graph, params(k1=4, k2=4))
        assert groups == []

    def test_max_size_filters(self):
        graph = BipartiteGraph()
        make_biclique(graph, 10, 4)
        assert extract_groups(graph, params(k1=4, k2=4), max_users=8) == []
        assert len(extract_groups(graph, params(k1=4, k2=4), max_users=10)) == 1

    def test_copy_semantics(self):
        graph = BipartiteGraph()
        make_biclique(graph, 4, 4)
        graph.add_click("noise", "bi0", 1)
        before = graph.copy()
        extract_groups(graph, params(k1=4, k2=4))
        assert graph == before  # default copy=True leaves input intact
        extract_groups(graph, params(k1=4, k2=4), copy=False)
        assert graph != before  # in-place pruning mutates

    def test_empty_graph(self, empty_graph):
        assert extract_groups(empty_graph, params()) == []

    def test_attack_group_recovered_from_scenario(self, small):
        """End-to-end on generated data: planted workers are extracted."""
        groups = extract_groups(small.graph, params(k1=5, k2=5))
        extracted_users = {u for g in groups for u in g.users}
        caught = len(extracted_users & small.truth.abnormal_users)
        assert caught >= 0.5 * len(small.truth.abnormal_users)

    def test_single_pass_is_weaker_or_equal(self, small):
        """Fixpoint iteration can only remove more than a single pass."""
        single = small.graph.copy()
        prune_to_fixpoint(single, params(k1=5, k2=5), iterate=False)
        fixed = small.graph.copy()
        prune_to_fixpoint(fixed, params(k1=5, k2=5), iterate=True)
        assert set(fixed.users()) <= set(single.users())
        assert set(fixed.items()) <= set(single.items())
