"""Tests for the assembled RICD framework."""

import pytest

from repro.config import FeedbackPolicy, RICDParams, ScreeningParams
from repro.core.framework import (
    VARIANT_FULL,
    VARIANT_NO_ITEM,
    VARIANT_NO_SCREEN,
    RICDDetector,
)
from repro.errors import FeedbackExhaustedError

from ..conftest import make_biclique


def detector(**overrides):
    defaults = dict(params=RICDParams(k1=5, k2=5))
    defaults.update(overrides)
    return RICDDetector(**defaults)


class TestBasics:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            RICDDetector(variant="nonsense")

    def test_names(self):
        assert RICDDetector().name == "RICD"
        assert RICDDetector(variant=VARIANT_NO_ITEM).name == "RICD-I"
        assert RICDDetector(variant=VARIANT_NO_SCREEN).name == "RICD-UI"

    def test_input_graph_untouched(self, small):
        before = small.graph.copy()
        detector().detect(small.graph)
        assert small.graph == before

    def test_timings_recorded(self, small):
        result = detector().detect(small.graph)
        assert set(result.timings) >= {"detection", "screening", "identification"}

    def test_threshold_resolution(self, small):
        resolved = detector().resolve_thresholds(small.graph)
        assert resolved.t_hot is not None
        assert resolved.t_click is not None

    def test_explicit_thresholds_respected(self, small):
        params = RICDParams(k1=5, k2=5, t_hot=123.0, t_click=9.0)
        resolved = RICDDetector(params=params).resolve_thresholds(small.graph)
        assert resolved.t_hot == 123.0
        assert resolved.t_click == 9.0


class TestDetectionQuality:
    def test_catches_planted_workers(self, small):
        result = detector().detect(small.graph)
        caught = result.suspicious_users & small.truth.abnormal_users
        assert len(caught) >= 0.4 * len(small.truth.abnormal_users)

    def test_exact_precision_is_high(self, small):
        result = detector().detect(small.graph)
        truth_nodes = small.truth.abnormal_nodes
        output = result.suspicious_nodes
        assert output, "detector found nothing"
        precision = len(output & truth_nodes) / len(output)
        assert precision >= 0.7

    def test_variant_precision_ordering(self, small):
        """Table VI: precision rises RICD-UI -> RICD-I -> RICD."""
        precisions = {}
        for variant in (VARIANT_NO_SCREEN, VARIANT_NO_ITEM, VARIANT_FULL):
            result = detector(variant=variant).detect(small.graph)
            output = result.suspicious_nodes
            hits = len(output & small.truth.abnormal_nodes)
            precisions[variant] = hits / len(output) if output else 0.0
        assert precisions[VARIANT_NO_SCREEN] <= precisions[VARIANT_NO_ITEM]
        assert precisions[VARIANT_NO_ITEM] <= precisions[VARIANT_FULL]

    def test_scores_cover_output(self, small):
        result = detector().detect(small.graph)
        assert set(result.user_scores) == result.suspicious_users
        assert set(result.item_scores) == result.suspicious_items


class TestSeedExpansionPath:
    def test_seeded_detection_finds_seeded_group(self, small):
        group = small.truth.groups[0]
        seed = group.workers[0]
        result = detector().detect(small.graph, seed_users=[seed])
        # Detection restricted to the seed neighbourhood still finds the
        # seeded group's members (if that group is detectable at all).
        full = detector().detect(small.graph)
        if set(group.workers) & full.suspicious_users:
            assert set(group.workers) & result.suspicious_users

    def test_seeded_output_is_subset_of_full(self, small):
        seed = small.truth.groups[0].workers[0]
        seeded = detector().detect(small.graph, seed_users=[seed])
        full = detector().detect(small.graph)
        assert seeded.suspicious_users <= full.suspicious_users

    def test_unknown_seed_yields_empty(self, small):
        result = detector().detect(small.graph, seed_users=["no_such_user"])
        assert not result.suspicious_users


class TestGroupSizeCap:
    def test_cap_drops_oversized_groups(self):
        from repro.graph import BipartiteGraph

        graph = BipartiteGraph()
        # A "swarm": 12 users x 6 items, heavy clicks (attack-like).
        make_biclique(graph, 12, 6, clicks=15, user_prefix="sw", item_prefix="si")
        # Organic volume so the swarm items stay below t_hot.
        for index in range(400):
            graph.add_click(f"bg{index}", "popular", 3)
        capped = RICDDetector(
            params=RICDParams(k1=5, k2=5, t_hot=500.0, t_click=10.0),
            screening=ScreeningParams(min_users=2, min_items=2),
            max_group_users=8,
        )
        assert capped.detect(graph).suspicious_users == set()
        uncapped = RICDDetector(
            params=RICDParams(k1=5, k2=5, t_hot=500.0, t_click=10.0),
            screening=ScreeningParams(min_users=2, min_items=2),
            max_group_users=None,
        )
        assert len(uncapped.detect(graph).suspicious_users) == 12


class TestFeedbackLoop:
    def test_no_feedback_zero_rounds(self, small):
        result = detector().detect(small.graph)
        assert result.feedback_rounds == 0

    def test_feedback_relaxes_until_expectation(self, small):
        # Force an initially-empty output with an absurd t_click, then let
        # the loop walk it down.
        params = RICDParams(k1=5, k2=5, t_click=40.0)
        policy = FeedbackPolicy(expectation=5, max_rounds=8, t_click_step=6.0, alpha_step=0.0)
        strict = RICDDetector(params=params, feedback=None).detect(small.graph)
        looped = RICDDetector(params=params, feedback=policy).detect(small.graph)
        assert len(looped.suspicious_nodes) >= len(strict.suspicious_nodes)
        assert looped.feedback_rounds >= 1

    def test_strict_feedback_raises_when_exhausted(self, small):
        params = RICDParams(k1=5, k2=5, t_click=500.0, t_hot=1.0)
        policy = FeedbackPolicy(
            expectation=10_000, max_rounds=1, t_click_step=1.0, alpha_step=0.0
        )
        strict = RICDDetector(
            params=params, feedback=policy, strict_feedback=True
        )
        with pytest.raises(FeedbackExhaustedError):
            strict.detect(small.graph)

    def test_lenient_feedback_returns_best(self, small):
        params = RICDParams(k1=5, k2=5, t_click=500.0, t_hot=1.0)
        policy = FeedbackPolicy(
            expectation=10_000, max_rounds=1, t_click_step=1.0, alpha_step=0.0
        )
        result = RICDDetector(params=params, feedback=policy).detect(small.graph)
        assert result.feedback_rounds == 1  # tried, gave up, returned best


class TestEngines:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            RICDDetector(engine="gpu")

    @pytest.mark.parametrize("engine", ["sparse", "bitset", "auto"])
    def test_engines_agree_with_reference(self, small, engine):
        from repro.core.extraction_bitset import bitset_available
        from repro.core.extraction_sparse import sparse_available

        if engine == "sparse" and not sparse_available():
            pytest.skip("scipy not installed")
        if engine == "bitset" and not bitset_available():
            pytest.skip("numpy not installed")
        reference = detector(engine="reference").detect(small.graph)
        other = detector(engine=engine).detect(small.graph)
        assert other.suspicious_users == reference.suspicious_users
        assert other.suspicious_items == reference.suspicious_items

    def test_auto_engine_threshold_tunable(self, small):
        from unittest import mock

        from repro.core import extraction_bitset

        if not extraction_bitset.bitset_available():
            pytest.skip("numpy not installed")
        # The small scenario sits under the 20k default, so auto stays on
        # the reference engine; dropping the field promotes to bitset.
        assert small.graph.num_edges < RICDDetector().auto_engine_edge_threshold
        with mock.patch.object(
            extraction_bitset,
            "extract_groups_bitset",
            wraps=extraction_bitset.extract_groups_bitset,
        ) as spy:
            detector(engine="auto").detect(small.graph)
            assert spy.call_count == 0
            detector(engine="auto", auto_engine_edge_threshold=1).detect(small.graph)
            assert spy.call_count > 0


class TestThresholdCache:
    def test_resolution_memoized_per_version(self, small):
        d = detector()
        first = d.resolve_thresholds(small.graph)
        assert d.resolve_thresholds(small.graph) is first

    def test_mutation_invalidates_resolution(self, small):
        d = detector()
        graph = small.graph.copy()
        first = d.resolve_thresholds(graph)
        # A new heavy item moves the Pareto mass, so the cache must miss.
        for n in range(40):
            graph.add_click(f"cache_u{n}", "cache_hot", 500)
        second = d.resolve_thresholds(graph)
        assert second is not first

    def test_detector_with_cache_still_pickles(self, small):
        import pickle

        d = detector()
        d.resolve_thresholds(small.graph)
        clone = pickle.loads(pickle.dumps(d))
        assert clone.params == d.params
        assert clone.resolve_thresholds(small.graph).t_hot is not None
