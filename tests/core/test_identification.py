"""Tests for risk scoring, ranking and the feedback relaxation."""

import pytest

from repro.config import FeedbackPolicy, RICDParams, ScreeningParams
from repro.core.groups import DetectionResult, SuspiciousGroup
from repro.core.identification import (
    adjust_parameters,
    assemble_result,
    output_size,
    score_groups,
)
from repro.graph import BipartiteGraph


@pytest.fixture()
def scored_graph():
    graph = BipartiteGraph()
    graph.add_click("w1", "t1", 12)
    graph.add_click("w1", "t2", 12)
    graph.add_click("w2", "t1", 12)
    graph.add_click("other", "t1", 1)
    return graph


@pytest.fixture()
def group():
    return SuspiciousGroup(users={"w1", "w2"}, items={"t1", "t2"})


class TestScoreGroups:
    def test_user_score_counts_suspicious_items(self, scored_graph, group):
        user_scores, _ = score_groups(scored_graph, [group])
        assert user_scores["w1"] == 2.0
        assert user_scores["w2"] == 1.0

    def test_item_score_averages_user_risks(self, scored_graph, group):
        user_scores, item_scores = score_groups(scored_graph, [group])
        # t1 clicked by w1 (risk 2) and w2 (risk 1); "other" is not suspicious.
        assert item_scores["t1"] == pytest.approx(1.5)
        assert item_scores["t2"] == pytest.approx(2.0)

    def test_missing_nodes_scored_zero(self, scored_graph):
        ghost = SuspiciousGroup(users={"ghost"}, items={"phantom"})
        user_scores, item_scores = score_groups(scored_graph, [ghost])
        assert user_scores["ghost"] == 0.0
        assert item_scores["phantom"] == 0.0

    def test_empty_groups(self, scored_graph):
        assert score_groups(scored_graph, []) == ({}, {})


class TestAssembleResult:
    def test_union_and_scores(self, scored_graph, group):
        result = assemble_result(scored_graph, [group])
        assert result.suspicious_users == {"w1", "w2"}
        assert result.suspicious_items == {"t1", "t2"}
        assert result.top_users(1) == [("w1", 2.0)]

    def test_top_k_ordering_is_deterministic(self, scored_graph):
        groups = [SuspiciousGroup(users={"w1", "w2"}, items={"t1"})]
        result = assemble_result(scored_graph, groups)
        # w2 and... ties broken by id string.
        names = [name for name, _score in result.top_users(5)]
        assert names == sorted(names, key=lambda n: (-result.user_scores[n], str(n)))


class TestOutputSize:
    def test_counts_distinct_nodes(self, group):
        other = SuspiciousGroup(users={"w2", "w3"}, items={"t2"})
        assert output_size([group, other]) == 3 + 2  # users {w1,w2,w3}, items {t1,t2}

    def test_empty(self):
        assert output_size([]) == 0


class TestAdjustParameters:
    def test_t_click_decreases_with_floor(self):
        params = RICDParams(t_click=12.0)
        policy = FeedbackPolicy(t_click_step=4.0, alpha_step=0.0)
        relaxed, _ = adjust_parameters(params, ScreeningParams(), policy)
        assert relaxed.t_click == 8.0
        for _round in range(10):
            relaxed, _ = adjust_parameters(relaxed, ScreeningParams(), policy)
        assert relaxed.t_click == 2.0

    def test_alpha_decreases_with_floor(self):
        params = RICDParams(alpha=1.0, t_click=12.0)
        policy = FeedbackPolicy(alpha_step=0.2, alpha_floor=0.7, t_click_step=0.0)
        relaxed, _ = adjust_parameters(params, ScreeningParams(), policy)
        assert relaxed.alpha == pytest.approx(0.8)
        relaxed, _ = adjust_parameters(relaxed, ScreeningParams(), policy)
        assert relaxed.alpha == pytest.approx(0.7)  # floored

    def test_shrink_k(self):
        params = RICDParams(k1=3, k2=3, t_click=12.0)
        policy = FeedbackPolicy(shrink_k=True)
        relaxed, _ = adjust_parameters(params, ScreeningParams(), policy)
        assert (relaxed.k1, relaxed.k2) == (2, 2)
        relaxed, _ = adjust_parameters(relaxed, ScreeningParams(), policy)
        assert (relaxed.k1, relaxed.k2) == (2, 2)  # floored at 2

    def test_inputs_untouched(self):
        params = RICDParams(t_click=12.0)
        adjust_parameters(params, ScreeningParams(), FeedbackPolicy())
        assert params.t_click == 12.0

    def test_unresolved_t_click_left_alone(self):
        params = RICDParams()  # t_click=None
        relaxed, _ = adjust_parameters(params, ScreeningParams(), FeedbackPolicy())
        assert relaxed.t_click is None


class TestDetectionResultHelpers:
    def test_from_groups(self, group):
        result = DetectionResult.from_groups([group])
        assert result.suspicious_users == group.users
        assert result.suspicious_items == group.items

    def test_elapsed_sums_timings(self):
        result = DetectionResult(timings={"a": 1.0, "b": 0.5})
        assert result.elapsed == pytest.approx(1.5)

    def test_suspicious_nodes_union(self, group):
        result = DetectionResult.from_groups([group])
        assert result.suspicious_nodes == {"w1", "w2", "t1", "t2"}

    def test_group_copy_is_independent(self, group):
        clone = group.copy()
        clone.users.add("extra")
        assert "extra" not in group.users
