"""Tests for T_hot (Pareto rule) and T_click (Eq. 4)."""

import pytest

from repro.core.thresholds import (
    classify_items,
    hot_items,
    pareto_hot_threshold,
    t_click_from_graph,
    t_click_threshold,
)
from repro.graph import BipartiteGraph


@pytest.fixture()
def skewed_graph():
    """One dominant item (80 clicks) plus a tail (20 clicks total)."""
    graph = BipartiteGraph()
    graph.add_click("a", "head", 80)
    graph.add_click("a", "mid", 12)
    graph.add_click("b", "tail1", 5)
    graph.add_click("b", "tail2", 3)
    return graph


class TestParetoHotThreshold:
    def test_dominant_item_is_boundary(self, skewed_graph):
        assert pareto_hot_threshold(skewed_graph, 0.8) == 80

    def test_larger_mass_reaches_deeper(self, skewed_graph):
        assert pareto_hot_threshold(skewed_graph, 0.95) == 5

    def test_empty_graph_returns_one(self, empty_graph):
        assert pareto_hot_threshold(empty_graph) == 1

    def test_clickless_items(self):
        graph = BipartiteGraph()
        graph.add_item("ghost")
        assert pareto_hot_threshold(graph) == 1

    def test_invalid_fraction(self, skewed_graph):
        with pytest.raises(ValueError):
            pareto_hot_threshold(skewed_graph, 0.0)
        with pytest.raises(ValueError):
            pareto_hot_threshold(skewed_graph, 1.1)

    def test_mass_accounting(self, skewed_graph):
        """Items at/above the threshold must hold >= the mass fraction."""
        threshold = pareto_hot_threshold(skewed_graph, 0.8)
        hot_mass = sum(
            skewed_graph.item_total_clicks(i)
            for i in skewed_graph.items()
            if skewed_graph.item_total_clicks(i) >= threshold
        )
        assert hot_mass >= 0.8 * skewed_graph.total_clicks


class TestTClick:
    def test_paper_inputs(self):
        # (11.35 * 0.8) / (4.32 * 0.2) = 10.5 -> ceil 11 (paper rounds to 12).
        assert t_click_threshold(11.35, 4.32) == 11

    def test_floor_of_two(self):
        assert t_click_threshold(1.0, 100.0) == 2

    def test_monotone_in_avg_clk(self):
        assert t_click_threshold(20.0, 4.0) > t_click_threshold(10.0, 4.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            t_click_threshold(0.0, 4.0)
        with pytest.raises(ValueError):
            t_click_threshold(10.0, -1.0)
        with pytest.raises(ValueError):
            t_click_threshold(10.0, 4.0, heavy_share=1.0)

    def test_from_graph(self, small):
        value = t_click_from_graph(small.graph)
        assert isinstance(value, int)
        assert value >= 2

    def test_from_empty_graph(self, empty_graph):
        assert t_click_from_graph(empty_graph) == 2


class TestClassifyItems:
    def test_partition(self, skewed_graph):
        hot, ordinary = classify_items(skewed_graph, 50)
        assert hot == {"head"}
        assert ordinary == {"mid", "tail1", "tail2"}
        assert hot | ordinary == set(skewed_graph.items())

    def test_hot_items_helper_agrees(self, skewed_graph):
        hot, _ordinary = classify_items(skewed_graph, 10)
        assert hot == hot_items(skewed_graph, 10)

    def test_boundary_inclusive(self, skewed_graph):
        hot, _ = classify_items(skewed_graph, 80)
        assert "head" in hot


class TestDegenerateInputs:
    def test_heavy_share_one_raises_typed_error(self):
        from repro.errors import DegenerateGraphError

        with pytest.raises(DegenerateGraphError):
            t_click_threshold(10.0, 4.0, heavy_share=1.0)

    def test_non_positive_statistics_raise_typed_error(self):
        from repro.errors import DegenerateGraphError

        with pytest.raises(DegenerateGraphError):
            t_click_threshold(0.0, 4.0)
        with pytest.raises(DegenerateGraphError):
            t_click_threshold(10.0, -1.0)

    def test_typed_error_is_still_a_value_error(self):
        from repro.errors import DegenerateGraphError, DetectionError

        assert issubclass(DegenerateGraphError, ValueError)
        assert issubclass(DegenerateGraphError, DetectionError)

    def test_out_of_range_share_stays_plain(self):
        from repro.errors import DegenerateGraphError

        with pytest.raises(ValueError) as excinfo:
            t_click_threshold(10.0, 4.0, heavy_share=1.5)
        assert not isinstance(excinfo.value, DegenerateGraphError)

    def test_resolve_stage_falls_back_to_floor_thresholds(self, empty_graph):
        from repro import obs
        from repro.config import RICDParams
        from repro.errors import DegenerateGraphError
        from repro.pipeline.stages import ResolveThresholds

        def degenerate(graph):
            raise DegenerateGraphError("single-point Pareto front")

        stage = ResolveThresholds(derive_t_hot=degenerate, derive_t_click=degenerate)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            resolved = stage.resolve(empty_graph, RICDParams(k1=4, k2=4))
        assert resolved.t_hot == 1.0
        assert resolved.t_click == 2.0
        assert recorder.counters["detect.degenerate_thresholds"] == 2

    def test_detection_survives_degenerate_derivation(self, empty_graph):
        from repro.config import RICDParams
        from repro.core.framework import RICDDetector

        result = RICDDetector(params=RICDParams(k1=4, k2=4)).detect(empty_graph)
        assert result.groups == []
