"""Tests for the I2I score model (Eq. 1) and attacker optimum (Eq. 2-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.i2i import (
    attack_score_gain,
    attacked_i2i_score,
    co_click_counts,
    i2i_scores,
    optimal_attack_allocation,
)
from repro.graph import BipartiteGraph


@pytest.fixture()
def co_click_graph():
    """Hot item co-clicked with x (4 clicks via a) and y (1 click via b)."""
    graph = BipartiteGraph()
    graph.add_click("a", "hot", 1)
    graph.add_click("a", "x", 4)
    graph.add_click("b", "hot", 2)
    graph.add_click("b", "y", 1)
    graph.add_click("c", "z", 9)  # never co-clicks with hot
    return graph


class TestCoClickCounts:
    def test_counts(self, co_click_graph):
        assert co_click_counts(co_click_graph, "hot") == {"x": 4, "y": 1}

    def test_excludes_anchor(self, co_click_graph):
        assert "hot" not in co_click_counts(co_click_graph, "hot")

    def test_isolated_anchor(self):
        graph = BipartiteGraph()
        graph.add_item("hot")
        assert co_click_counts(graph, "hot") == {}


class TestI2IScores:
    def test_normalised(self, co_click_graph):
        scores = i2i_scores(co_click_graph, "hot")
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["x"] == pytest.approx(0.8)
        assert scores["y"] == pytest.approx(0.2)

    def test_empty_when_no_co_clicks(self):
        graph = BipartiteGraph()
        graph.add_click("u", "hot", 3)
        assert i2i_scores(graph, "hot") == {}


class TestAttackedScore:
    def test_eq2_formula(self):
        # S = (1 + 10) / (500 + 11 + 0)
        score = attacked_i2i_score(500, 1, 10, 0)
        assert score == pytest.approx(11 / 511)

    def test_accepts_mapping(self):
        score = attacked_i2i_score({"x": 300, "y": 200}, 1, 10)
        assert score == pytest.approx(11 / 511)

    def test_wasted_clicks_lower_score(self):
        concentrated = attacked_i2i_score(500, 1, 10, 0)
        spread = attacked_i2i_score(500, 1, 5, 5)
        assert concentrated > spread

    def test_zero_denominator(self):
        assert attacked_i2i_score(0, 0, 0, 0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            attacked_i2i_score(10, -1, 0)
        with pytest.raises(ValueError):
            attacked_i2i_score(10, 0, -1)


class TestOptimum:
    def test_allocation(self):
        assert optimal_attack_allocation(12) == (1, 11)

    def test_minimum_budget(self):
        assert optimal_attack_allocation(2) == (1, 1)
        with pytest.raises(ValueError):
            optimal_attack_allocation(1)

    @given(
        budget=st.integers(min_value=2, max_value=40),
        existing=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=80)
    def test_concentration_dominates_every_split(self, budget, existing):
        """Eq. 3: no (C', C) split beats C' = C = C_b - 2."""
        best = attack_score_gain(existing, budget)
        spendable = budget - 2
        for total in range(spendable + 1):
            for on_target in range(total + 1):
                score = attacked_i2i_score(existing, 1, on_target, total - on_target)
                assert score <= best + 1e-12

    @given(existing=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=40)
    def test_gain_monotone_in_budget(self, existing):
        gains = [attack_score_gain(existing, budget) for budget in range(2, 20)]
        assert all(a <= b + 1e-12 for a, b in zip(gains, gains[1:]))

    def test_gain_decreases_with_popularity(self):
        """Riding a busier hot item yields less score per click."""
        assert attack_score_gain(100, 12) > attack_score_gain(10_000, 12)
