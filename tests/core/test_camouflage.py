"""Tests for the Zarankiewicz camouflage bound (Section V-C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RICDParams
from repro.core.camouflage import (
    contains_biclique,
    kovari_sos_turan_bound,
    undetected_campaign_bound,
    zarankiewicz_upper_bound,
)

#: Known exact Zarankiewicz numbers z(m, n; 2, 2) (no K_{2,2} / 4-cycle).
EXACT_Z22 = {(3, 3): 6, (4, 4): 9, (5, 5): 12, (6, 6): 16}


class TestKSTBound:
    @pytest.mark.parametrize(("m", "n"), sorted(EXACT_Z22))
    def test_upper_bounds_known_values(self, m, n):
        assert zarankiewicz_upper_bound(m, n, 2, 2) >= EXACT_Z22[(m, n)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            kovari_sos_turan_bound(3, 3, 4, 2)  # s > m
        with pytest.raises(ValueError):
            kovari_sos_turan_bound(3, 3, 2, 0)  # t < 1

    def test_trivial_clamp(self):
        assert zarankiewicz_upper_bound(2, 2, 1, 1) <= 4

    @given(
        m=st.integers(min_value=2, max_value=40),
        n=st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=60)
    def test_bound_grows_sublinearly_per_account(self, m, n):
        """Property (3)'s economics: doubling accounts less than doubles
        the per-account invisible budget's growth exponent."""
        s = min(3, m)
        t = min(3, n)
        single = zarankiewicz_upper_bound(m, n, s, t)
        doubled = zarankiewicz_upper_bound(2 * m, n, s, t)
        assert doubled <= 2 * single + 2 * m  # strictly sublinear plus slack

    @given(
        m=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=40)
    def test_bound_at_least_trivially_safe_edges(self, m, n):
        """Any K_{2,2}-free construction (a star) must fit under the bound."""
        assert zarankiewicz_upper_bound(m, n, 2, 2) >= max(m, n)


class TestCampaignBound:
    def test_paper_defaults(self):
        params = RICDParams(k1=10, k2=10)
        bound = undetected_campaign_bound(28, 13, params)
        # The case-study campaign placed ~28 x 11 target edges ~ 308 plus
        # hot edges — far above the invisible ceiling.
        assert bound < 28 * 13

    def test_small_campaigns_unconstrained(self):
        params = RICDParams(k1=10, k2=10)
        # Fewer accounts than k1: the forbidden biclique cannot form at all,
        # so the clamp keeps the bound at the trivial m*n ceiling.
        assert undetected_campaign_bound(5, 20, params) <= 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            undetected_campaign_bound(0, 5, RICDParams())


class TestContainsBiclique:
    def test_full_biclique_found(self):
        edges = {(u, i) for u in range(3) for i in "abc"}
        assert contains_biclique(edges, 3, 3)
        assert contains_biclique(edges, 2, 2)

    def test_star_is_free_of_k22(self):
        edges = {(0, i) for i in range(10)}
        assert not contains_biclique(edges, 2, 2)

    def test_matching_is_free(self):
        edges = {(u, u) for u in range(6)}
        assert not contains_biclique(edges, 2, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            contains_biclique(set(), 0, 1)

    @given(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_free_edge_sets_respect_the_bound(self, edges):
        """Any actually-K_{2,2}-free edge set sits under the KST bound."""
        if not edges or contains_biclique(edges, 2, 2):
            return
        users = {u for u, _ in edges}
        items = {i for _, i in edges}
        if len(users) < 2 or len(items) < 2:
            return  # the forbidden K_{2,2} cannot even fit
        bound = zarankiewicz_upper_bound(len(users), len(items), 2, 2)
        assert len(edges) <= bound
