"""Tests for the scipy-sparse extraction engine.

The key property: the sparse simultaneous evaluation and the reference
sequential evaluation converge to the same (greatest) fixpoint — the
pruning conditions are anti-monotone in the surviving set, so the
fixpoint is unique regardless of removal order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RICDParams
from repro.core.extraction import extract_groups, prune_to_fixpoint
from repro.core.extraction_sparse import (
    extract_groups_sparse,
    prune_to_fixpoint_sparse,
    sparse_available,
)
from repro.graph import BipartiteGraph, from_click_records

from ..conftest import make_biclique

pytestmark = pytest.mark.skipif(
    not sparse_available(), reason="scipy not installed"
)

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=11).map(lambda n: f"i{n}"),
        st.just(1),
    ),
    max_size=80,
)

param_values = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([0.5, 0.7, 1.0]),
)


@given(records, param_values)
@settings(max_examples=80, deadline=None)
def test_sparse_matches_reference(rows, values):
    k1, k2, alpha = values
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    reference = from_click_records(rows)
    prune_to_fixpoint(reference, params)
    graph = from_click_records(rows)
    users, items = prune_to_fixpoint_sparse(graph, params)
    assert users == set(reference.users())
    assert items == set(reference.items())


def test_planted_biclique(small):
    graph = BipartiteGraph()
    users, items = make_biclique(graph, 5, 5)
    graph.add_click("noise", "bi0", 1)
    groups = extract_groups_sparse(graph, RICDParams(k1=5, k2=5))
    assert len(groups) == 1
    assert groups[0].users == set(users)


def test_matches_reference_on_scenario(small):
    params = RICDParams(k1=5, k2=5)
    reference_groups = extract_groups(small.graph, params)
    sparse_groups = extract_groups_sparse(small.graph, params)
    as_sets = lambda groups: {
        (frozenset(map(str, g.users)), frozenset(map(str, g.items))) for g in groups
    }
    assert as_sets(sparse_groups) == as_sets(reference_groups)


def test_max_size_filters(small):
    graph = BipartiteGraph()
    make_biclique(graph, 10, 4)
    assert extract_groups_sparse(graph, RICDParams(k1=4, k2=4), max_users=8) == []


def test_empty_graph():
    users, items = prune_to_fixpoint_sparse(BipartiteGraph(), RICDParams())
    assert users == set() and items == set()


def test_input_not_modified(small):
    before = small.graph.copy()
    extract_groups_sparse(small.graph, RICDParams(k1=5, k2=5))
    assert small.graph == before
