"""Property-based tests of the screening module's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ScreeningParams
from repro.core.groups import SuspiciousGroup
from repro.core.screening import (
    item_behavior_verification,
    screen_groups,
    user_behavior_check,
)
from repro.graph import from_click_records

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=9).map(lambda n: f"i{n}"),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=1,
    max_size=60,
)

thresholds = st.tuples(
    st.integers(min_value=5, max_value=60),  # t_hot
    st.integers(min_value=2, max_value=15),  # t_click
)


def whole_graph_group(graph) -> SuspiciousGroup:
    return SuspiciousGroup(users=set(graph.users()), items=set(graph.items()))


PARAMS = ScreeningParams(min_users=1, min_items=1)


@given(records, thresholds)
@settings(max_examples=80)
def test_user_check_output_is_subset(rows, bounds):
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    result = user_behavior_check(graph, group, t_hot, t_click, PARAMS)
    assert result.users <= group.users
    assert result.items == group.items  # items never touched by this step
    assert result.hot_items <= group.items


@given(records, thresholds)
@settings(max_examples=80)
def test_user_check_survivors_have_heavy_ordinary_click(rows, bounds):
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    result = user_behavior_check(graph, group, t_hot, t_click, PARAMS)
    for user in result.users:
        heavy = any(
            clicks >= t_click
            for item, clicks in graph.user_neighbors(user).items()
            if graph.item_total_clicks(item) < t_hot
        )
        assert heavy


@given(records, thresholds)
@settings(max_examples=80)
def test_item_verification_output_within_group(rows, bounds):
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    finals = item_behavior_verification(graph, group, t_hot, t_click, PARAMS)
    for final in finals:
        assert final.users <= group.users
        assert final.items <= group.items
        # Verified items are ordinary (below the hot threshold).
        for item in final.items:
            assert graph.item_total_clicks(item) < t_hot
        # Every final user has a heavy edge to some final item.
        for user in final.users:
            assert any(
                graph.get_click(user, item) >= t_click for item in final.items
            )


@given(records, thresholds)
@settings(max_examples=60)
def test_final_groups_have_disjoint_items(rows, bounds):
    """Coincidence clustering partitions verified items (users may repeat)."""
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    finals = item_behavior_verification(graph, group, t_hot, t_click, PARAMS)
    seen: set = set()
    for final in finals:
        assert not (final.items & seen)
        seen |= final.items


@given(records, thresholds)
@settings(max_examples=60)
def test_screen_groups_deterministic(rows, bounds):
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    first = screen_groups(graph, [group], t_hot, t_click, PARAMS)
    second = screen_groups(graph, [group], t_hot, t_click, PARAMS)
    assert [(g.users, g.items) for g in first] == [(g.users, g.items) for g in second]


@given(records, thresholds)
@settings(max_examples=60)
def test_screening_never_invents_nodes(rows, bounds):
    t_hot, t_click = bounds
    graph = from_click_records(rows)
    group = whole_graph_group(graph)
    finals = screen_groups(graph, [group], t_hot, t_click, PARAMS)
    all_users = set(graph.users())
    all_items = set(graph.items())
    for final in finals:
        assert final.users <= all_users
        assert final.items <= all_items
