"""Tests for detection-driven fake-edge attribution and cleanup."""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core import RICDDetector
from repro.core.groups import SuspiciousGroup
from repro.core.screening import collect_fake_edges
from repro.errors import ScreeningError
from repro.graph import BipartiteGraph
from repro.recsys import remove_detected_clicks


@pytest.fixture()
def attacked_graph():
    """Two workers boosting t1/t2, riding hot h, camouflaging on c1/c2."""
    graph = BipartiteGraph()
    for index in range(40):
        graph.add_click(f"bg{index}", "h", 3)
    for worker in ("w1", "w2"):
        graph.add_click(worker, "h", 1)
        graph.add_click(worker, "t1", 13)
        graph.add_click(worker, "t2", 12)
        graph.add_click(worker, "c1", 1)
    graph.add_click("w1", "c2", 2)
    # An organic bystander clicking a target once.
    graph.add_click("organic", "t1", 1)
    return graph


@pytest.fixture()
def detected_group():
    return SuspiciousGroup(users={"w1", "w2"}, items={"t1", "t2"}, hot_items={"h"})


class TestCollectFakeEdges:
    def test_boost_edges_collected(self, attacked_graph, detected_group):
        edges = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        pairs = {(user, item) for user, item, _c in edges}
        assert ("w1", "t1") in pairs
        assert ("w2", "t2") in pairs

    def test_hot_rides_collected(self, attacked_graph, detected_group):
        edges = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        pairs = {(user, item) for user, item, _c in edges}
        assert ("w1", "h") in pairs

    def test_disguise_edges_collected(self, attacked_graph, detected_group):
        # c1 carries 1 click vs heaviest target 13: 1 * ratio(4) <= 13.
        edges = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        pairs = {(user, item) for user, item, _c in edges}
        assert ("w1", "c1") in pairs
        assert ("w1", "c2") in pairs

    def test_organic_bystander_untouched(self, attacked_graph, detected_group):
        edges = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        assert all(user != "organic" for user, _i, _c in edges)

    def test_disguise_ratio_guards_real_history(self, attacked_graph):
        """A hijacked account's genuinely heavy organic edge survives."""
        attacked_graph.add_click("w1", "beloved", 8)  # 8 * 4 > 13 -> kept
        group = SuspiciousGroup(users={"w1", "w2"}, items={"t1", "t2"}, hot_items=set())
        edges = collect_fake_edges(
            attacked_graph, group, t_click=10, params=ScreeningParams(disguise_ratio=4.0)
        )
        assert all(item != "beloved" for _u, item, _c in edges)

    def test_invalid_t_click(self, attacked_graph, detected_group):
        with pytest.raises(ScreeningError):
            collect_fake_edges(attacked_graph, detected_group, t_click=0)

    def test_deterministic_order(self, attacked_graph, detected_group):
        first = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        second = collect_fake_edges(attacked_graph, detected_group, t_click=10)
        assert first == second

    def test_missing_users_skipped(self, attacked_graph):
        group = SuspiciousGroup(users={"ghost"}, items={"t1"})
        assert collect_fake_edges(attacked_graph, group, t_click=10) == []


class TestRemoveDetectedClicks:
    def test_end_to_end_cleanup(self, small):
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        result = detector.detect(small.graph)
        resolved = detector.resolve_thresholds(small.graph)
        cleaned = remove_detected_clicks(small.graph, result, t_click=resolved.t_click)
        assert cleaned.total_clicks < small.graph.total_clicks
        # Every detected boost edge is gone.
        for group in result.groups:
            for user in group.users:
                for item in group.items:
                    if small.graph.get_click(user, item) >= resolved.t_click:
                        assert not cleaned.has_edge(user, item)

    def test_original_untouched(self, small):
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        result = detector.detect(small.graph)
        before = small.graph.copy()
        remove_detected_clicks(small.graph, result, t_click=12)
        assert small.graph == before

    def test_cleanup_reduces_target_exposure(self, small):
        """After cleanup, detected target items lose their fake volume."""
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        result = detector.detect(small.graph)
        if not result.suspicious_items:
            pytest.skip("nothing detected on this seed")
        resolved = detector.resolve_thresholds(small.graph)
        cleaned = remove_detected_clicks(small.graph, result, t_click=resolved.t_click)
        for item in result.suspicious_items:
            assert (
                cleaned.item_total_clicks(item)
                < small.graph.item_total_clicks(item)
            )
