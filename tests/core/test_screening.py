"""Tests for the screening module (user check + item verification)."""

import pytest

from repro.config import ScreeningParams
from repro.core.groups import SuspiciousGroup
from repro.core.screening import (
    item_behavior_verification,
    screen_groups,
    user_behavior_check,
)
from repro.errors import ScreeningError
from repro.graph import BipartiteGraph

T_HOT = 50
T_CLICK = 10


@pytest.fixture()
def attack_graph():
    """Two workers attacking targets t1/t2 riding hot item h, plus an
    organic heavy user and a hot-spamming account."""
    graph = BipartiteGraph()
    # h is hot: organic volume 60.
    for index in range(30):
        graph.add_click(f"bg{index}", "h", 2)
    for worker in ("w1", "w2"):
        graph.add_click(worker, "h", 1)
        graph.add_click(worker, "t1", 12)
        graph.add_click(worker, "t2", 13)
        graph.add_click(worker, "camo", 1)
    # Organic user: clicks hot a lot, ordinary items a little.
    graph.add_click("organic", "h", 9)
    graph.add_click("organic", "t1", 1)
    # Hot spammer: heavy ordinary clicks but also heavy hot clicks.
    graph.add_click("spammer", "h", 20)
    graph.add_click("spammer", "t1", 15)
    return graph


@pytest.fixture()
def attack_group():
    return SuspiciousGroup(
        users={"w1", "w2", "organic", "spammer"},
        items={"h", "t1", "t2", "camo"},
    )


def sp(**overrides):
    defaults = dict(min_users=2, min_items=2)
    defaults.update(overrides)
    return ScreeningParams(**defaults)


class TestUserBehaviorCheck:
    def test_workers_kept(self, attack_graph, attack_group):
        result = user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert {"w1", "w2"} <= result.users

    def test_light_clicker_removed(self, attack_graph, attack_group):
        result = user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert "organic" not in result.users

    def test_hot_spammer_removed(self, attack_graph, attack_group):
        result = user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert "spammer" not in result.users

    def test_items_untouched(self, attack_graph, attack_group):
        """Fig. 5: items are never removed by the user check."""
        result = user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert result.items == attack_group.items

    def test_hot_items_classified(self, attack_graph, attack_group):
        result = user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert result.hot_items == {"h"}

    def test_input_not_mutated(self, attack_graph, attack_group):
        before_users = set(attack_group.users)
        user_behavior_check(attack_graph, attack_group, T_HOT, T_CLICK, sp())
        assert attack_group.users == before_users

    def test_invalid_thresholds(self, attack_graph, attack_group):
        with pytest.raises(ScreeningError):
            user_behavior_check(attack_graph, attack_group, 0, T_CLICK, sp())
        with pytest.raises(ScreeningError):
            user_behavior_check(attack_graph, attack_group, T_HOT, -1, sp())

    def test_missing_nodes_skipped(self, attack_graph):
        group = SuspiciousGroup(users={"ghost"}, items={"phantom"})
        result = user_behavior_check(attack_graph, group, T_HOT, T_CLICK, sp())
        assert result.users == set()


class TestItemBehaviorVerification:
    def test_targets_verified(self, attack_graph):
        group = SuspiciousGroup(users={"w1", "w2"}, items={"h", "t1", "t2", "camo"})
        finals = item_behavior_verification(attack_graph, group, T_HOT, T_CLICK, sp())
        assert len(finals) == 1
        assert finals[0].items == {"t1", "t2"}

    def test_hot_and_camouflage_removed(self, attack_graph):
        group = SuspiciousGroup(users={"w1", "w2"}, items={"h", "t1", "t2", "camo"})
        finals = item_behavior_verification(attack_graph, group, T_HOT, T_CLICK, sp())
        assert "h" not in finals[0].items
        assert "camo" not in finals[0].items
        assert finals[0].hot_items == {"h"}

    def test_users_limited_to_heavy_clickers(self, attack_graph):
        group = SuspiciousGroup(
            users={"w1", "w2", "organic"}, items={"h", "t1", "t2", "camo"}
        )
        finals = item_behavior_verification(attack_graph, group, T_HOT, T_CLICK, sp())
        assert finals[0].users == {"w1", "w2"}

    def test_lone_candidate_dropped(self, attack_graph):
        """A single heavy item with no coinciding partner is not an attack."""
        group = SuspiciousGroup(users={"w1", "w2", "spammer"}, items={"t1"})
        finals = item_behavior_verification(attack_graph, group, T_HOT, T_CLICK, sp())
        assert finals == []

    def test_professional_worker_does_not_merge_attacks(self):
        """Two attacks sharing one professional stay separate groups."""
        graph = BipartiteGraph()
        for worker in ("a1", "a2", "a3", "pro"):
            for target in ("ta1", "ta2"):
                graph.add_click(worker, target, 12)
        for worker in ("b1", "b2", "b3", "pro"):
            for target in ("tb1", "tb2"):
                graph.add_click(worker, target, 12)
        group = SuspiciousGroup(
            users={"a1", "a2", "a3", "b1", "b2", "b3", "pro"},
            items={"ta1", "ta2", "tb1", "tb2"},
        )
        finals = item_behavior_verification(graph, group, T_HOT, T_CLICK, sp())
        assert len(finals) == 2
        item_sets = sorted(tuple(sorted(g.items)) for g in finals)
        assert item_sets == [("ta1", "ta2"), ("tb1", "tb2")]
        # The professional appears in both final groups.
        assert all("pro" in g.users for g in finals)


class TestScreenGroups:
    def test_full_pipeline(self, attack_graph, attack_group):
        finals = screen_groups(
            attack_graph, [attack_group], T_HOT, T_CLICK, sp()
        )
        assert len(finals) == 1
        assert finals[0].users == {"w1", "w2"}
        assert finals[0].items == {"t1", "t2"}

    def test_user_check_only(self, attack_graph, attack_group):
        finals = screen_groups(
            attack_graph,
            [attack_group],
            T_HOT,
            T_CLICK,
            sp(),
            do_item_verification=False,
        )
        assert len(finals) == 1
        assert finals[0].items == attack_group.items  # items kept

    def test_no_user_check(self, attack_graph, attack_group):
        finals = screen_groups(
            attack_graph,
            [attack_group],
            T_HOT,
            T_CLICK,
            sp(),
            do_user_check=False,
        )
        # spammer's heavy t1 clicks count; verification still works.
        assert len(finals) == 1
        assert "t1" in finals[0].items

    def test_group_below_min_users_dropped(self, attack_graph):
        lone = SuspiciousGroup(users={"w1"}, items={"t1", "t2"})
        finals = screen_groups(attack_graph, [lone], T_HOT, T_CLICK, sp())
        assert finals == []

    def test_empty_input(self, attack_graph):
        assert screen_groups(attack_graph, [], T_HOT, T_CLICK, sp()) == []

    def test_default_params_used_when_none(self, attack_graph, attack_group):
        finals = screen_groups(attack_graph, [attack_group], T_HOT, T_CLICK)
        assert isinstance(finals, list)
