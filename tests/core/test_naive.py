"""Tests for Algorithm 1 (the naive detector)."""

import pytest

from repro.core.naive import NaiveParams, item_risk_scores, naive_detect, user_alpha
from repro.graph import BipartiteGraph


@pytest.fixture()
def alpha_graph():
    """hot1/hot2 are hot; target is clicked by hot-history users."""
    graph = BipartiteGraph()
    for index in range(20):
        graph.add_click(f"bg{index}", "hot1", 3)
        graph.add_click(f"bg{index}", "hot2", 3)
    graph.add_click("rider1", "hot1", 5)
    graph.add_click("rider1", "hot2", 5)
    graph.add_click("rider1", "target", 10)
    graph.add_click("rider2", "hot1", 4)
    graph.add_click("rider2", "target", 10)
    graph.add_click("plain", "quiet", 2)
    return graph


class TestBuildingBlocks:
    def test_user_alpha_counts_hot_clicks(self, alpha_graph):
        assert user_alpha(alpha_graph, "rider1", {"hot1", "hot2"}) == 10
        assert user_alpha(alpha_graph, "plain", {"hot1", "hot2"}) == 0

    def test_item_risk_sums_neighbor_alphas(self, alpha_graph):
        alphas = {
            user: user_alpha(alpha_graph, user, {"hot1", "hot2"})
            for user in alpha_graph.users()
        }
        risks = item_risk_scores(alpha_graph, alphas, {"target", "quiet"})
        assert risks["target"] == 10 + 4
        assert risks["quiet"] == 0


class TestNaiveDetect:
    def test_explicit_thresholds_flag_target(self, alpha_graph):
        params = NaiveParams(t_hot=60, t_risk=5, t_risk_user=5)
        result = naive_detect(alpha_graph, params)
        assert "target" in result.suspicious_items
        assert "quiet" not in result.suspicious_items
        assert {"rider1", "rider2"} <= result.suspicious_users

    def test_scores_populated(self, alpha_graph):
        params = NaiveParams(t_hot=60, t_risk=5, t_risk_user=5)
        result = naive_detect(alpha_graph, params)
        assert result.item_scores["target"] == 14.0
        assert result.user_scores["rider1"] == 10.0

    def test_high_risk_threshold_outputs_nothing(self, alpha_graph):
        params = NaiveParams(t_hot=60, t_risk=1e9, t_risk_user=1e9)
        result = naive_detect(alpha_graph, params)
        assert not result.suspicious_items
        assert not result.suspicious_users

    def test_auto_thresholds_run(self, small):
        result = naive_detect(small.graph)
        assert result.timings["detection"] > 0
        assert len(result.groups) == 1

    def test_empty_graph(self, empty_graph):
        result = naive_detect(empty_graph)
        assert not result.suspicious_items
        assert not result.suspicious_users

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            NaiveParams(risk_percentile=0.0)
        with pytest.raises(ValueError):
            NaiveParams(risk_percentile=100.0)

    def test_timing_recorded(self, alpha_graph):
        result = naive_detect(alpha_graph)
        assert "detection" in result.timings
