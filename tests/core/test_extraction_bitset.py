"""Tests for the bitset/CSR extraction kernel.

Two layers: the packed-bitset and CSR helper primitives (pinned against
naive recomputation), and the fixpoint itself (pinned against the
pure-Python reference engine over randomized click tables — the pruning
conditions are anti-monotone in the surviving set, so the fixpoint is
unique regardless of evaluation order, and the engines must agree
exactly).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.config import RICDParams
from repro.core.extraction import extract_groups, prune_to_fixpoint
from repro.core.extraction_bitset import (
    bitset_available,
    extract_groups_bitset,
    prune_fixpoint_arrays,
    prune_to_fixpoint_bitset,
)
from repro.graph import BipartiteGraph, from_click_records

from ..conftest import make_biclique

pytestmark = pytest.mark.skipif(
    not bitset_available(), reason="numpy not installed"
)

if bitset_available():
    import numpy as np

    from repro.core.extraction_bitset import (
        _bitset_clear,
        _bitset_count,
        _bitset_full,
        _bitset_indices,
        _bitset_test,
        _gather,
        _recount_alive_degrees,
    )


class TestBitsetPrimitives:
    @pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 200])
    def test_full_bitset_has_exactly_n_bits(self, n):
        words = _bitset_full(n)
        assert _bitset_count(words) == n
        assert list(_bitset_indices(words)) == list(range(n))

    def test_clear_and_test(self):
        words = _bitset_full(130)
        cleared = np.array([0, 63, 64, 100, 129], dtype=np.int64)
        _bitset_clear(words, cleared)
        assert _bitset_count(words) == 130 - len(cleared)
        probe = np.arange(130, dtype=np.int64)
        expected = ~np.isin(probe, cleared)
        assert np.array_equal(_bitset_test(words, probe), expected)

    def test_clear_tolerates_duplicates(self):
        words = _bitset_full(70)
        _bitset_clear(words, np.array([5, 5, 5, 64, 64], dtype=np.int64))
        assert _bitset_count(words) == 68

    def test_indices_round_trip(self):
        words = _bitset_full(100)
        _bitset_clear(words, np.arange(0, 100, 3, dtype=np.int64))
        survivors = _bitset_indices(words)
        assert all(index % 3 != 0 for index in survivors)
        assert _bitset_count(words) == len(survivors)


class TestCSRHelpers:
    def _csr(self):
        # Rows: [1, 3], [], [0, 2, 3]
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        indices = np.array([1, 3, 0, 2, 3], dtype=np.int64)
        return indptr, indices

    def test_gather_concatenates_slices(self):
        indptr, indices = self._csr()
        neighbors, lens, seg_starts = _gather(
            np.array([2, 0], dtype=np.int64), indptr, indices
        )
        assert list(neighbors) == [0, 2, 3, 1, 3]
        assert list(lens) == [3, 2]
        assert list(seg_starts) == [0, 3]

    def test_gather_empty_rows(self):
        indptr, indices = self._csr()
        neighbors, lens, _ = _gather(np.array([1], dtype=np.int64), indptr, indices)
        assert len(neighbors) == 0
        assert list(lens) == [0]

    def test_recount_alive_degrees_matches_bruteforce(self):
        indptr, indices = self._csr()
        other_alive = _bitset_full(4)
        _bitset_clear(other_alive, np.array([3], dtype=np.int64))
        deg = np.full(3, -1, dtype=np.int64)
        _recount_alive_degrees(
            np.array([0, 1, 2], dtype=np.int64), indptr, indices, other_alive, deg
        )
        # Row 0 loses item 3, row 1 is empty, row 2 loses item 3.
        assert list(deg) == [1, 0, 2]


def graph_arrays(graph):
    snapshot = graph.indexed()
    user_indptr, user_items = snapshot.csr_arrays()
    item_indptr, item_users = snapshot.csc_arrays()
    return snapshot, user_indptr, user_items, item_indptr, item_users


records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=11).map(lambda n: f"i{n}"),
        st.just(1),
    ),
    max_size=80,
)

param_values = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.sampled_from([0.5, 0.7, 1.0]),
)


@given(records, param_values)
@settings(max_examples=80, deadline=None)
def test_bitset_matches_reference(rows, values):
    k1, k2, alpha = values
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    reference = from_click_records(rows)
    prune_to_fixpoint(reference, params)
    graph = from_click_records(rows)
    users, items = prune_to_fixpoint_bitset(graph, params)
    assert users == set(reference.users())
    assert items == set(reference.items())


@given(records, param_values)
@settings(max_examples=40, deadline=None)
def test_array_kernel_degrees_consistent_at_fixpoint(rows, values):
    """Survivors' alive-degrees clear the floors (reduceat cross-check)."""
    k1, k2, alpha = values
    params = RICDParams(k1=k1, k2=k2, alpha=alpha)
    graph = from_click_records(rows)
    if graph.num_users == 0 or graph.num_items == 0:
        return
    _, user_indptr, user_items, item_indptr, item_users = graph_arrays(graph)
    alive_users, alive_items = prune_fixpoint_arrays(
        user_indptr, user_items, item_indptr, item_users, params
    )
    n_items = len(item_indptr) - 1
    alive_mask = _bitset_full(n_items)
    dead = np.setdiff1d(np.arange(n_items, dtype=np.int64), alive_items)
    _bitset_clear(alive_mask, dead)
    deg = np.zeros(len(user_indptr) - 1, dtype=np.int64)
    _recount_alive_degrees(alive_users, user_indptr, user_items, alive_mask, deg)
    assert (deg[alive_users] >= params.user_degree_floor).all()


class TestFixpointEdgeCases:
    def test_empty_graph(self):
        users, items = prune_to_fixpoint_bitset(BipartiteGraph(), RICDParams())
        assert users == set() and items == set()

    def test_everything_pruned(self):
        graph = BipartiteGraph()
        graph.add_click("u1", "i1", 1)
        users, items = prune_to_fixpoint_bitset(
            graph, RICDParams(k1=5, k2=5, alpha=1.0)
        )
        assert users == set() and items == set()

    def test_perfect_biclique_survives_whole(self):
        graph = BipartiteGraph()
        users, items = make_biclique(graph, 6, 6)
        got_users, got_items = prune_to_fixpoint_bitset(
            graph, RICDParams(k1=5, k2=5, alpha=1.0)
        )
        assert got_users == set(users)
        assert got_items == set(items)

    def test_input_graph_untouched(self, small):
        before = small.graph.copy()
        prune_to_fixpoint_bitset(small.graph, RICDParams(k1=5, k2=5))
        assert small.graph == before

    def test_fixpoint_memoized_on_snapshot(self, small):
        params = RICDParams(k1=5, k2=5)
        graph = small.graph.copy()  # fresh snapshot: no cached fixpoints
        with obs.recording(obs.Recorder()) as recorder:
            first = prune_to_fixpoint_bitset(graph, params)
            second = prune_to_fixpoint_bitset(graph, params)
        assert first == second
        assert recorder.counters["extract.bitset.fixpoint_cache_misses"] == 1
        assert recorder.counters["extract.bitset.fixpoint_cache_hits"] == 1

    def test_distinct_params_distinct_cache_entries(self, small):
        loose = prune_to_fixpoint_bitset(small.graph, RICDParams(k1=2, k2=2))
        tight = prune_to_fixpoint_bitset(small.graph, RICDParams(k1=8, k2=8))
        assert tight[0] <= loose[0]


class TestGroups:
    def test_groups_match_reference(self, small):
        params = RICDParams(k1=5, k2=5)
        reference = {
            (frozenset(g.users), frozenset(g.items))
            for g in extract_groups(small.graph, params)
        }
        bitset = {
            (frozenset(g.users), frozenset(g.items))
            for g in extract_groups_bitset(small.graph, params)
        }
        assert bitset == reference

    def test_size_caps_respected(self, small):
        params = RICDParams(k1=5, k2=5)
        capped = extract_groups_bitset(small.graph, params, max_users=1)
        assert all(len(g.users) <= 1 for g in capped)
