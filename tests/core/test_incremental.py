"""Tests for the incremental (online) detection extension."""

import pytest

from repro.config import RICDParams, ScreeningParams
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.core.framework import RICDDetector
from repro.datagen import AttackConfig, inject_attacks


def params():
    return RICDParams(k1=4, k2=4)


def make_online(graph, recheck=1):
    return IncrementalRICD(
        graph,
        params=params(),
        screening=ScreeningParams(min_users=2, min_items=2),
        recheck_batches=recheck,
    )


class TestClickBatch:
    def test_of_and_len(self):
        batch = ClickBatch.of([("u", "i", 1), ("v", "i", 2)])
        assert len(batch) == 2
        assert batch.records[1] == ("v", "i", 2)


class TestIncremental:
    def test_invalid_recheck(self, tiny):
        with pytest.raises(ValueError):
            IncrementalRICD(tiny.graph, recheck_batches=0)

    def test_bootstrap_matches_batch_detector(self, tiny):
        online = make_online(tiny.graph)
        batch_result = RICDDetector(
            params=params(), screening=ScreeningParams(min_users=2, min_items=2)
        ).detect(tiny.graph)
        assert online.current_result.suspicious_users == batch_result.suspicious_users
        assert online.current_result.suspicious_items == batch_result.suspicious_items

    def test_initial_graph_not_mutated(self, tiny):
        before = tiny.graph.copy()
        online = make_online(tiny.graph)
        online.ingest(ClickBatch.of([("new_account", "i0", 5)]))
        assert tiny.graph == before

    def test_ingest_applies_clicks(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        online.ingest(ClickBatch.of([("new_account", "i0", 5)]))
        assert online.graph.get_click("new_account", "i0") == 5
        assert online.dirty_size == 2

    def test_recheck_clears_dirty(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        online.ingest(ClickBatch.of([("new_account", "i0", 5)]))
        online.recheck()
        assert online.dirty_size == 0

    def test_recheck_without_dirt_is_noop(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        before = online.current_result
        assert online.recheck() is before

    def test_streamed_attack_is_detected(self, tiny):
        """An attack arriving as click batches is caught at the recheck."""
        online = make_online(tiny.graph, recheck=1)
        baseline_users = set(online.current_result.suspicious_users)
        # Stream a fresh 5x5 attack (hot ride + heavy targets).
        workers = [f"nw{i}" for i in range(5)]
        targets = [f"nt{j}" for j in range(5)]
        records = []
        for worker in workers:
            records.append((worker, "i0", 1))  # ride the hottest item
            for target in targets:
                records.append((worker, target, 13))
        result = online.ingest(ClickBatch.of(records))
        assert set(workers) <= result.suspicious_users
        assert set(targets) <= result.suspicious_items
        # Previously clean users stay out.
        assert baseline_users <= result.suspicious_users | baseline_users

    def test_untouched_groups_survive_rechecks(self, tiny):
        online = make_online(tiny.graph, recheck=1)
        initial_users = set(online.current_result.suspicious_users)
        # Ingest organic noise far from the attack group.
        result = online.ingest(
            ClickBatch.of([("idle_shopper", "i40", 1), ("idle_shopper", "i40", 1)])
        )
        assert initial_users <= result.suspicious_users

    def test_online_covers_batch_on_final_graph(self, tiny):
        """Both online and batch runs catch a streamed attack; the online
        state additionally retains pre-drift groups (new clicks shift the
        derived thresholds, which can make a *fresh* batch run drop groups
        that were valid when first detected)."""
        online = make_online(tiny.graph, recheck=1)
        workers = [f"zw{i}" for i in range(5)]
        targets = [f"zt{j}" for j in range(5)]
        records = [(w, t, 13) for w in workers for t in targets]
        online.ingest(ClickBatch.of(records))
        batch = RICDDetector(
            params=params(), screening=ScreeningParams(min_users=2, min_items=2)
        ).detect(online.graph)
        assert set(workers) <= batch.suspicious_users
        assert set(workers) <= online.current_result.suspicious_users
        assert batch.suspicious_users <= online.current_result.suspicious_users

    def test_replay_from_empty_matches_batch(self, tiny):
        """Tier-1 miniature of the difftest replay-parity grid: streaming
        the whole click table from an empty graph and rechecking once
        equals a one-shot batch detect."""
        from repro.graph import BipartiteGraph

        online = IncrementalRICD(
            BipartiteGraph(),
            params=params(),
            screening=ScreeningParams(min_users=2, min_items=2),
            recheck_batches=10**9,
        )
        records = [
            (user, item, tiny.graph.get_click(user, item))
            for user in sorted(tiny.graph.users(), key=str)
            for item in sorted(tiny.graph.user_neighbors(user), key=str)
        ]
        online.ingest(ClickBatch.of(records))
        online.recheck()
        # Compare on the replayed graph: the click table omits the
        # scenario's zero-click items, which exist as nodes only.
        batch = RICDDetector(
            params=params(), screening=ScreeningParams(min_users=2, min_items=2)
        ).detect(online.graph)
        assert online.graph.num_edges == tiny.graph.num_edges
        assert online.current_result.suspicious_users == batch.suspicious_users
        assert online.current_result.suspicious_items == batch.suspicious_items

    def test_injected_attack_via_injector(self, tiny):
        """Full-stack: inject a second attack into the live graph as batches."""
        online = make_online(tiny.graph, recheck=1)
        shadow = online.graph.copy()
        truth = inject_attacks(
            shadow,
            AttackConfig(
                n_groups=1,
                workers_per_group=(5, 5),
                targets_per_group=(5, 5),
                target_clicks=(13, 13),
                density=1.0,
                sloppy_fraction=0.0,
                hijacked_user_fraction=0.0,
                worker_reuse_fraction=0.0,
                organic_target_users=(0, 0),
                seed=99,
            ),
        )
        group = truth.groups[0]
        # The injector numbers its groups from 0, so its ids collide with
        # the scenario's own group 0 — remap to a fresh namespace before
        # streaming.
        def remap(node):
            text = str(node)
            return f"x_{text}" if text[0] in "wt" else node

        records = [
            (remap(user), remap(item), clicks)
            for user, item, clicks in group.fake_edges
        ]
        result = online.ingest(ClickBatch.of(records))
        caught = {remap(w) for w in group.workers} & result.suspicious_users
        assert len(caught) >= 4


class TestCleanup:
    def test_cleanup_removes_group_from_state(self, tiny):
        from repro.core.screening import collect_fake_edges
        from repro.core.thresholds import t_click_from_graph

        online = make_online(tiny.graph, recheck=1)
        result = online.current_result
        if not result.groups:
            pytest.skip("nothing detected on this seed")
        t_click = t_click_from_graph(online.graph)
        edges = [
            edge
            for group in result.groups
            for edge in collect_fake_edges(online.graph, group, t_click)
        ]
        after = online.apply_cleanup(edges)
        flagged_before = result.suspicious_users
        assert not (after.suspicious_users & flagged_before)

    def test_cleanup_clamps_at_zero(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        user = next(iter(tiny.graph.users()))
        item = next(iter(tiny.graph.user_neighbors(user)))
        online.apply_cleanup([(user, item, 10**9)])
        assert online.graph.get_click(user, item) == 0

    def test_cleanup_of_unknown_edge_is_safe(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        before = online.graph.total_clicks
        online.apply_cleanup([("ghost", "phantom", 5)])
        assert online.graph.total_clicks == before


class TestCleanupEdgeDeletion:
    def test_fully_cleaned_edge_leaves_the_adjacency(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        user = next(iter(tiny.graph.users()))
        item = next(iter(tiny.graph.user_neighbors(user)))
        online.apply_cleanup([(user, item, tiny.graph.get_click(user, item))])
        assert not online.graph.has_edge(user, item)
        assert item not in dict(online.graph.user_neighbors(user))
        assert online.graph.num_edges == tiny.graph.num_edges - 1

    def test_threshold_parity_with_freshly_built_graph(self, tiny):
        """Regression: a cleaned-to-zero edge must not linger as a zombie.

        A weight-0 edge would still count toward ``Avg_cnt`` (Eq. 4's
        denominator) and item degrees, so the live graph's re-derived
        thresholds would drift from a graph built fresh without the
        edge.  Both derivations must agree exactly.
        """
        from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph
        from repro.graph import BipartiteGraph

        online = make_online(tiny.graph, recheck=100)
        user = next(iter(tiny.graph.users()))
        removed = set()
        for item in list(dict(tiny.graph.user_neighbors(user)))[:2]:
            online.apply_cleanup([(user, item, tiny.graph.get_click(user, item))])
            removed.add((user, item))

        fresh = BipartiteGraph()
        for edge_user, edge_item, clicks in tiny.graph.edges():
            if (edge_user, edge_item) not in removed:
                fresh.add_click(edge_user, edge_item, clicks)
        assert online.graph.num_edges == fresh.num_edges
        assert t_click_from_graph(online.graph) == t_click_from_graph(fresh)
        assert pareto_hot_threshold(online.graph) == pareto_hot_threshold(fresh)


class TestTraverseCap:
    @staticmethod
    def _growth_batch(graph, edges=3000):
        """New users piling clicks onto a handful of existing items."""
        targets = sorted(map(str, graph.items()))[:5]
        return ClickBatch.of(
            (f"grower_{index}", targets[index % len(targets)], 1)
            for index in range(edges)
        )

    def test_derived_cap_tracks_live_graph_growth(self, tiny):
        online = make_online(tiny.graph, recheck=100)
        initial = online.traverse_degree_cap
        online.ingest(self._growth_batch(online.graph))
        online.recheck()
        # Mean item degree grew by an order of magnitude; a cap frozen at
        # bootstrap would now silently shrink the dirty region.
        assert online.traverse_degree_cap > initial

    def test_explicit_cap_stays_fixed(self, tiny):
        online = IncrementalRICD(
            tiny.graph,
            params=params(),
            screening=ScreeningParams(min_users=2, min_items=2),
            recheck_batches=100,
            traverse_degree_cap=77,
        )
        online.ingest(self._growth_batch(online.graph))
        online.recheck()
        assert online.traverse_degree_cap == 77
