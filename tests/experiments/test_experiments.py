"""Tests for the experiment modules and registry.

Experiments run on the cached paper-scale scenario, so this module is the
slowest part of the suite (~2-4 minutes total); each experiment is
exercised exactly once per session via module-scoped fixtures.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENT_IDS, get_experiment, run_experiment


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENT_IDS) == {
            "table1_2",
            "fig2",
            "table3_4",
            "table5",
            "fig8",
            "table6",
            "fig9",
            "fig10",
            "eq3",
            "robustness",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


class TestEq3:
    def test_optimum_at_full_concentration(self):
        report = run_experiment("eq3", click_budget=12, existing_co_clicks=500)
        assert report.data["best_allocation"] == report.data["expected_allocation"]

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            run_experiment("eq3", click_budget=1)


@pytest.fixture(scope="module")
def table1_2():
    return run_experiment("table1_2")


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2")


class TestDataExperiments:
    def test_table1_scale_near_paper_ratio(self, table1_2):
        users, items, edges, clicks = table1_2.data["scale"]
        assert 19_000 <= users <= 22_000
        assert 3_900 <= items <= 4_300
        assert edges >= 80_000

    def test_table2_stats_in_band(self, table1_2):
        avg_clk, avg_cnt, _stdev = table1_2.data["user_stats"]
        assert 10.0 <= avg_clk <= 16.0
        assert 3.5 <= avg_cnt <= 6.0

    def test_fig2_heavy_tail(self, fig2):
        assert fig2.data["item_pareto_share"] < 0.25
        assert len(fig2.data["item_bins"]) >= 5

    def test_table3_4_contrast(self):
        report = run_experiment("table3_4")
        suspect = report.data["suspect_rows"]
        # The suspect's record must contain a heavy ordinary click (>= 12
        # clicks on a non-hot item) — the Table III signature.
        assert any(row[1] >= 12 and row[3] == 0 for row in suspect)

    def test_table5_contrast(self):
        report = run_experiment("table5")
        suspicious = report.data["suspicious"]["profile"]
        normal = report.data["normal"]["profile"]
        # Matched volumes, but the suspicious item concentrates clicks in
        # fewer users with a higher per-user mean.
        assert suspicious.user_num < normal.user_num
        assert suspicious.mean > normal.mean
        assert (
            report.data["suspicious"]["abnormal_share"]
            > report.data["normal"]["abnormal_share"]
        )

    def test_fig10_mechanism(self):
        report = run_experiment("fig10")
        impact = report.data["impact"]
        assert impact.mean_score_after > impact.mean_score_before
        assert report.data["caught_workers"] >= 0.8 * report.data["group_size"][0]
        timeline = report.data["timeline"]
        assert timeline.peak_organic_day() < 9  # growth peaks before detection

    def test_reports_render(self, table1_2, fig2):
        for report in (table1_2, fig2):
            text = str(report)
            assert report.experiment_id in text
            assert "|" in text
