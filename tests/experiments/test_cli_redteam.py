"""Tests for the ``ricd redteam`` subcommand (ISSUE 8)."""

import json

import pytest

from repro.cli import main

FAST = [
    "redteam",
    "--scale",
    "tiny",
    "--families",
    "coattails",
    "--budgets",
    "400",
    "--k1",
    "4",
    "--k2",
    "4",
    "--no-feedback",
]


class TestRedteamCommand:
    def test_runs_and_prints_frontier(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "marketplace: scale=tiny" in out
        assert "red-team frontier" in out
        assert "coattails" in out

    def test_feedback_columns_present_by_default(self, capsys):
        args = [a for a in FAST if a != "--no-feedback"]
        assert main(args + ["--adaptivity", "static"]) == 0
        out = capsys.readouterr().out
        assert "fb R" in out and "fb rounds" in out

    def test_writes_frontier_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "frontier.json"
        assert main(FAST + ["--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "ricd.redteam.frontier/v1"
        assert payload["families"] == ["coattails"]
        assert payload["marketplace"] == {"scale": "tiny", "seed": 0}
        assert payload["params"] == {"k1": 4, "k2": 4}
        # static + adaptive cells at one budget
        assert len(payload["points"]) == 2
        assert {p["adaptive"] for p in payload["points"]} == {False, True}

    def test_adaptivity_filter(self, tmp_path, capsys):
        out_path = tmp_path / "static.json"
        args = FAST + ["--adaptivity", "static", "--out", str(out_path)]
        assert main(args) == 0
        payload = json.loads(out_path.read_text())
        assert [p["adaptive"] for p in payload["points"]] == [False]

    def test_drip_section_and_artifact_block(self, tmp_path, capsys):
        out_path = tmp_path / "drip.json"
        assert main(FAST + ["--drip", "5", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "parity" in out and "MISMATCH" not in out
        payload = json.loads(out_path.read_text())
        assert payload["drip"]["n_batches"] == 5
        rows = payload["drip"]["campaigns"]
        assert [row["family"] for row in rows] == ["coattails"]
        assert all(row["parity"] for row in rows)
        assert all(row["events"] == 400 for row in rows)

    def test_unknown_family_errors(self, capsys):
        assert main(["redteam", "--families", "nope"]) == 2
        assert "unknown families" in capsys.readouterr().err

    def test_bad_budgets_error(self, capsys):
        assert main(["redteam", "--budgets", "abc"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_budgets_error(self, capsys):
        assert main(["redteam", "--budgets", ","]) == 2
        assert "at least one budget" in capsys.readouterr().err

    def test_unknown_scale_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["redteam", "--scale", "galactic"])
