"""Golden snapshot tests for the canonical experiment outputs.

Each golden file under ``goldens/`` freezes the *content* of one
experiment — rendered tables for the fully deterministic ones, structured
quality metrics for fig8 (whose rendered report includes wall-clock) — on
the shared small scenario under the default seed.  Any change to datagen,
extraction, screening, scoring or table rendering that shifts these
outputs shows up as a readable JSON diff.

Intentional changes are re-frozen with::

    pytest tests/experiments/test_goldens.py --update-goldens

The experiments run on ``small_scenario`` (the module-level
``default_scenario`` is monkeypatched): same code paths as the paper-scale
run, ~10x faster, and deterministic.  COPYCATCH+UI is excluded from the
fig8 golden — its wall-clock deadline makes it the one detector whose
output may legitimately vary between hosts.
"""

import json
from pathlib import Path

import pytest

from repro.datagen import AttackConfig, MarketplaceConfig, generate_scenario

from repro.experiments import fig8, table1_2, table3_4

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: fig8 detectors whose output is wall-clock dependent (see module docstring).
FIG8_EXCLUDED = {"COPYCATCH+UI"}


def _golden_scenario(seed: int = 0):
    """A small-scale scenario whose attack groups clear the default floors.

    ``small_scenario`` injects 5-8-worker groups — below the paper-default
    ``k1 = k2 = 10`` the experiments run with — so its fig8 quality table
    would freeze every detector at zero and catch nothing.  Here the
    groups are paper-shaped (>= 10 workers and targets) while the
    marketplace stays ~3k users for speed.
    """
    marketplace = MarketplaceConfig(
        n_users=3_000,
        n_items=700,
        n_cohorts=4,
        cohort_users=(12, 25),
        cohort_items=(8, 12),
        n_superfans=30,
        superfan_clicks=(12, 18),
        n_swarms=2,
        swarm_users=(20, 26),
        swarm_items=(10, 12),
        seed=seed,
    )
    attacks = AttackConfig(
        n_groups=4,
        workers_per_group=(11, 15),
        targets_per_group=(11, 14),
        target_clicks=(12, 15),
        sloppy_target_clicks=(3, 7),
        seed=seed + 1,
    )
    return generate_scenario(marketplace, attacks)


@pytest.fixture(scope="module")
def small_default_scenario():
    """One golden scenario shared by every test, keyed like default_scenario."""
    cache: dict[int, object] = {}

    def get(seed: int = 0):
        if seed not in cache:
            cache[seed] = _golden_scenario(seed)
        return cache[seed]

    return get


def _assert_matches_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if update:
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"golden {path} missing — create it with: "
            "pytest tests/experiments/test_goldens.py --update-goldens"
        )
    expected = json.loads(path.read_text())
    assert payload == expected, (
        f"{name} output diverged from its golden; if the change is "
        "intentional, re-freeze with --update-goldens"
    )


def _metrics_dict(metrics) -> dict:
    return {
        "precision": metrics.precision,
        "recall": metrics.recall,
        "f1": metrics.f1,
        "true_positives": metrics.true_positives,
        "output_size": metrics.output_size,
        "known_size": metrics.known_size,
    }


class TestGoldens:
    def test_table1_2(self, small_default_scenario, monkeypatch, update_goldens):
        monkeypatch.setattr(table1_2, "default_scenario", small_default_scenario)
        report = table1_2.run()
        _assert_matches_golden(
            "table1_2",
            {"experiment_id": report.experiment_id, "text": report.text},
            update_goldens,
        )

    def test_table3_4(self, small_default_scenario, monkeypatch, update_goldens):
        monkeypatch.setattr(table3_4, "default_scenario", small_default_scenario)
        report = table3_4.run()
        _assert_matches_golden(
            "table3_4",
            {"experiment_id": report.experiment_id, "text": report.text},
            update_goldens,
        )

    def test_fig8(self, small_default_scenario, monkeypatch, update_goldens):
        monkeypatch.setattr(fig8, "default_scenario", small_default_scenario)
        report = fig8.run()
        quality = {
            name: {
                "exact": _metrics_dict(run["exact"]),
                "known": _metrics_dict(run["known"]) if run["known"] else None,
            }
            for name, run in sorted(report.data["runs"].items())
            if name not in FIG8_EXCLUDED
        }
        _assert_matches_golden(
            "fig8",
            {"experiment_id": report.experiment_id, "quality": quality},
            update_goldens,
        )
