"""Tests for the ``ricd detect`` subcommand."""

import json
import re

import pytest

from repro.cli import main
from repro.graph import write_click_table
from repro.obs import TraceReport


@pytest.fixture(scope="module")
def click_table(tmp_path_factory):
    from repro.datagen import small_scenario

    path = tmp_path_factory.mktemp("detect") / "clicks.csv"
    write_click_table(small_scenario().graph, path)
    return path


class TestDetectCommand:
    def test_detect_runs_and_prints(self, click_table, capsys):
        assert main(["detect", str(click_table), "--k1", "5", "--k2", "5"]) == 0
        out = capsys.readouterr().out
        assert "thresholds:" in out
        assert "suspicious users" in out

    def test_detect_writes_output_files(self, click_table, tmp_path, capsys):
        prefix = tmp_path / "findings"
        code = main(
            [
                "detect",
                str(click_table),
                "--k1",
                "5",
                "--k2",
                "5",
                "--output",
                str(prefix),
            ]
        )
        assert code == 0
        users_csv = tmp_path / "findings_users.csv"
        items_csv = tmp_path / "findings_items.csv"
        assert users_csv.exists() and items_csv.exists()
        header = users_csv.read_text().splitlines()[0]
        assert header == "User_ID,Risk"

    def test_detect_with_feedback_expectation(self, click_table, capsys):
        code = main(
            [
                "detect",
                str(click_table),
                "--k1",
                "5",
                "--k2",
                "5",
                "--t-click",
                "40",
                "--expectation",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "feedback rounds" in out

    def test_trace_prints_stage_table(self, click_table, capsys):
        args = ["detect", str(click_table), "--k1", "5", "--k2", "5", "--trace"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "calls" in out
        assert "detector.RICD" in out
        assert "extract.fixpoint_rounds" in out

    def test_no_trace_by_default(self, click_table, capsys):
        assert main(["detect", str(click_table), "--k1", "5", "--k2", "5"]) == 0
        out = capsys.readouterr().out
        assert "stage" not in out and "counter" not in out

    def test_trace_out_writes_json(self, click_table, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        args = [
            "detect",
            str(click_table),
            "--k1",
            "5",
            "--k2",
            "5",
            "--trace-out",
            str(trace_path),
        ]
        assert main(args) == 0
        report = TraceReport.from_json(trace_path.read_text())
        assert report.meta["command"] == "detect"
        assert any(path.startswith("detector.RICD") for path in report.spans)
        assert report.counters["detect.threshold_cache_misses"] >= 1
        # --trace-out implies the printed summary too.
        assert "wrote trace to" in capsys.readouterr().out

    def test_run_trace_covers_experiment(self, tmp_path, capsys):
        trace_path = tmp_path / "run_trace.json"
        assert main(["run", "eq3", "--trace-out", str(trace_path)]) == 0
        data = json.loads(trace_path.read_text())
        assert data["meta"]["experiments"] == "eq3"
        assert any(path.startswith("experiment.eq3") for path in data["spans"])

    def test_sharded_detect_matches_unsharded(self, click_table, capsys):
        def scrubbed(text):
            return re.sub(r"\d+\.\d+s", "<time>", text)

        assert main(["detect", str(click_table), "--k1", "5", "--k2", "5"]) == 0
        unsharded = scrubbed(capsys.readouterr().out)
        args = ["detect", str(click_table), "--k1", "5", "--k2", "5", "--shards", "3"]
        assert main(args) == 0
        assert scrubbed(capsys.readouterr().out) == unsharded
        assert main(args + ["--jobs", "2"]) == 0
        assert scrubbed(capsys.readouterr().out) == unsharded

    def test_sharded_trace_records_plan(self, click_table, tmp_path, capsys):
        trace_path = tmp_path / "shard_trace.json"
        args = [
            "detect",
            str(click_table),
            "--k1",
            "5",
            "--k2",
            "5",
            "--shards",
            "4",
            "--trace-out",
            str(trace_path),
        ]
        assert main(args) == 0
        report = TraceReport.from_json(trace_path.read_text())
        assert report.meta["shards"] == 4
        assert report.gauges["shard.requested"] == 4
        assert any(".shard." in path for path in report.spans)

    def test_invalid_shards_error(self, click_table, capsys):
        assert main(["detect", str(click_table), "--shards", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        assert main(["detect", "/no/such/file.csv"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_invalid_params_error(self, click_table, capsys):
        assert main(["detect", str(click_table), "--alpha", "3.0"]) == 2
        assert "error" in capsys.readouterr().err
