"""Tests for the ``ricd detect`` subcommand."""

import pytest

from repro.cli import main
from repro.graph import write_click_table


@pytest.fixture(scope="module")
def click_table(tmp_path_factory):
    from repro.datagen import small_scenario

    path = tmp_path_factory.mktemp("detect") / "clicks.csv"
    write_click_table(small_scenario().graph, path)
    return path


class TestDetectCommand:
    def test_detect_runs_and_prints(self, click_table, capsys):
        assert main(["detect", str(click_table), "--k1", "5", "--k2", "5"]) == 0
        out = capsys.readouterr().out
        assert "thresholds:" in out
        assert "suspicious users" in out

    def test_detect_writes_output_files(self, click_table, tmp_path, capsys):
        prefix = tmp_path / "findings"
        code = main(
            [
                "detect",
                str(click_table),
                "--k1",
                "5",
                "--k2",
                "5",
                "--output",
                str(prefix),
            ]
        )
        assert code == 0
        users_csv = tmp_path / "findings_users.csv"
        items_csv = tmp_path / "findings_items.csv"
        assert users_csv.exists() and items_csv.exists()
        header = users_csv.read_text().splitlines()[0]
        assert header == "User_ID,Risk"

    def test_detect_with_feedback_expectation(self, click_table, capsys):
        code = main(
            [
                "detect",
                str(click_table),
                "--k1",
                "5",
                "--k2",
                "5",
                "--t-click",
                "40",
                "--expectation",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "feedback rounds" in out

    def test_missing_file_errors(self, capsys):
        assert main(["detect", "/no/such/file.csv"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_invalid_params_error(self, click_table, capsys):
        assert main(["detect", str(click_table), "--alpha", "3.0"]) == 2
        assert "error" in capsys.readouterr().err
