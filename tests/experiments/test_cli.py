"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_seed(self):
        args = build_parser().parse_args(["run", "fig8", "--seed", "3"])
        assert args.experiment == "fig8"
        assert args.seed == 3

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "table6" in out

    def test_run_eq3(self, capsys):
        assert main(["run", "eq3"]) == 0
        out = capsys.readouterr().out
        assert "Attacker optimal strategy" in out

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
