"""Tests for the exception hierarchy and internal utilities."""

import time

import pytest

from repro._util import Stopwatch, ceil_frac, stopwatch
from repro.errors import (
    ClickTableError,
    ConfigError,
    DataGenError,
    DetectionError,
    ExperimentError,
    FeedbackExhaustedError,
    GraphError,
    NodeNotFoundError,
    ReproError,
    ScreeningError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError("x"),
            ClickTableError("x"),
            ConfigError("x"),
            DataGenError("x"),
            DetectionError("x"),
            ScreeningError("x"),
            ExperimentError("x"),
            FeedbackExhaustedError(1, 2, 3),
            NodeNotFoundError("u", "user"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_node_not_found_doubles_as_keyerror(self):
        error = NodeNotFoundError("u9", "user")
        assert isinstance(error, KeyError)
        assert "u9" in str(error)
        assert error.side == "user"

    def test_config_error_is_valueerror(self):
        assert isinstance(ConfigError("bad"), ValueError)

    def test_click_table_error_line_number(self):
        error = ClickTableError("broken", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_feedback_exhausted_context(self):
        error = FeedbackExhaustedError(rounds=3, last_size=5, expectation=100)
        assert error.rounds == 3
        assert "3 rounds" in str(error)
        assert "100" in str(error)


class TestCeilFrac:
    @pytest.mark.parametrize(
        ("alpha", "k", "expected"),
        [
            (0.7, 10, 7),   # float noise would give 8 with naive ceil
            (0.75, 10, 8),
            (1.0, 10, 10),
            (0.5, 3, 2),
            (0.34, 3, 2),
            (1.0, 1, 1),
        ],
    )
    def test_values(self, alpha, k, expected):
        assert ceil_frac(alpha, k) == expected

    def test_matches_exact_rational_ceiling(self):
        for k in range(1, 25):
            for numerator in range(1, 11):
                alpha = numerator / 10
                exact = -(-numerator * k // 10)  # ceil(numerator*k/10)
                assert ceil_frac(alpha, k) == exact, (alpha, k)


class TestStopwatch:
    def test_accumulates_named_phases(self):
        watch = Stopwatch()
        with watch.measure("a"):
            time.sleep(0.01)
        with watch.measure("a"):
            pass
        with watch.measure("b"):
            pass
        assert watch.durations["a"] >= 0.01
        assert set(watch.durations) == {"a", "b"}
        assert watch.total() == pytest.approx(sum(watch.durations.values()))

    def test_records_even_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure("boom"):
                raise RuntimeError("x")
        assert "boom" in watch.durations

    def test_single_cell_stopwatch(self):
        with stopwatch() as cell:
            time.sleep(0.005)
        assert cell[0] >= 0.005
