"""Unit tests for component discovery and the shard planner."""

from __future__ import annotations

import pytest

from repro.graph import BipartiteGraph, connected_components, from_click_records
from repro.shard.partition import (
    Component,
    ShardPlan,
    _components_csgraph,
    graph_components,
    partition_graph,
)


def _component_graph(n_components: int, users_per: int = 3, clicks: int = 2):
    """``n`` disjoint bicliques, each ``users_per`` x 2 items."""
    graph = BipartiteGraph()
    for c in range(n_components):
        for u in range(users_per):
            for i in range(2):
                graph.add_click(f"c{c}:u{u}", f"c{c}:i{i}", clicks)
    return graph


def _as_sets(components):
    return {(component.users, component.items) for component in components}


class TestGraphComponents:
    def test_matches_dict_bfs(self, small):
        graph = small.graph
        fast = graph_components(graph)
        reference = {
            (frozenset(users), frozenset(items))
            for users, items in connected_components(graph)
        }
        assert _as_sets(fast) == reference

    def test_csgraph_path_matches_fallback(self, small):
        graph = small.graph
        via_csgraph = _components_csgraph(graph)
        if via_csgraph is None:
            pytest.skip("scipy not installed")
        via_bfs = [
            Component(
                users=frozenset(users),
                items=frozenset(items),
                edges=sum(graph.user_degree(user) for user in users),
            )
            for users, items in connected_components(graph)
        ]
        assert _as_sets(via_csgraph) == _as_sets(via_bfs)
        assert sorted(c.edges for c in via_csgraph) == sorted(
            c.edges for c in via_bfs
        )

    def test_edge_counts_sum_to_graph(self):
        graph = _component_graph(5)
        components = graph_components(graph)
        assert sum(component.edges for component in components) == graph.num_edges

    def test_isolated_nodes_form_components(self):
        graph = _component_graph(2)
        graph.add_user("lonely-user")
        graph.add_item("lonely-item")
        components = graph_components(graph)
        assert len(components) == 4
        assert {component.edges for component in components} == {6, 0}

    def test_canonical_order_is_largest_first(self):
        graph = _component_graph(3, users_per=2)
        for u in range(10):  # one clearly dominant component
            graph.add_click(f"big:u{u}", "big:i0", 1)
        components = graph_components(graph)
        assert components[0].edges == max(c.edges for c in components)
        assert [c.sort_key() for c in components] == sorted(
            c.sort_key() for c in components
        )

    def test_empty_graph(self):
        assert graph_components(BipartiteGraph()) == []


class TestPartitionGraph:
    def test_covers_every_node_disjointly(self, small):
        graph = small.graph
        plan = partition_graph(graph, 4)
        users: list = []
        items: list = []
        for index in range(len(plan)):
            users.extend(plan.shard_users(index))
            items.extend(plan.shard_items(index))
        assert sorted(map(str, users)) == sorted(map(str, graph.users()))
        assert sorted(map(str, items)) == sorted(map(str, graph.items()))
        assert len(users) == len(set(users)) and len(items) == len(set(items))

    def test_balanced_on_equal_components(self):
        plan = partition_graph(_component_graph(8), 4)
        assert len(plan) == 4
        loads = [plan.shard_edges(index) for index in range(4)]
        assert loads == [12, 12, 12, 12]

    def test_never_more_shards_than_components(self):
        plan = partition_graph(_component_graph(3), 7)
        assert plan.requested == 7
        assert len(plan) == 3

    def test_mega_component_kept_whole(self):
        graph = _component_graph(4, users_per=2)
        for u in range(40):  # giant component dwarfing the others
            for i in range(3):
                graph.add_click(f"mega:u{u}", f"mega:i{i}", 1)
        plan = partition_graph(graph, 3)
        assert plan.mega_components  # the giant was flagged...
        mega_shard = max(range(len(plan)), key=plan.shard_edges)
        # ...and landed in one shard, unsplit.
        assert {f"mega:u{u}" for u in range(40)} <= plan.shard_users(mega_shard)

    def test_deterministic_across_insertion_orders(self):
        rows = [(f"c{c}:u{u}", f"c{c}:i{u % 2}", u + 1) for c in range(6) for u in range(4)]
        forward = partition_graph(from_click_records(rows), 3)
        backward = partition_graph(from_click_records(rows[::-1]), 3)
        key = lambda plan: [
            sorted(
                (sorted(map(str, c.users)), sorted(map(str, c.items)), c.edges)
                for c in shard
            )
            for shard in plan.shards
        ]
        assert key(forward) == key(backward)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_graph(BipartiteGraph(), 0)

    def test_empty_graph_yields_single_empty_shard(self):
        plan = partition_graph(BipartiteGraph(), 5)
        assert len(plan) == 1 and plan.shard_edges(0) == 0
        assert plan.subgraph(BipartiteGraph(), 0).num_edges == 0


class TestShardSubgraphs:
    def test_subgraph_preserves_incident_edges(self, small):
        """Shards are whole components: no node loses a single edge."""
        graph = small.graph
        plan = partition_graph(graph, 4)
        for shard_graph in plan.subgraphs(graph):
            for user in shard_graph.users():
                assert shard_graph.user_neighbors(user) == graph.user_neighbors(user)
            for item in shard_graph.items():
                assert shard_graph.item_degree(item) == graph.item_degree(item)
                assert shard_graph.item_total_clicks(item) == graph.item_total_clicks(
                    item
                )

    def test_subgraph_edges_match_plan(self):
        graph = _component_graph(6)
        plan = partition_graph(graph, 3)
        for index in range(len(plan)):
            assert plan.subgraph(graph, index).num_edges == plan.shard_edges(index)

    def test_repr_mentions_shape(self):
        plan = partition_graph(_component_graph(2), 2)
        assert "ShardPlan" in repr(plan) and "requested=2" in repr(plan)
        assert isinstance(plan, ShardPlan)
