"""Canonical result forms shared across the shard suite.

Every test in this package compares detection outputs through the same
canonical, order-free forms, so "identical" always means the same thing:
same group decomposition (users, items, hot items), same suspicious
sets, same risk scores, same metrics.
"""

from __future__ import annotations

from repro.eval.metrics import node_metrics


def canonical_groups(groups):
    """Order-free canonical form of a group list (hot items included)."""
    return {
        (
            frozenset(map(str, group.users)),
            frozenset(map(str, group.items)),
            frozenset(map(str, group.hot_items)),
        )
        for group in groups
    }


def canonical_result(result):
    """Everything observable about a result except wall-clock timings."""
    return (
        sorted(map(str, result.suspicious_users)),
        sorted(map(str, result.suspicious_items)),
        canonical_groups(result.groups),
        sorted((str(node), score) for node, score in result.user_scores.items()),
        sorted((str(node), score) for node, score in result.item_scores.items()),
        result.feedback_rounds,
    )


def scenario_metrics(result, scenario):
    """The evaluation-harness metrics of ``result`` on ``scenario``'s truth."""
    return node_metrics(
        result.suspicious_users,
        result.suspicious_items,
        scenario.truth.abnormal_users,
        scenario.truth.abnormal_items,
    )
