"""Fuzz regression: ``T_hot`` / ``T_click`` stay global under sharding.

The thresholds are *marketplace* statistics (Section IV): the Pareto hot
cutoff and the Eq. 4 abnormal-click level describe the whole platform,
not any shard of it.  The orchestrator therefore resolves them once on
the unpartitioned graph and passes the resolved values into every shard.

The regression these tests pin: a shard containing only cold, low-traffic
components must NOT re-derive thresholds from its own (much smaller)
click distribution.  A shard-local Pareto cutoff over a cold component
lands a couple of orders of magnitude below the global one, promoting
ordinary cold items to "hot" — which flips screening's item
classification and users' hot-average checks.  The seeded generator
builds graphs where local and global thresholds provably differ, and the
counting monkeypatches assert the derivation functions run exactly once,
on the full graph.
"""

from __future__ import annotations

import random

import pytest

import repro.core.framework as framework_module
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph
from repro.graph import BipartiteGraph
from repro.shard.partition import partition_graph
from repro.shard.runner import detect_sharded

from .canon import canonical_result

SEEDS = range(6)


def cold_attack_marketplace(seed: int) -> tuple[BipartiteGraph, int]:
    """A hot marketplace component plus a disconnected cold-only component.

    The ``hot:`` component carries organic blockbuster traffic that sets
    the global thresholds; the ``cold:`` component holds an attack
    biclique (plus organic filler) whose item totals sit far below the
    global ``T_hot``.  Returns the graph and the attacker count.
    """
    rng = random.Random(seed)
    graph = BipartiteGraph()
    for u in range(40):
        for i in rng.sample(range(6), 3):
            graph.add_click(f"hot:u{u}", f"hot:i{i}", rng.randint(5, 12))
    n_attackers = rng.randint(4, 6)
    n_targets = rng.randint(3, 4)
    for a in range(n_attackers):
        for x in range(n_targets):
            graph.add_click(f"cold:a{a}", f"cold:x{x}", rng.randint(5, 6))
    for u in range(12):
        graph.add_click(f"cold:u{u}", f"cold:i{u % 5}", 1)
        graph.add_click(f"cold:u{u}", f"cold:i{(u + 1) % 5}", 1)
    return graph, n_attackers


def _cold_only_subgraphs(graph: BipartiteGraph, shards: int):
    plan = partition_graph(graph, shards)
    return [
        plan.subgraph(graph, index)
        for index in range(len(plan))
        if all(str(item).startswith("cold:") for item in plan.shard_items(index))
    ]


# Fixed T_click isolates the T_hot derivation; the attack stays findable
# (clicks of 5-6 against the floor of 5) so equivalence is non-vacuous.
T_HOT_ONLY = RICDParams(k1=3, k2=3, t_click=5.0)


class TestThresholdGlobality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_local_recomputation_would_actually_differ(self, seed):
        """The fuzz has teeth: shard-local thresholds are genuinely wrong."""
        graph, _ = cold_attack_marketplace(seed)
        global_t_hot = pareto_hot_threshold(graph)
        global_t_click = t_click_from_graph(graph)
        cold_shards = _cold_only_subgraphs(graph, 3)
        assert cold_shards  # the partitioner isolated cold components
        for shard_graph in cold_shards:
            assert pareto_hot_threshold(shard_graph) < global_t_hot
            assert t_click_from_graph(shard_graph) != global_t_click

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cold_shard_detection_matches_unsharded(self, seed):
        graph, n_attackers = cold_attack_marketplace(seed)
        reference = RICDDetector(params=T_HOT_ONLY, max_group_users=None).detect(
            graph
        )
        # Non-vacuous: the cold-component attack group is actually found.
        attackers = {f"cold:a{a}" for a in range(n_attackers)}
        assert attackers <= set(map(str, reference.suspicious_users))
        sharded = detect_sharded(
            RICDDetector(params=T_HOT_ONLY, max_group_users=None, shards=3), graph
        )
        assert canonical_result(sharded) == canonical_result(reference)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_thresholds_resolved_once_on_the_full_graph(self, seed, monkeypatch):
        """Directly assert shard-local recomputation is NOT happening."""
        graph, _ = cold_attack_marketplace(seed)
        t_hot_calls: list[int] = []
        t_click_calls: list[int] = []

        def counting_t_hot(g, *args, **kwargs):
            t_hot_calls.append(g.num_edges)
            return pareto_hot_threshold(g, *args, **kwargs)

        def counting_t_click(g, *args, **kwargs):
            t_click_calls.append(g.num_edges)
            return t_click_from_graph(g, *args, **kwargs)

        monkeypatch.setattr(
            framework_module, "pareto_hot_threshold", counting_t_hot
        )
        monkeypatch.setattr(
            framework_module, "t_click_from_graph", counting_t_click
        )
        detector = RICDDetector(
            params=RICDParams(k1=3, k2=3), max_group_users=None, shards=3
        )
        detect_sharded(detector, graph)
        # One derivation each, and on the unpartitioned graph — a sharded
        # implementation that re-resolved per shard would log one call per
        # shard with shard-sized edge counts.
        assert t_hot_calls == [graph.num_edges]
        assert t_click_calls == [graph.num_edges]
