"""Metamorphic equivalence: sharding is invisible in the output.

Three metamorphic relations pin the sharded pipeline:

1. **Shard-count invariance** — for every scenario of the differential
   grid and ``shards ∈ {1, 2, 4, 7}``, the sharded pipeline returns the
   same group sets, risk scores, and evaluation metrics as the unsharded
   reference (``shards=1`` exercises the partition + merge machinery on a
   single shard, so even the degenerate case goes through the new code).
2. **Relabeling invariance** — renaming every user/item id with a
   bijection renames the output and changes nothing else.  Detection
   results that shift under relabeling would mean some pipeline stage
   leaks an iteration or hash order into its decisions.
3. **Edge-order invariance** — the click table is a *set* of records;
   shuffling (or re-chunking) the insertion order must not move a single
   group member.

Relations 2 and 3 are property-based, reusing the record strategies of
``tests/graph/test_properties.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.graph import from_click_records
from repro.shard.runner import detect_sharded

from tests.difftest.scenarios import SCENARIO_GRID, build_scenario
from .canon import canonical_groups, canonical_result, scenario_metrics

SHARD_COUNTS = (1, 2, 4, 7)

_SCENARIOS: dict = {}
_REFERENCES: dict = {}


def _grid_scenario(label):
    if label not in _SCENARIOS:
        _, seed, density, exponent, camouflage = next(
            case for case in SCENARIO_GRID if case[0] == label
        )
        _SCENARIOS[label] = build_scenario(seed, density, exponent, camouflage)
    return _SCENARIOS[label]


def _reference(label):
    """The unsharded result, computed once per grid scenario."""
    if label not in _REFERENCES:
        scenario = _grid_scenario(label)
        detector = RICDDetector(params=RICDParams(k1=5, k2=5))
        _REFERENCES[label] = detector.detect(scenario.graph)
    return _REFERENCES[label]


class TestShardCountInvariance:
    @pytest.mark.parametrize("label", [case[0] for case in SCENARIO_GRID])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_matches_unsharded_on_grid(self, label, shards):
        scenario = _grid_scenario(label)
        reference = _reference(label)
        detector = RICDDetector(params=RICDParams(k1=5, k2=5), shards=shards)
        # detect_sharded directly: the public detect() only delegates for
        # shards > 1, but the equivalence must hold for shards = 1 too.
        sharded = detect_sharded(detector, scenario.graph)
        assert canonical_result(sharded) == canonical_result(reference)
        assert scenario_metrics(sharded, scenario) == scenario_metrics(
            reference, scenario
        )

    @pytest.mark.parametrize("label", [case[0] for case in SCENARIO_GRID])
    def test_public_api_delegates_identically(self, label):
        scenario = _grid_scenario(label)
        detector = RICDDetector(params=RICDParams(k1=5, k2=5), shards=4)
        assert canonical_result(detector.detect(scenario.graph)) == canonical_result(
            _reference(label)
        )

    def test_sharded_parallel_matches_serial_shards(self):
        scenario = _grid_scenario("ragged-flat")
        params = RICDParams(k1=5, k2=5)
        serial = RICDDetector(params=params, shards=4).detect(scenario.graph)
        pooled = RICDDetector(params=params, shards=4, shard_jobs=2).detect(
            scenario.graph
        )
        assert canonical_result(pooled) == canonical_result(serial)


# ----------------------------------------------------------------------
# Property-based relabeling / edge-order metamorphic relations
# ----------------------------------------------------------------------
# Click records over a small id universe so collisions (accumulation) and
# shared neighbourhoods actually occur — the same shape as the strategies
# in tests/graph/test_properties.py, with click weights reaching the
# default T_click floor so screening has something to keep.
records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=8).map(lambda n: f"i{n}"),
        st.integers(min_value=1, max_value=20),
    ),
    max_size=60,
)

permutations = st.permutations(list(range(9)))

PROPERTY_PARAMS = RICDParams(k1=2, k2=2, t_hot=30, t_click=3)


def _detect(graph, shards):
    detector = RICDDetector(
        params=PROPERTY_PARAMS, max_group_users=None, shards=shards
    )
    return detect_sharded(detector, graph)


def _relabel_rows(rows, user_perm, item_perm):
    return [
        (f"U{user_perm[int(user[1:])]}", f"I{item_perm[int(item[1:])]}", clicks)
        for user, item, clicks in rows
    ]


def _relabel_result_key(result, user_perm, item_perm):
    """The canonical form of ``result`` pushed through the relabeling."""

    def map_user(user):
        return f"U{user_perm[int(str(user)[1:])]}"

    def map_item(item):
        return f"I{item_perm[int(str(item)[1:])]}"

    return (
        sorted(map_user(u) for u in result.suspicious_users),
        sorted(map_item(i) for i in result.suspicious_items),
        {
            (
                frozenset(map_user(u) for u in group.users),
                frozenset(map_item(i) for i in group.items),
                frozenset(map_item(i) for i in group.hot_items),
            )
            for group in result.groups
        },
        sorted((map_user(u), s) for u, s in result.user_scores.items()),
        sorted((map_item(i), s) for i, s in result.item_scores.items()),
    )


def _identity_key(result):
    return _relabel_result_key(result, list(range(9)), list(range(9)))


class TestRelabelingInvariance:
    @given(records, permutations, permutations)
    @settings(max_examples=25, deadline=None)
    def test_sharded_detection_commutes_with_relabeling(
        self, rows, user_perm, item_perm
    ):
        original = _detect(from_click_records(rows), shards=3)
        relabeled = _detect(
            from_click_records(_relabel_rows(rows, user_perm, item_perm)), shards=3
        )
        assert _identity_key(relabeled) == _relabel_result_key(
            original, user_perm, item_perm
        )

    @given(records, permutations, permutations)
    @settings(max_examples=15, deadline=None)
    def test_relabeled_sharded_still_matches_unsharded(
        self, rows, user_perm, item_perm
    ):
        graph = from_click_records(_relabel_rows(rows, user_perm, item_perm))
        detector = RICDDetector(params=PROPERTY_PARAMS, max_group_users=None)
        assert canonical_result(_detect(graph, shards=4)) == canonical_result(
            detector.detect(graph)
        )


@pytest.mark.slow
class TestRelabelingInvarianceDeep:
    """The same relation at 8x example depth — nightly-grade fuzzing."""

    @given(records, permutations, permutations)
    @settings(max_examples=200, deadline=None)
    def test_sharded_detection_commutes_with_relabeling(
        self, rows, user_perm, item_perm
    ):
        original = _detect(from_click_records(rows), shards=3)
        relabeled = _detect(
            from_click_records(_relabel_rows(rows, user_perm, item_perm)), shards=3
        )
        assert _identity_key(relabeled) == _relabel_result_key(
            original, user_perm, item_perm
        )


class TestEdgeOrderInvariance:
    @given(records, st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_shuffled_record_order_changes_nothing(self, rows, rng):
        shuffled = list(rows)
        rng.shuffle(shuffled)
        baseline = _detect(from_click_records(rows), shards=3)
        reordered = _detect(from_click_records(shuffled), shards=3)
        assert canonical_result(baseline) == canonical_result(reordered)

    @given(records, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_shard_count_is_invisible_on_random_graphs(self, rows, shards):
        graph = from_click_records(rows)
        assert canonical_groups(_detect(graph, shards).groups) == canonical_groups(
            _detect(graph, 1).groups
        )
