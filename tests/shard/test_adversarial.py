"""Adversarial partitions: attacks that naive sharding would cut in half.

The component partitioner's one invariant — never split a connected
component — is exactly what hash/range partitioning violates.  This
module builds the canonical counterexample from the ISSUE: an attack
group whose members straddle two organic communities glued together by a
shared hot item.  Any node-level split (user-id hash, round-robin)
scatters the attackers across workers, leaving each worker with a
fragment too small to clear the ``k1`` core floor; the component
partitioner keeps the whole component on one shard and the group
survives intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import clean_marketplace, family_names, plan_family
from repro.graph import BipartiteGraph
from repro.shard.partition import partition_graph
from repro.shard.runner import detect_sharded

from .canon import canonical_groups, canonical_result

N_ATTACKERS = 6
ATTACK_USERS = frozenset(f"a{a}" for a in range(N_ATTACKERS))
ATTACK_ITEMS = frozenset(f"x{x}" for x in range(4))

# k1 = 4 is the adversarial pivot: the full 6-user group clears it, but
# any half of the group (3 users) cannot.
PARAMS = RICDParams(k1=4, k2=3, t_hot=40.0, t_click=3.0)


def straddling_attack_graph() -> BipartiteGraph:
    """Two communities, one shared hot item, one straddling attack group.

    * Communities ``ca*`` / ``cb*``: organic users with sparse, sub-
      ``T_click`` browsing plus light traffic on the shared hot item
      ``H`` — the glue that makes everything one connected component.
    * Attack group ``a0..a5`` x ``x0..x3``: a heavy biclique.  Attackers
      ride ``H`` (moderately — hot-item averages stay under the Fig. 5
      cutoff) and camouflage into the communities: ``a0..a2`` click a
      community-A item, ``a3..a5`` a community-B item.  A user-id split
      therefore tears the group *and* each half loses its other half's
      community context.
    """
    graph = BipartiteGraph()
    for prefix, size in (("ca", 8), ("cb", 8)):
        for u in range(size):
            graph.add_click(f"{prefix}{u}", "H", 2)
            graph.add_click(f"{prefix}{u}", f"i{prefix}{u % 4}", 1)
            graph.add_click(f"{prefix}{u}", f"i{prefix}{(u + 1) % 4}", 1)
    for a in range(N_ATTACKERS):
        for item in sorted(ATTACK_ITEMS):
            graph.add_click(f"a{a}", item, 5)
        graph.add_click(f"a{a}", "H", 3)
        side = "ca" if a < N_ATTACKERS // 2 else "cb"
        graph.add_click(f"a{a}", f"i{side}{a % 4}", 1)
    return graph


def _naive_hash_halves(graph: BipartiteGraph):
    """User-id hash partitioning into two workers (what we refuse to do).

    Each worker receives its users with all incident edges — the usual
    vertex-cut layout — so items on the boundary are replicated.
    """
    users = sorted(map(str, graph.users()))
    halves = []
    for parity in (0, 1):
        half_users = {u for index, u in enumerate(users) if index % 2 == parity}
        items: set = set()
        for user in half_users:
            items |= set(graph.user_neighbors(user))
        halves.append(graph.subgraph(half_users, items))
    return halves


class TestStraddlingAttack:
    def test_unsharded_reference_finds_group_intact(self):
        result = RICDDetector(params=PARAMS, max_group_users=None).detect(
            straddling_attack_graph()
        )
        assert canonical_groups(result.groups) == {
            (ATTACK_USERS, ATTACK_ITEMS, frozenset({"H"}))
        }

    def test_component_sharding_keeps_group_intact(self):
        graph = straddling_attack_graph()
        reference = RICDDetector(params=PARAMS, max_group_users=None).detect(graph)
        for shards in (2, 3, 5):
            detector = RICDDetector(
                params=PARAMS, max_group_users=None, shards=shards
            )
            sharded = detect_sharded(detector, graph)
            assert canonical_result(sharded) == canonical_result(reference)
            assert ATTACK_USERS <= set(map(str, sharded.suspicious_users))

    def test_partitioner_refuses_to_split_the_component(self):
        graph = straddling_attack_graph()
        plan = partition_graph(graph, 2)
        # The hot item glues everything into one component: the plan
        # collapses to a single shard holding it whole, and flags it mega.
        assert len(plan) == 1
        assert plan.mega_components
        assert ATTACK_USERS <= set(map(str, plan.shard_users(0)))

    def test_naive_hash_partitioning_would_lose_the_group(self):
        """Sanity check that the scenario is actually adversarial."""
        graph = straddling_attack_graph()
        halves = _naive_hash_halves(graph)
        # The split really does tear the attack group apart...
        per_half = [
            {u for u in map(str, half.users()) if u in ATTACK_USERS}
            for half in halves
        ]
        assert all(0 < len(part) < N_ATTACKERS for part in per_half)
        # ...and neither worker can reassemble it: each fragment is below
        # the k1 core floor, so naive sharding reports a clean graph.
        for half in halves:
            result = RICDDetector(params=PARAMS, max_group_users=None).detect(half)
            assert result.groups == []

    def test_attack_component_survives_among_decoys(self):
        """With other components present the plan is multi-shard, yet the
        straddling component still travels whole."""
        graph = straddling_attack_graph()
        for d in range(6):  # independent organic decoy components
            for u in range(3):
                graph.add_click(f"d{d}:u{u}", f"d{d}:i{u}", 1)
                graph.add_click(f"d{d}:u{u}", f"d{d}:i{(u + 1) % 3}", 1)
        plan = partition_graph(graph, 3)
        assert len(plan) == 3
        owners = [
            index
            for index in range(len(plan))
            if plan.shard_users(index) & ATTACK_USERS
        ]
        assert len(owners) == 1  # never scattered
        assert ATTACK_USERS <= plan.shard_users(owners[0])
        reference = RICDDetector(params=PARAMS, max_group_users=None).detect(graph)
        sharded = detect_sharded(
            RICDDetector(params=PARAMS, max_group_users=None, shards=3), graph
        )
        assert canonical_result(sharded) == canonical_result(reference)
        assert canonical_groups(sharded.groups) == {
            (ATTACK_USERS, ATTACK_ITEMS, frozenset({"H"}))
        }


# ----------------------------------------------------------------------
# Attack-zoo metamorphic grid (ISSUE 8): every family, static and
# adaptive, is invariant under shard count and under user/item
# relabeling.  A family whose detection outcome moved with the shard
# layout or the id universe would leak iteration order into decisions.
# ----------------------------------------------------------------------

FAMILY_GRID = [
    pytest.param(family, adaptive, id=f"{family}-{'adaptive' if adaptive else 'static'}")
    for family in family_names()
    for adaptive in (False, True)
]
GRID_PARAMS = RICDParams(k1=4, k2=4)
GRID_BUDGET = 500

_ATTACKED: dict = {}
_GRID_REFERENCES: dict = {}


def _attacked_graph(family: str, adaptive: bool) -> BipartiteGraph:
    key = (family, adaptive)
    if key not in _ATTACKED:
        graph = clean_marketplace("tiny", seed=5)
        plan = plan_family(graph, family, budget=GRID_BUDGET, seed=2, adaptive=adaptive)
        plan.apply(graph)
        _ATTACKED[key] = graph
    return _ATTACKED[key]


def _grid_reference(family: str, adaptive: bool):
    key = (family, adaptive)
    if key not in _GRID_REFERENCES:
        _GRID_REFERENCES[key] = RICDDetector(
            params=GRID_PARAMS, max_group_users=None
        ).detect(_attacked_graph(family, adaptive))
    return _GRID_REFERENCES[key]


def _relabel_maps(graph: BipartiteGraph, seed: int):
    """Seeded bijections that scramble the lexicographic node order."""
    rng = np.random.default_rng(seed)
    users = sorted(map(str, graph.users()))
    items = sorted(map(str, graph.items()))
    user_map = {
        user: f"RU{index}" for user, index in zip(users, rng.permutation(len(users)))
    }
    item_map = {
        item: f"RI{index}" for item, index in zip(items, rng.permutation(len(items)))
    }
    return user_map, item_map


def _relabel_graph(graph: BipartiteGraph, user_map, item_map) -> BipartiteGraph:
    out = BipartiteGraph()
    for user in graph.users():
        out.add_user(user_map[str(user)])
    for item in graph.items():
        out.add_item(item_map[str(item)])
    for user in graph.users():
        for item, clicks in graph.user_neighbors(user).items():
            out.add_click(user_map[str(user)], item_map[str(item)], clicks)
    return out


def _mapped_result_key(result, user_map, item_map):
    """``canonical_result`` pushed through the relabeling bijections."""
    return (
        sorted(user_map[str(u)] for u in result.suspicious_users),
        sorted(item_map[str(i)] for i in result.suspicious_items),
        {
            (
                frozenset(user_map[str(u)] for u in group.users),
                frozenset(item_map[str(i)] for i in group.items),
                frozenset(item_map[str(i)] for i in group.hot_items),
            )
            for group in result.groups
        },
        sorted((user_map[str(u)], score) for u, score in result.user_scores.items()),
        sorted((item_map[str(i)], score) for i, score in result.item_scores.items()),
        result.feedback_rounds,
    )


def _identity_maps(graph: BipartiteGraph):
    identity = {str(node): str(node) for node in list(graph.users()) + list(graph.items())}
    return identity


class TestFamilyGridShardInvariance:
    @pytest.mark.parametrize("family, adaptive", FAMILY_GRID)
    @pytest.mark.parametrize("shards", (2, 5))
    def test_sharding_is_invisible_on_every_family(self, family, adaptive, shards):
        graph = _attacked_graph(family, adaptive)
        detector = RICDDetector(
            params=GRID_PARAMS, max_group_users=None, shards=shards
        )
        assert canonical_result(detect_sharded(detector, graph)) == canonical_result(
            _grid_reference(family, adaptive)
        )

    def test_grid_is_not_vacuous(self):
        """At least the overt paper-style cells actually detect something,
        so the invariances above compare non-empty outputs."""
        flagged_families = [
            family
            for family in family_names()
            if _grid_reference(family, False).groups
        ]
        assert flagged_families, "every static cell detected nothing"


class TestFamilyGridRelabelingInvariance:
    @pytest.mark.parametrize("family, adaptive", FAMILY_GRID)
    def test_detection_commutes_with_relabeling(self, family, adaptive):
        graph = _attacked_graph(family, adaptive)
        user_map, item_map = _relabel_maps(graph, seed=17)
        relabeled = _relabel_graph(graph, user_map, item_map)
        relabeled_result = RICDDetector(
            params=GRID_PARAMS, max_group_users=None
        ).detect(relabeled)
        identity = _identity_maps(relabeled)
        assert _mapped_result_key(relabeled_result, identity, identity) == (
            _mapped_result_key(_grid_reference(family, adaptive), user_map, item_map)
        )

    @pytest.mark.parametrize("family, adaptive", FAMILY_GRID)
    def test_relabeled_graph_still_shard_invariant(self, family, adaptive):
        graph = _attacked_graph(family, adaptive)
        user_map, item_map = _relabel_maps(graph, seed=23)
        relabeled = _relabel_graph(graph, user_map, item_map)
        unsharded = RICDDetector(params=GRID_PARAMS, max_group_users=None).detect(
            relabeled
        )
        sharded = detect_sharded(
            RICDDetector(params=GRID_PARAMS, max_group_users=None, shards=3),
            relabeled,
        )
        assert canonical_result(sharded) == canonical_result(unsharded)
