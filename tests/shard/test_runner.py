"""Orchestrator-level tests: merge determinism, tracing, pool recovery.

The metamorphic suite pins *what* the sharded pipeline computes; this
module pins *how* the orchestrator behaves around it — the canonical
merge order, seeded detection, observability wiring, constructor
validation, and the broken-process-pool fallback shared with the
evaluation harness.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random

import pytest

from repro import obs
from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.graph import BipartiteGraph
from repro.shard.runner import detect_sharded, group_sort_key, merge_groups

from .canon import canonical_result
from .test_thresholds import cold_attack_marketplace

PARAMS = RICDParams(k1=3, k2=3, t_click=5.0)


def _detector(**overrides) -> RICDDetector:
    keywords = {"params": PARAMS, "max_group_users": None}
    keywords.update(overrides)
    return RICDDetector(**keywords)


class TestMergeGroups:
    def test_merge_is_invariant_under_shard_order(self):
        graph, _ = cold_attack_marketplace(0)
        result = detect_sharded(_detector(shards=4), graph)
        groups = list(result.groups)
        assert groups  # non-vacuous
        rng = random.Random(7)
        for _ in range(10):
            buckets = [[] for _ in range(4)]
            for group in groups:
                buckets[rng.randrange(4)].append(group)
            rng.shuffle(buckets)
            assert merge_groups(buckets) == groups

    def test_sort_key_is_a_total_order_on_distinct_groups(self):
        graph, _ = cold_attack_marketplace(5)
        groups = detect_sharded(_detector(shards=3), graph).groups
        keys = [group_sort_key(group) for group in groups]
        assert len(set(keys)) == len(keys)
        assert keys == sorted(keys)

    def test_merge_of_empty_shards(self):
        assert merge_groups([[], [], []]) == []


class TestSeededDetection:
    def test_seeded_sharded_matches_seeded_unsharded(self):
        graph, n_attackers = cold_attack_marketplace(1)
        seeds = [f"cold:a{a}" for a in range(n_attackers)]
        reference = _detector().detect(graph, seed_users=seeds)
        sharded = detect_sharded(_detector(shards=3), graph, seed_users=seeds)
        assert canonical_result(sharded) == canonical_result(reference)
        assert set(seeds) <= set(map(str, sharded.suspicious_users))

    def test_empty_graph(self):
        result = detect_sharded(_detector(shards=4), BipartiteGraph())
        assert result.groups == [] and result.suspicious_users == set()


class TestValidation:
    @pytest.mark.parametrize("field", ["shards", "shard_jobs"])
    @pytest.mark.parametrize("value", [0, -2])
    def test_constructor_rejects_non_positive(self, field, value):
        with pytest.raises(ValueError, match=field):
            RICDDetector(params=PARAMS, **{field: value})


class TestShardTracing:
    def test_serial_shards_nest_under_the_detector_span(self):
        graph, _ = cold_attack_marketplace(2)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            _detector(shards=3).detect(graph)
        spans = set(recorder.spans)
        assert "detector.RICD.thresholds" in spans
        assert "detector.RICD.partition" in spans
        assert "detector.RICD.shard.0.extraction" in spans
        assert "detector.RICD.identification" in spans
        assert recorder.gauges["shard.effective"] >= 2

    def test_parallel_shards_merge_worker_traces(self):
        graph, _ = cold_attack_marketplace(2)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            result = _detector(shards=3, shard_jobs=2).detect(graph)
        serial = _detector(shards=3).detect(graph)
        assert canonical_result(result) == canonical_result(serial)
        # Worker-side spans come back flat (merged like suite workers)...
        assert any(path.startswith("shard.") for path in recorder.spans)
        # ...and the pool accounting matches the plan's shard count.
        worker_tasks = {
            name: value
            for name, value in recorder.counters.items()
            if name.startswith("parallel.worker")
        }
        assert sum(worker_tasks.values()) == recorder.gauges["shard.effective"]


@dataclasses.dataclass
class _ShardWorkerKiller(RICDDetector):
    """Hard-kills any process-pool worker it runs modules in.

    ``os._exit`` (not an exception) reproduces the OOM-killer/segfault
    failure mode that breaks the whole ProcessPoolExecutor.  In the
    parent — where the serial recovery path runs — there is no parent
    process, so modules run normally.
    """

    def _run_modules(self, graph, params, screening, timer):
        if multiprocessing.parent_process() is not None:
            os._exit(3)
        return super()._run_modules(graph, params, screening, timer)


class TestBrokenPoolRecovery:
    def test_dead_shard_workers_recovered_serially(self):
        graph, _ = cold_attack_marketplace(4)
        killer = _ShardWorkerKiller(
            params=PARAMS, max_group_users=None, shards=3, shard_jobs=2
        )
        recorder = obs.Recorder()
        with obs.recording(recorder):
            recovered = killer.detect(graph)
        reference = _detector(shards=3).detect(graph)
        assert canonical_result(recovered) == canonical_result(reference)
        assert recorder.counters["parallel.broken_pool_recoveries"] >= 1
