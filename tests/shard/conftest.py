"""Package marker for the shard suite; shared helpers live in ``canon.py``."""
