"""Multi-region stores: global thresholds, canonical merge, warm restart.

Extends the shard layer's threshold-globality contract to the
one-store-per-region layout: a cold region must inherit marketplace-level
thresholds from the union graph, and the merged verdict must be
reconstructible from the region stores alone after a restart.
"""

import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import tiny_scenario
from repro.errors import StoreError
from repro.graph import BipartiteGraph
from repro.shard import RegionalStores, detect_regions

from .canon import canonical_result

pytestmark = pytest.mark.servertest

PARAMS = RICDParams(k1=4, k2=4)


@pytest.fixture(scope="module")
def attack_graph():
    return tiny_scenario().graph


@pytest.fixture(scope="module")
def cold_graph():
    """A quiet region: light organic traffic, nothing hot, no attack."""
    graph = BipartiteGraph()
    for u in range(25):
        for i in range(3):
            graph.add_click(f"eu_u{u}", f"eu_i{(u + i) % 10}", 1)
    return graph


def edges(graph):
    return [(user, item, clicks) for user, item, clicks in graph.edges()]


@pytest.fixture()
def layout(tmp_path, attack_graph, cold_graph):
    layout = RegionalStores.open_or_create(tmp_path / "regions")
    layout.ingest("na", edges(attack_graph))
    layout.ingest("eu", edges(cold_graph))
    return layout


class TestLayout:
    def test_regions_discovered_and_sorted(self, layout):
        assert layout.regions() == ("eu", "na")

    def test_invalid_region_names_rejected(self, layout):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(StoreError):
                layout.region_store(bad)

    def test_ingest_bootstraps_then_appends_deltas(self, layout):
        store = layout.region_store("na")
        assert "snapshot" in store.entry(1)
        version = layout.ingest("na", [("late", "i0", 2)])
        assert version == 2
        assert "delta" in store.entry(2)

    def test_empty_checkpoint_raises(self, tmp_path):
        empty = RegionalStores.open_or_create(tmp_path / "none")
        with pytest.raises(StoreError):
            empty.checkpoint(params=PARAMS)


class TestGlobalThresholds:
    def test_every_region_persists_the_union_thresholds(self, layout):
        merged, reports = layout.checkpoint(params=PARAMS, engine="reference")
        resolved_by_region = {}
        for region in layout.regions():
            _, resolved, _ = layout.region_store(region).load_thresholds()
            resolved_by_region[region] = (resolved.t_hot, resolved.t_click)
        assert len(set(resolved_by_region.values())) == 1, resolved_by_region

    def test_cold_region_does_not_lower_the_bar(self, layout, attack_graph, cold_graph):
        """A quiet region detecting with local thresholds would flag its
        organic traffic; with union thresholds it stays clean."""
        merged, reports = layout.checkpoint(params=PARAMS, engine="reference")
        by_region = {report.region: report for report in reports}
        assert by_region["na"].suspicious_users > 0
        assert by_region["eu"].suspicious_users == 0
        # Everything merged is attributable to the attacked region.
        na_result = layout.region_store("na").load_result()
        assert {str(u) for u in merged.suspicious_users} == {
            str(u) for u in na_result.suspicious_users
        }

    def test_single_region_equals_plain_detection(self, tmp_path, attack_graph):
        layout = RegionalStores.open_or_create(tmp_path / "solo")
        layout.ingest("only", edges(attack_graph))
        merged, _ = layout.checkpoint(params=PARAMS, engine="reference")
        loaded = layout.region_store("only").load_graph()
        expected = RICDDetector(params=PARAMS, engine="reference").detect(loaded)
        assert canonical_result(merged) == canonical_result(expected)


class TestMergeAndRestart:
    def test_merge_is_order_free(self, attack_graph, cold_graph):
        forward, _ = detect_regions(
            {"na": attack_graph, "eu": cold_graph}, params=PARAMS, engine="reference"
        )
        backward, _ = detect_regions(
            {"eu": cold_graph, "na": attack_graph}, params=PARAMS, engine="reference"
        )
        assert canonical_result(forward) == canonical_result(backward)

    def test_restart_reconstructs_the_merged_verdict(self, tmp_path, layout):
        merged, _ = layout.checkpoint(params=PARAMS, engine="reference")
        reopened = RegionalStores(layout.root)
        assert reopened.regions() == layout.regions()
        again = reopened.merged_result()
        assert {str(u) for u in again.suspicious_users} == {
            str(u) for u in merged.suspicious_users
        }
        assert {str(i) for i in again.suspicious_items} == {
            str(i) for i in merged.suspicious_items
        }
        assert len(again.groups) == len(merged.groups)

    def test_merged_result_empty_before_any_checkpoint(self, layout):
        assert layout.merged_result().suspicious_users == set()

    def test_degraded_provenance_is_region_tagged(self, attack_graph):
        from repro.core.groups import DetectionResult

        from repro.shard.regions import _merge_results

        degraded = DetectionResult(degraded=True, degradations=("shard.1",), stale=True)
        clean = DetectionResult()
        merged = _merge_results({"na": degraded, "eu": clean})
        assert merged.degraded and merged.stale
        assert merged.degradations == ("na:shard.1",)
