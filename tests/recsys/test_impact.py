"""Tests for attack-impact measurement and fake-click removal."""

import pytest

from repro.datagen import AttackConfig, MarketplaceConfig, generate_scenario
from repro.recsys import attack_impact, exposure_rank, remove_fake_clicks


@pytest.fixture(scope="module")
def attacked():
    return generate_scenario(
        MarketplaceConfig(
            n_users=1200, n_items=250, n_cohorts=0, n_superfans=0, n_swarms=0, seed=6
        ),
        AttackConfig(
            n_groups=1,
            workers_per_group=(10, 10),
            targets_per_group=(6, 6),
            hot_items_per_group=(2, 2),
            target_clicks=(12, 14),
            density=1.0,
            sloppy_fraction=0.0,
            hijacked_user_fraction=0.0,
            worker_reuse_fraction=0.0,
            seed=7,
        ),
    )


class TestRemoveFakeClicks:
    def test_restores_click_volume(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        assert (
            cleaned.total_clicks
            == attacked.graph.total_clicks - group.fake_click_volume
        )

    def test_target_edges_removed(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        worker = group.workers[0]
        for target in group.target_items:
            assert not cleaned.has_edge(worker, target)

    def test_organic_edges_untouched(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        fake_pairs = {(u, i) for u, i, _c in group.fake_edges}
        for user, item, clicks in attacked.graph.edges():
            if (user, item) not in fake_pairs:
                assert cleaned.get_click(user, item) == clicks

    def test_original_untouched(self, attacked):
        before = attacked.graph.copy()
        remove_fake_clicks(attacked.graph, attacked.truth.groups)
        assert attacked.graph == before


class TestAttackImpact:
    def test_attack_lifts_scores_and_exposure(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        impact = attack_impact(cleaned, attacked.graph, group, k=10)
        assert impact.mean_score_after > impact.mean_score_before
        assert impact.targets_in_top_k_after >= impact.targets_in_top_k_before
        assert impact.score_lift > 1.0

    def test_exposure_rank_improves(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        hot = group.hot_items[0]
        target = group.target_items[0]
        rank_before = exposure_rank(cleaned, hot, target)
        rank_after = exposure_rank(attacked.graph, hot, target)
        assert rank_after is not None
        if rank_before is not None:
            assert rank_after <= rank_before

    def test_invalid_k(self, attacked):
        group = attacked.truth.groups[0]
        with pytest.raises(ValueError):
            attack_impact(attacked.graph, attacked.graph, group, k=0)

    def test_zero_baseline_lift_is_inf(self, attacked):
        group = attacked.truth.groups[0]
        cleaned = remove_fake_clicks(attacked.graph, [group])
        impact = attack_impact(cleaned, attacked.graph, group)
        if impact.mean_score_before == 0.0:
            assert impact.score_lift == float("inf")
