"""Tests for the Fig. 10 traffic simulation."""

import pytest

from repro.errors import DataGenError
from repro.recsys import TrafficModel, simulate_case_study


class TestModelValidation:
    def test_defaults_valid(self):
        TrafficModel()

    def test_day_ordering_enforced(self):
        with pytest.raises(DataGenError):
            TrafficModel(attack_start_day=8, campaign_day=6)
        with pytest.raises(DataGenError):
            TrafficModel(delist_day=20, total_days=14)

    def test_negative_volumes_rejected(self):
        with pytest.raises(DataGenError):
            TrafficModel(baseline_organic=-1)
        with pytest.raises(DataGenError):
            TrafficModel(recommendation_gain=-0.5)
        with pytest.raises(DataGenError):
            TrafficModel(noise=1.0)


class TestTimelineShape:
    @pytest.fixture(scope="class")
    def timeline(self):
        return simulate_case_study(TrafficModel(noise=0.0))

    def test_length_and_days(self, timeline):
        assert timeline.days == list(range(1, 15))
        assert len(timeline.fake_traffic) == 14

    def test_no_fake_before_attack(self, timeline):
        model = TrafficModel()
        for day, fake in zip(timeline.days, timeline.fake_traffic):
            if day < model.attack_start_day:
                assert fake == 0.0

    def test_fake_stops_at_detection(self, timeline):
        model = TrafficModel()
        for day, fake in zip(timeline.days, timeline.fake_traffic):
            if day >= model.detection_day:
                assert fake == 0.0

    def test_fake_ramps_to_plateau(self, timeline):
        model = TrafficModel()
        window = [
            fake
            for day, fake in zip(timeline.days, timeline.fake_traffic)
            if model.attack_start_day <= day < model.detection_day
        ]
        assert window[0] < window[-1] or window[0] == model.peak_fake
        assert max(window) == pytest.approx(model.peak_fake)

    def test_organic_grows_during_campaign(self, timeline):
        """The paper: normal traffic 'grew rapidly from Day 6 to Day 9'."""
        model = TrafficModel()
        organic = dict(zip(timeline.days, timeline.organic_traffic))
        assert organic[model.detection_day - 1] > 2 * model.baseline_organic

    def test_cleanup_restores_baseline(self, timeline):
        model = TrafficModel()
        organic = dict(zip(timeline.days, timeline.organic_traffic))
        for day in range(model.detection_day, model.delist_day):
            assert organic[day] == pytest.approx(model.baseline_organic)

    def test_delisting_zeroes_traffic(self, timeline):
        model = TrafficModel()
        for day, total in zip(timeline.days, timeline.total_traffic):
            if day >= model.delist_day:
                assert total == 0.0

    def test_peak_organic_before_detection(self, timeline):
        model = TrafficModel()
        assert timeline.peak_organic_day() < model.detection_day

    def test_events_labelled(self, timeline):
        model = TrafficModel()
        assert model.campaign_day in timeline.events
        assert model.detection_day in timeline.events
        assert model.delist_day in timeline.events

    def test_noise_determinism(self):
        a = simulate_case_study(TrafficModel(noise=0.1, seed=5))
        b = simulate_case_study(TrafficModel(noise=0.1, seed=5))
        assert a.organic_traffic == b.organic_traffic
