"""Tests for the I2I recommender engine."""

import pytest

from repro.graph import BipartiteGraph
from repro.recsys import I2IRecommender


@pytest.fixture()
def rec_graph():
    graph = BipartiteGraph()
    graph.add_click("a", "hot", 1)
    graph.add_click("a", "x", 6)
    graph.add_click("b", "hot", 1)
    graph.add_click("b", "x", 2)
    graph.add_click("b", "y", 2)
    graph.add_click("c", "z", 50)  # not co-clicked with hot
    return graph


class TestRecommend:
    def test_ranked_by_score(self, rec_graph):
        recs = I2IRecommender(rec_graph).recommend("hot", k=5)
        assert [r.item for r in recs] == ["x", "y"]
        assert recs[0].rank == 1
        assert recs[0].score == pytest.approx(0.8)
        assert recs[1].score == pytest.approx(0.2)

    def test_k_truncates(self, rec_graph):
        assert len(I2IRecommender(rec_graph).recommend("hot", k=1)) == 1

    def test_k_zero(self, rec_graph):
        assert I2IRecommender(rec_graph).recommend("hot", k=0) == []

    def test_negative_k_rejected(self, rec_graph):
        with pytest.raises(ValueError):
            I2IRecommender(rec_graph).recommend("hot", k=-1)

    def test_anchor_without_co_clicks(self, rec_graph):
        assert I2IRecommender(rec_graph).recommend("z", k=3) == []

    def test_deterministic_tie_break(self):
        graph = BipartiteGraph()
        graph.add_click("u", "hot", 1)
        graph.add_click("u", "b", 2)
        graph.add_click("u", "a", 2)
        recs = I2IRecommender(graph).recommend("hot", k=2)
        assert [r.item for r in recs] == ["a", "b"]  # equal scores, id order


class TestLookups:
    def test_rank_of(self, rec_graph):
        engine = I2IRecommender(rec_graph)
        assert engine.rank_of("hot", "x") == 1
        assert engine.rank_of("hot", "y") == 2
        assert engine.rank_of("hot", "z") is None

    def test_score_of(self, rec_graph):
        engine = I2IRecommender(rec_graph)
        assert engine.score_of("hot", "x") == pytest.approx(0.8)
        assert engine.score_of("hot", "z") == 0.0


class TestCache:
    def test_cache_serves_stale_until_invalidated(self, rec_graph):
        engine = I2IRecommender(rec_graph)
        assert engine.score_of("hot", "y") == pytest.approx(0.2)
        rec_graph.add_click("b", "y", 6)  # y now dominates
        assert engine.score_of("hot", "y") == pytest.approx(0.2)  # stale
        engine.invalidate("hot")
        assert engine.score_of("hot", "y") > 0.4

    def test_invalidate_all(self, rec_graph):
        engine = I2IRecommender(rec_graph)
        engine.recommend("hot")
        rec_graph.add_click("a", "x", 100)
        engine.invalidate()
        assert engine.score_of("hot", "x") > 0.9
