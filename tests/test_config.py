"""Tests for the parameter containers."""

import pytest

from repro.config import DEFAULT_PARAMS, FeedbackPolicy, RICDParams, ScreeningParams
from repro.errors import ConfigError


class TestRICDParams:
    def test_defaults_match_paper(self):
        assert (DEFAULT_PARAMS.k1, DEFAULT_PARAMS.k2) == (10, 10)
        assert DEFAULT_PARAMS.alpha == 1.0
        assert DEFAULT_PARAMS.t_hot is None  # data-derived
        assert DEFAULT_PARAMS.t_click is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k1": 0},
            {"k2": -1},
            {"k1": 2.5},
            {"alpha": 0.0},
            {"alpha": 1.1},
            {"t_hot": 0},
            {"t_click": -3},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RICDParams(**kwargs)

    def test_config_error_carries_parameter(self):
        with pytest.raises(ConfigError) as excinfo:
            RICDParams(alpha=2.0)
        assert excinfo.value.parameter == "alpha"

    def test_degree_floors_use_guarded_ceil(self):
        params = RICDParams(k1=10, k2=10, alpha=0.7)
        # 0.7 * 10 is 7.000000000000001 in binary floats; the floor must be 7.
        assert params.user_degree_floor == 7
        assert params.item_degree_floor == 7

    def test_degree_floors_alpha_one(self):
        params = RICDParams(k1=4, k2=9, alpha=1.0)
        assert params.user_degree_floor == 9
        assert params.item_degree_floor == 4

    def test_replace_validates(self):
        params = RICDParams()
        with pytest.raises(ConfigError):
            params.replace(alpha=5.0)
        assert params.replace(k1=3).k1 == 3
        assert params.k1 == 10  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RICDParams().k1 = 99  # type: ignore[misc]


class TestScreeningParams:
    def test_defaults(self):
        params = ScreeningParams()
        assert params.hot_click_cap == 4.0  # Section IV-A: "< 4"
        assert 0 < params.min_overlap <= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hot_click_cap": 0},
            {"disguise_ratio": 0.5},
            {"min_overlap": 0.0},
            {"min_overlap": 1.5},
            {"min_users": 0},
            {"min_items": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ScreeningParams(**kwargs)

    def test_replace(self):
        assert ScreeningParams().replace(min_users=5).min_users == 5


class TestFeedbackPolicy:
    def test_defaults_valid(self):
        FeedbackPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"expectation": -1},
            {"max_rounds": -1},
            {"t_click_step": -1.0},
            {"alpha_step": -0.1},
            {"alpha_floor": 0.0},
            {"alpha_floor": 1.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FeedbackPolicy(**kwargs)
