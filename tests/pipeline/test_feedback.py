"""Unit tests for the single Fig. 7 feedback-loop implementation."""

import pytest

from repro.config import FeedbackPolicy, RICDParams, ScreeningParams
from repro.core.groups import SuspiciousGroup
from repro.errors import FeedbackExhaustedError
from repro.graph import BipartiteGraph
from repro.pipeline import FeedbackDriver, PipelineContext


def make_ctx(t_click=22.0):
    return PipelineContext(
        graph=BipartiteGraph(),
        params=RICDParams(k1=4, k2=4, t_hot=50.0, t_click=t_click),
        screening=ScreeningParams(),
    )


def group_of(n):
    """A group with ``n`` users and ``n`` items (output size ``2 n``)."""
    return SuspiciousGroup(
        users={f"u{i}" for i in range(n)}, items={f"i{j}" for j in range(n)}
    )


class TestFeedbackDriver:
    def test_relaxes_until_expectation_met(self):
        # t_click walks 22 -> 16 -> 10; the round runner "finds" a group
        # once the threshold is low enough, like a real relaxation would.
        policy = FeedbackPolicy(
            expectation=6, max_rounds=5, t_click_step=6.0, alpha_step=0.0
        )
        ctx = make_ctx(t_click=22.0)

        def run_round(context):
            return [group_of(3)] if context.params.t_click <= 10.0 else []

        screened = FeedbackDriver(policy).drive(ctx, [], run_round)
        assert ctx.feedback_rounds == 2
        assert ctx.params.t_click == 10.0
        assert [len(group.users) for group in screened] == [3]

    def test_zero_rounds_when_round_zero_suffices(self):
        policy = FeedbackPolicy(
            expectation=4, max_rounds=5, t_click_step=6.0, alpha_step=0.0
        )
        ctx = make_ctx()
        initial = [group_of(2)]

        def run_round(context):  # pragma: no cover - must never run
            raise AssertionError("round runner called despite met expectation")

        screened = FeedbackDriver(policy).drive(ctx, initial, run_round)
        assert screened is initial
        assert ctx.feedback_rounds == 0

    def test_strict_exhaustion_raises(self):
        policy = FeedbackPolicy(
            expectation=10_000, max_rounds=2, t_click_step=1.0, alpha_step=0.0
        )
        ctx = make_ctx()
        with pytest.raises(FeedbackExhaustedError):
            FeedbackDriver(policy, strict=True).drive(ctx, [], lambda context: [])

    def test_lenient_exhaustion_returns_best_round(self):
        # Rounds produce shrinking outputs; the driver must hand back the
        # largest output seen, not the last.
        policy = FeedbackPolicy(
            expectation=10_000, max_rounds=3, t_click_step=1.0, alpha_step=0.0
        )
        ctx = make_ctx()
        sizes = iter([4, 2, 1])

        def run_round(context):
            return [group_of(next(sizes))]

        screened = FeedbackDriver(policy).drive(ctx, [], run_round)
        assert ctx.feedback_rounds == 3
        assert [len(group.users) for group in screened] == [4]

    def test_relaxed_parameters_land_on_the_context(self):
        # Every round rewrites ctx.params/ctx.screening, which is how a
        # sharded run's shards all see the same relaxed values.
        policy = FeedbackPolicy(
            expectation=10_000, max_rounds=2, t_click_step=5.0, alpha_step=0.0
        )
        ctx = make_ctx(t_click=20.0)
        seen = []

        def run_round(context):
            seen.append(context.params.t_click)
            return []

        FeedbackDriver(policy).drive(ctx, [], run_round)
        assert seen == [15.0, 10.0]
        assert ctx.params.t_click == 10.0
