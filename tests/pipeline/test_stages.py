"""Unit tests for the pipeline stage objects."""

import pytest

from repro import obs
from repro.config import RICDParams, ScreeningParams
from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph
from repro.pipeline import (
    Extraction,
    Identification,
    PipelineContext,
    ResolveThresholds,
    Screening,
    SeedExpansion,
    SizeCaps,
    Stage,
    shared_thresholds,
)

#: Explicit thresholds used wherever derivation is not the thing under test.
FIXED = RICDParams(k1=5, k2=5, t_hot=60.0, t_click=12.0)


def ctx_for(graph, **overrides):
    params = overrides.pop("params", FIXED)
    screening = overrides.pop("screening", ScreeningParams(min_users=2, min_items=2))
    return PipelineContext(graph=graph, params=params, screening=screening, **overrides)


def user_sets(groups):
    return {frozenset(map(str, group.users)) for group in groups}


class TestStageProtocol:
    def test_concrete_stages_satisfy_protocol(self):
        stages = (
            ResolveThresholds(),
            SeedExpansion(),
            Extraction(),
            Screening(),
            SizeCaps(),
            Identification(),
        )
        assert all(isinstance(stage, Stage) for stage in stages)

    def test_stage_names_match_their_spans(self):
        names = [
            ResolveThresholds.name,
            SeedExpansion.name,
            Extraction.name,
            Screening.name,
            SizeCaps.name,
            Identification.name,
        ]
        assert names == [
            "thresholds",
            "seed_expansion",
            "extraction",
            "screening",
            "size_caps",
            "identification",
        ]


class TestResolveThresholds:
    def test_derives_missing_thresholds(self, small):
        resolved = ResolveThresholds().resolve(small.graph, RICDParams())
        assert resolved.t_hot == pytest.approx(pareto_hot_threshold(small.graph))
        assert resolved.t_click == pytest.approx(t_click_from_graph(small.graph))

    def test_explicit_thresholds_short_circuit(self, small):
        params = RICDParams(t_hot=9.0, t_click=3.0)
        assert ResolveThresholds().resolve(small.graph, params) is params

    def test_memoized_identity_and_counters(self, small):
        stage = ResolveThresholds()
        with obs.recording(obs.Recorder()) as recorder:
            first = stage.resolve(small.graph, RICDParams())
            second = stage.resolve(small.graph, RICDParams())
        assert second is first
        assert recorder.counters["detect.threshold_cache_misses"] == 1
        assert recorder.counters["detect.threshold_cache_hits"] == 1

    def test_mutation_invalidates_memo(self, small):
        stage = ResolveThresholds()
        graph = small.graph.copy()
        first = stage.resolve(graph, RICDParams())
        for n in range(40):
            graph.add_click(f"stage_u{n}", "stage_hot", 500)
        assert stage.resolve(graph, RICDParams()) is not first

    def test_custom_derive_hooks_are_used(self, small):
        stage = ResolveThresholds(
            derive_t_hot=lambda graph: 111.0, derive_t_click=lambda graph: 7.0
        )
        resolved = stage.resolve(small.graph, RICDParams())
        assert resolved.t_hot == 111.0
        assert resolved.t_click == 7.0

    def test_shared_resolver_is_process_wide(self):
        assert shared_thresholds() is shared_thresholds()

    def test_run_writes_resolved_params_to_context(self, small):
        ctx = ctx_for(small.graph, params=RICDParams(k1=5, k2=5))
        ResolveThresholds().run(ctx)
        assert ctx.params.t_hot is not None
        assert ctx.params.t_click is not None


class TestSeedExpansion:
    def test_no_seeds_installs_full_graph(self, small):
        ctx = ctx_for(small.graph)
        SeedExpansion().run(ctx)
        assert ctx.working is small.graph
        assert "detection" in ctx.timer.durations

    def test_seeds_restrict_the_working_graph(self, small):
        seed = sorted(map(str, small.graph.users()))[0]
        ctx = ctx_for(small.graph, seed_users=(seed,))
        SeedExpansion().run(ctx)
        assert ctx.working is not small.graph
        assert ctx.working.has_user(seed)
        assert ctx.working.num_users <= small.graph.num_users


class TestExtraction:
    def test_reference_engine_matches_extract_groups(self, small):
        from repro.core.extraction import extract_groups

        ctx = ctx_for(small.graph)
        Extraction().run(ctx)
        assert user_sets(ctx.groups) == user_sets(extract_groups(small.graph, FIXED))
        assert "detection" in ctx.timer.durations

    def test_engine_choice_recorded_as_gauge(self, small):
        with obs.recording(obs.Recorder()) as recorder:
            Extraction().extract(small.graph, FIXED)
        assert recorder.gauges["detect.engine"] == "reference"

    def test_sparse_without_scipy_raises(self, small, monkeypatch):
        from repro.core import extraction_sparse

        monkeypatch.setattr(extraction_sparse, "sparse_available", lambda: False)
        with pytest.raises(RuntimeError, match="scipy"):
            Extraction(engine="sparse").extract(small.graph, FIXED)


class TestScreeningStage:
    def _extracted(self, small):
        ctx = ctx_for(small.graph)
        ResolveThresholds().run(ctx)
        Extraction().run(ctx)
        return ctx

    def test_disabled_screening_passes_groups_through(self, small):
        ctx = self._extracted(small)
        before = list(ctx.groups)
        Screening(enabled=False).run(ctx)
        assert ctx.groups == before
        # The span/timing still fires so variant traces stay comparable.
        assert "screening" in ctx.timer.durations

    def test_enabled_screening_matches_screen_groups(self, small):
        from repro.core.screening import screen_groups

        ctx = self._extracted(small)
        expected = screen_groups(
            small.graph,
            [group.copy() for group in ctx.groups],
            t_hot=ctx.params.t_hot,
            t_click=ctx.params.t_click,
            params=ctx.screening,
        )
        Screening().run(ctx)
        assert user_sets(ctx.groups) == user_sets(expected)


class TestSizeCaps:
    def test_caps_drop_oversized_groups(self, small):
        ctx = ctx_for(small.graph)
        ResolveThresholds().run(ctx)
        Extraction().run(ctx)
        assert ctx.groups  # non-vacuous
        SizeCaps(max_users=0).run(ctx)
        assert ctx.groups == []

    def test_disabled_caps_are_a_noop(self, small):
        ctx = ctx_for(small.graph)
        Extraction().run(ctx)
        before = list(ctx.groups)
        SizeCaps(max_users=0, enabled=False).run(ctx)
        assert ctx.groups == before

    def test_unset_caps_are_a_noop(self, small):
        ctx = ctx_for(small.graph)
        Extraction().run(ctx)
        before = list(ctx.groups)
        SizeCaps().run(ctx)
        assert ctx.groups == before


class TestIdentification:
    def test_assembles_scored_result(self, small):
        ctx = ctx_for(small.graph)
        ResolveThresholds().run(ctx)
        Extraction().run(ctx)
        Screening().run(ctx)
        Identification().run(ctx)
        assert ctx.result is not None
        assert set(ctx.result.user_scores) == ctx.result.suspicious_users
        assert set(ctx.result.item_scores) == ctx.result.suspicious_items
        assert "identification" in ctx.timer.durations
