"""Plan-level tests: the assembled pipeline and its execution strategies."""

from repro import obs
from repro.config import FeedbackPolicy, RICDParams
from repro.core.framework import RICDDetector

from ..shard.canon import canonical_result


def detector(**overrides):
    defaults = dict(params=RICDParams(k1=5, k2=5))
    defaults.update(overrides)
    return RICDDetector(**defaults)


class TestExecutionStrategyEquivalence:
    def test_single_vs_sharded_strategy_identical(self, small):
        single = detector().build_pipeline(sharded=False)
        sharded = detector(shards=3).build_pipeline(sharded=True)
        base = detector()
        left = single.run(small.graph, base.params, base.screening)
        right = sharded.run(small.graph, base.params, base.screening)
        assert canonical_result(left) == canonical_result(right)

    def test_detect_is_the_built_pipeline(self, small):
        d = detector()
        via_detect = d.detect(small.graph)
        via_plan = d.build_pipeline().run(small.graph, d.params, d.screening)
        assert canonical_result(via_detect) == canonical_result(via_plan)

    def test_sharded_detector_detect_uses_sharded_plan(self, small):
        with obs.recording(obs.Recorder()) as recorder:
            detector(shards=3).detect(small.graph)
        assert recorder.gauges["shard.effective"] >= 1
        assert any(".shard." in name for name in recorder.spans)
        assert any(".partition" in name for name in recorder.spans)


class TestFeedbackRoundsCounter:
    """``detect.feedback_rounds`` is emitted unconditionally (satellite)."""

    def test_zero_counter_without_feedback_policy(self, small):
        with obs.recording(obs.Recorder()) as recorder:
            result = detector(feedback=None).detect(small.graph)
        assert result.feedback_rounds == 0
        assert recorder.counters["detect.feedback_rounds"] == 0

    def test_zero_counter_without_feedback_sharded(self, small):
        with obs.recording(obs.Recorder()) as recorder:
            detector(feedback=None, shards=2).detect(small.graph)
        assert recorder.counters["detect.feedback_rounds"] == 0

    def test_counter_matches_rounds_with_feedback(self, small):
        params = RICDParams(k1=5, k2=5, t_click=40.0)
        policy = FeedbackPolicy(
            expectation=5, max_rounds=8, t_click_step=6.0, alpha_step=0.0
        )
        with obs.recording(obs.Recorder()) as recorder:
            result = detector(params=params, feedback=policy).detect(small.graph)
        assert result.feedback_rounds >= 1
        assert recorder.counters["detect.feedback_rounds"] == result.feedback_rounds


class TestTraceShape:
    def test_span_names_unchanged_by_the_refactor(self, small):
        """The pre-pipeline trace contract: same span names, same nesting."""
        with obs.recording(obs.Recorder()) as recorder:
            detector().detect(small.graph)
        report = recorder.report().to_dict()
        spans = set(report["spans"])
        for expected in (
            "detector.RICD",
            "detector.RICD.thresholds",
            "detector.RICD.extraction",
            "detector.RICD.screening",
            "detector.RICD.identification",
        ):
            assert expected in spans, f"missing span {expected}"

    def test_timings_keys_unchanged(self, small):
        result = detector().detect(small.graph)
        assert set(result.timings) == {"detection", "screening", "identification"}
