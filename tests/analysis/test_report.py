"""Tests for the marketplace analysis report."""

from repro.analysis import marketplace_report
from repro.analysis.profiles import NORMAL, SUPERFAN_LIKE, WORKER_LIKE
from repro.graph import BipartiteGraph


class TestMarketplaceReport:
    def test_counts_partition_users(self, small):
        report = marketplace_report(small.graph)
        assert sum(report.triage_counts.values()) == small.graph.num_users
        assert set(report.triage_counts) == {WORKER_LIKE, SUPERFAN_LIKE, NORMAL}

    def test_rough_screen_is_over_inclusive(self, small):
        """Like the paper's 7% figure: the triage flags more than the truth."""
        report = marketplace_report(small.graph)
        diligent_workers = {
            worker
            for group in small.truth.groups
            for worker in group.workers
            if any(
                small.graph.get_click(worker, t) >= report.t_click
                for t in group.target_items
            )
        }
        caught = diligent_workers & report.worker_like_users
        assert len(caught) >= 0.7 * max(1, len(diligent_workers))
        # Over-inclusive: organic superfans get flagged too.
        assert len(report.worker_like_users) > len(caught)

    def test_share_bounds(self, small):
        report = marketplace_report(small.graph)
        assert 0.0 < report.suspicious_user_share < 0.2

    def test_render_contains_thresholds(self, small):
        text = marketplace_report(small.graph).render()
        assert "T_hot" in text
        assert "worker-like" in text

    def test_empty_graph(self):
        report = marketplace_report(BipartiteGraph())
        assert report.n_users == 0
        assert report.suspicious_user_share == 0.0
