"""Tests for the behavioural profile primitives."""

import pytest

from repro.analysis import classify_user, item_profile, user_profile
from repro.analysis.profiles import NORMAL, SUPERFAN_LIKE, WORKER_LIKE
from repro.graph import BipartiteGraph

T_HOT = 50
T_CLICK = 10


@pytest.fixture()
def behaviour_graph():
    """One hot item (volume 60), one worker, one superfan, one normal user."""
    graph = BipartiteGraph()
    for index in range(30):
        graph.add_click(f"bg{index}", "hot", 2)
    # Worker: hot once, two heavy targets, one light disguise click.
    graph.add_click("worker", "hot", 1)
    graph.add_click("worker", "t1", 13)
    graph.add_click("worker", "t2", 12)
    graph.add_click("worker", "c1", 1)
    # Superfan: binge on one product, heavy on hot too.
    graph.add_click("fan", "hot", 9)
    graph.add_click("fan", "gadget", 20)
    # Normal: light everywhere.
    graph.add_click("norm", "hot", 3)
    graph.add_click("norm", "t1", 1)
    return graph


class TestUserProfile:
    def test_worker_profile_fields(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "worker", T_HOT, T_CLICK)
        assert profile.degree == 4
        assert profile.hot_degree == 1
        assert profile.hot_clicks == 1
        assert profile.heavy_ordinary_items == 2
        assert profile.max_ordinary_clicks == 13
        assert profile.avg_hot_clicks == 1.0
        assert profile.ordinary_degree == 3
        assert profile.ordinary_click_stdev > 4  # 13/12 vs 1: high dispersion

    def test_normal_profile(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "norm", T_HOT, T_CLICK)
        assert profile.heavy_ordinary_items == 0
        assert profile.avg_hot_clicks == 3.0

    def test_hot_only_user(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "bg0", T_HOT, T_CLICK)
        assert profile.ordinary_degree == 0
        assert profile.max_ordinary_clicks == 0
        assert profile.ordinary_click_stdev == 0.0

    def test_missing_user_raises(self, behaviour_graph):
        with pytest.raises(KeyError):
            user_profile(behaviour_graph, "ghost", T_HOT, T_CLICK)


class TestClassifyUser:
    def test_worker_classified(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "worker", T_HOT, T_CLICK)
        assert classify_user(profile, T_CLICK) == WORKER_LIKE

    def test_superfan_classified(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "fan", T_HOT, T_CLICK)
        assert classify_user(profile, T_CLICK) == SUPERFAN_LIKE

    def test_normal_classified(self, behaviour_graph):
        profile = user_profile(behaviour_graph, "norm", T_HOT, T_CLICK)
        assert classify_user(profile, T_CLICK) == NORMAL

    def test_hot_spammer_is_not_worker(self, behaviour_graph):
        """Heavy ordinary clicks plus heavy hot clicks -> superfan-like."""
        behaviour_graph.add_click("spam", "hot", 20)
        behaviour_graph.add_click("spam", "t1", 15)
        behaviour_graph.add_click("spam", "t2", 15)
        profile = user_profile(behaviour_graph, "spam", T_HOT, T_CLICK)
        assert classify_user(profile, T_CLICK) == SUPERFAN_LIKE

    def test_triage_on_generated_scenario(self, small):
        """Most diligent injected workers triage as worker-like."""
        from repro.core.thresholds import pareto_hot_threshold, t_click_from_graph

        t_hot = pareto_hot_threshold(small.graph)
        t_click = t_click_from_graph(small.graph)
        hits = 0
        diligent = 0
        for group in small.truth.groups:
            for worker in group.workers:
                profile = user_profile(small.graph, worker, t_hot, t_click)
                if profile.heavy_ordinary_items >= 2:
                    diligent += 1
                    if classify_user(profile, t_click) == WORKER_LIKE:
                        hits += 1
        assert diligent > 0
        assert hits >= 0.8 * diligent


class TestItemProfile:
    def test_concentration(self, behaviour_graph):
        profile = item_profile(behaviour_graph, "t1")
        assert profile.user_num == 2
        assert profile.total_clicks == 14
        assert profile.concentration == pytest.approx(7.0)
        assert profile.max_clicks == 13
