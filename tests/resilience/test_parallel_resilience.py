"""Pool-level resilience: retry generations, deadlines, typed failures.

These tests exercise the real :class:`ProcessPoolExecutor` fan-out, so
they are kept few and small — worker faults are staged either through
the injector (inherited by forked workers) or through detectors that
misbehave only inside a pool worker, the same technique as
``tests/eval/test_parallel.py``.
"""

import multiprocessing
import os
import time

import pytest

from repro import obs
from repro.baselines import NaiveDetector
from repro.config import RICDParams
from repro.eval import run_suite
from repro.eval.parallel import (
    MP_CONTEXT_ENV,
    TaskFailure,
    run_shards_parallel,
    run_suite_parallel,
)
from repro.errors import TransientWorkerError
from repro.resilience import RetryPolicy, injecting

from .conftest import canonical, make_detector


class _FirstAttemptKiller:
    """Kills its pool worker once, then behaves; marker file = attempt log.

    Reproduces a genuinely *transient* substrate failure (the retryable
    kind), unlike an injector inherited by every forked worker, which
    re-fires identically in every pool generation.
    """

    name = "FirstAttemptKiller"

    def __init__(self, marker_path):
        self.marker = str(marker_path)

    def detect(self, graph):
        if multiprocessing.parent_process() is not None and not os.path.exists(
            self.marker
        ):
            with open(self.marker, "w") as handle:
                handle.write("died")
            os._exit(3)
        return NaiveDetector().detect(graph)


class _WorkerHanger:
    """Hangs inside a pool worker; instant in the parent's serial fallback."""

    name = "WorkerHanger"

    def __init__(self, seconds: float):
        self.seconds = seconds

    def detect(self, graph):
        if multiprocessing.parent_process() is not None:
            time.sleep(self.seconds)
        return NaiveDetector().detect(graph)


class TestRetryGenerations:
    def test_transient_crash_is_fixed_by_one_retry(self, tiny, tmp_path):
        detectors = [NaiveDetector(), _FirstAttemptKiller(tmp_path / "attempt")]
        recorder = obs.Recorder()
        with obs.recording(recorder):
            runs = run_suite_parallel(
                detectors,
                tiny,
                None,
                jobs=2,
                retry=RetryPolicy(max_retries=1, base_delay=0.0, jitter=0.0),
            )
        assert [run.name for run in runs] == ["Naive", "FirstAttemptKiller"]
        assert recorder.counters["resilience.retries"] >= 1
        # The retry succeeded on a fresh pool: nothing fell back serially.
        assert not any(run.degraded for run in runs)
        assert "parallel.broken_pool_recoveries" not in recorder.counters

    def test_zero_retries_reproduces_the_old_serial_fallback(self, tiny, tmp_path):
        detectors = [_FirstAttemptKiller(tmp_path / "attempt")]
        recorder = obs.Recorder()
        with obs.recording(recorder):
            runs = run_suite_parallel(detectors, tiny, None, jobs=2, retry=None)
        assert runs[0].degraded
        assert recorder.counters["parallel.broken_pool_recoveries"] == 1
        assert recorder.counters["resilience.fallbacks"] == 1


class TestDeadline:
    def test_hung_worker_is_abandoned_and_recovered_serially(self, tiny):
        from repro.resilience import Deadline

        detectors = [NaiveDetector(), _WorkerHanger(seconds=20.0)]
        recorder = obs.Recorder()
        start = time.monotonic()
        with obs.recording(recorder):
            runs = run_suite_parallel(
                detectors, tiny, None, jobs=2, deadline=Deadline(1.0)
            )
        elapsed = time.monotonic() - start
        assert elapsed < 15.0  # did not wait out the hang
        assert [run.name for run in runs] == ["Naive", "WorkerHanger"]
        assert runs[1].degraded
        assert recorder.counters["resilience.deadline_hits"] >= 1
        assert recorder.counters["resilience.fallbacks"] >= 1


class TestTypedFailures:
    def test_shard_that_fails_everywhere_becomes_a_task_failure(self, federation):
        detector = make_detector(shard_jobs=2)
        resolved = detector.resolve_thresholds(federation)
        from repro.shard.partition import partition_graph

        shard_graphs = partition_graph(federation, 3).subgraphs(federation)
        # Workers fail at the worker site; the parent's serial fallback
        # fails at extraction — nothing left but the typed sentinel.
        # Staged through the env spec so spawn workers (which inherit
        # nothing from the parent) pick the injector up at boot too.
        with injecting("error=1.0,sites=worker|extraction"):
            parts = run_shards_parallel(
                detector,
                shard_graphs,
                resolved,
                detector.screening,
                jobs=2,
                capture_failures=True,
            )
        assert all(isinstance(part, TaskFailure) for part in parts)
        assert all(isinstance(part.error, TransientWorkerError) for part in parts)

    def test_without_capture_the_failure_propagates(self, federation):
        detector = make_detector(shard_jobs=2)
        resolved = detector.resolve_thresholds(federation)
        from repro.shard.partition import partition_graph

        shard_graphs = partition_graph(federation, 3).subgraphs(federation)
        with injecting("error=1.0,sites=worker|extraction"):
            with pytest.raises(TransientWorkerError):
                run_shards_parallel(
                    detector,
                    shard_graphs,
                    resolved,
                    detector.screening,
                    jobs=2,
                    capture_failures=False,
                )


class TestPoolWorkerFaults:
    def test_crashed_workers_degrade_to_equal_output(self, federation):
        reference = make_detector().detect(federation)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            # Every worker (fork-inherited or spawn-booted via the env
            # spec) carries crash=1.0 and dies at task start in every
            # pool generation; retries exhaust and the parent recovers
            # each shard serially (the parent-side "crash" path never
            # fires: recovery skips the worker site).
            with injecting("crash=1.0,sites=worker"):
                result = make_detector(shard_jobs=2, retries=1).detect(federation)
        assert canonical(result) == canonical(reference)
        assert recorder.counters["resilience.retries"] >= 1
        assert recorder.counters["resilience.fallbacks"] >= 1


class TestSpawnContext:
    def test_spawn_pool_matches_serial_output(self, tiny, monkeypatch):
        """Determinism pin for the spawn start method.

        Spawned workers boot a fresh interpreter, so the parent's hash
        seed is shipped explicitly through the environment + initializer;
        the fan-out's output must stay byte-identical to the serial path.
        """
        monkeypatch.setenv(MP_CONTEXT_ENV, "spawn")
        detectors = [
            NaiveDetector(),
            make_detector(shards=1),
        ]
        serial = run_suite(detectors, tiny, simulate_labels=False, jobs=1)
        parallel = run_suite(detectors, tiny, simulate_labels=False, jobs=2)
        assert [canonical(run.result) for run in serial] == [
            canonical(run.result) for run in parallel
        ]

    def test_spawn_workers_receive_the_hash_seed(self, tiny, monkeypatch):
        monkeypatch.setenv(MP_CONTEXT_ENV, "spawn")
        monkeypatch.delenv("PYTHONHASHSEED", raising=False)
        run_suite(
            [NaiveDetector(), NaiveDetector()], tiny, simulate_labels=False, jobs=2
        )
        # The fan-out pinned the seed before the first spawn started.
        assert os.environ.get("PYTHONHASHSEED") == "0"
