"""Unit tests for the fault-injection harness itself."""

import os
import time

import pytest

from repro import obs
from repro.errors import ConfigError, InjectedFaultError, TransientWorkerError
from repro.resilience import FaultInjector, inject, injecting, install
from repro.resilience.faults import ENV_VAR, SITES


class TestSpecParsing:
    def test_full_grammar(self):
        injector = FaultInjector.from_spec(
            "crash=0.2, hang=0.05, error=0.1, seed=7, hang_seconds=0.5,"
            " sites=worker|extraction, max=3"
        )
        assert injector.crash == 0.2
        assert injector.hang == 0.05
        assert injector.error == 0.1
        assert injector.seed == 7
        assert injector.hang_seconds == 0.5
        assert injector.sites == frozenset({"worker", "extraction"})
        assert injector.max_faults == 3

    def test_empty_chunks_ignored(self):
        injector = FaultInjector.from_spec("error=1.0,,")
        assert injector.error == 1.0

    @pytest.mark.parametrize("spec", ["bogus", "nope=1", "crash=2.0", "crash=0.9,hang=0.9"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultInjector.from_spec(spec)

    def test_documented_sites_are_instrumented(self):
        # The spec grammar's site names must match the production call
        # sites; a typo here would silently disable targeted injection.
        assert set(SITES) == {
            "worker", "extraction", "screening", "shard_merge", "feedback",
            "recheck", "ingest", "store",
        }


class TestFire:
    def test_error_raises_typed_retryable(self):
        injector = FaultInjector(error=1.0)
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.fire("extraction")
        assert isinstance(excinfo.value, TransientWorkerError)
        assert excinfo.value.site == "extraction"
        assert excinfo.value.kind == "error"

    def test_crash_in_parent_degrades_to_error(self):
        # In the orchestrating parent a "crash" must never kill the
        # process running the tests; it surfaces as a retryable error.
        injector = FaultInjector(crash=1.0)
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.fire("worker")
        assert excinfo.value.kind == "crash"

    def test_hang_sleeps_then_returns(self):
        injector = FaultInjector(hang=1.0, hang_seconds=0.02)
        start = time.monotonic()
        injector.fire("worker")
        assert time.monotonic() - start >= 0.02

    def test_sites_filter(self):
        injector = FaultInjector(error=1.0, sites=("extraction",))
        injector.fire("screening")  # filtered: no fault
        assert injector.fired == 0
        with pytest.raises(InjectedFaultError):
            injector.fire("extraction")

    def test_max_faults_budget(self):
        injector = FaultInjector(error=1.0, max_faults=2)
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.fire("worker")
        injector.fire("worker")  # budget spent: no fault
        assert injector.fired == 2

    def test_fault_sequence_is_seed_deterministic(self):
        def sequence(seed):
            injector = FaultInjector(crash=0.0, error=0.3, seed=seed)
            outcomes = []
            for _ in range(20):
                try:
                    injector.fire("worker")
                    outcomes.append("ok")
                except InjectedFaultError:
                    outcomes.append("error")
            return outcomes

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_fired_faults_are_counted(self):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            injector = FaultInjector(error=1.0, max_faults=2)
            for _ in range(3):
                try:
                    injector.fire("worker")
                except InjectedFaultError:
                    pass
        assert recorder.counters["resilience.injected.error"] == 2


class TestActivation:
    def test_disabled_inject_is_a_noop(self):
        inject("worker")  # no injector installed: must not raise

    def test_install_and_reset(self):
        install(FaultInjector(error=1.0, max_faults=1))
        with pytest.raises(InjectedFaultError):
            inject("worker")
        install(None)
        inject("worker")

    def test_env_var_activates_lazily(self):
        from repro.resilience import faults

        os.environ[ENV_VAR] = "error=1.0,max=1"
        faults.reset()  # re-arm the lazy env lookup
        with pytest.raises(InjectedFaultError):
            inject("worker")
        inject("worker")  # max reached

    def test_injecting_spec_exports_and_restores_env(self):
        assert os.environ.get(ENV_VAR) is None
        with injecting("error=1.0,sites=extraction") as injector:
            assert os.environ[ENV_VAR] == "error=1.0,sites=extraction"
            assert injector.error == 1.0
            with pytest.raises(InjectedFaultError):
                inject("extraction")
        assert os.environ.get(ENV_VAR) is None
        inject("extraction")  # disabled again

    def test_injecting_instance_stays_process_local(self):
        with injecting(FaultInjector(error=1.0, max_faults=1)):
            assert os.environ.get(ENV_VAR) is None
            with pytest.raises(InjectedFaultError):
                inject("worker")
        inject("worker")
