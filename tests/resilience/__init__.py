"""Resilience suite: retry/backoff, deadlines, fault injection, degradation."""
