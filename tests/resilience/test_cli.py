"""CLI surface of the resilience layer: --retries / --deadline / counters."""

import csv

import pytest

from repro.cli import build_parser, main
from repro.resilience import FaultInjector, injecting


@pytest.fixture()
def click_table(tiny, tmp_path):
    path = tmp_path / "clicks.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["User_ID", "Item_ID", "Click"])
        for user, item, clicks in tiny.graph.edges():
            writer.writerow([user, item, clicks])
    return str(path)


class TestFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["detect", "x.csv"])
        assert args.retries == 0
        assert args.deadline is None

    def test_values_parse(self):
        args = build_parser().parse_args(
            ["detect", "x.csv", "--retries", "2", "--deadline", "30.5"]
        )
        assert args.retries == 2
        assert args.deadline == 30.5

    def test_negative_retries_rejected(self, click_table, capsys):
        assert main(["detect", click_table, "--retries", "-1"]) == 2
        assert "retries" in capsys.readouterr().err

    def test_non_positive_deadline_rejected(self, click_table, capsys):
        assert main(["detect", click_table, "--deadline", "0"]) == 2
        assert "deadline" in capsys.readouterr().err


class TestDetectWithResilience:
    def test_healthy_run_with_budgets(self, click_table, capsys):
        code = main(
            [
                "detect",
                click_table,
                "--k1", "4",
                "--k2", "4",
                "--shards", "2",
                "--retries", "2",
                "--deadline", "3600",
                "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "detected" in out
        assert "degraded" not in out

    def test_degraded_run_reports_provenance_and_counters(self, click_table, capsys):
        with injecting(FaultInjector(error=1.0, sites=("shard_merge",), max_faults=1)):
            code = main(
                [
                    "detect",
                    click_table,
                    "--k1", "4",
                    "--k2", "4",
                    "--shards", "2",
                    "--retries", "1",
                    "--trace",
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded run (fallbacks: shard.merge)" in out
        # The trace summary carries the resilience counters.
        assert "resilience.fallbacks" in out
