"""The fault matrix: every instrumented site × every fault flavour.

The contract under test is the degradation ladder's one invariant:
**no silent output loss**.  Whatever is injected, a detection either

* produces the canonically identical result (a retry or serial fallback
  absorbed the fault), or
* produces the canonically identical result *and* carries explicit
  ``degraded`` provenance naming what fell back, or
* (incremental recheck only) keeps the previous result, explicitly
  marked ``stale``.

A run that dropped groups without saying so would pass none of these.
"""

import pytest

from repro import obs
from repro.config import FeedbackPolicy, RICDParams, ScreeningParams
from repro.core.incremental import ClickBatch, IncrementalRICD
from repro.resilience import FaultInjector, injecting

from .conftest import canonical, make_detector


@pytest.fixture(scope="module")
def reference(federation):
    """The fault-free sharded detection everything is compared against."""
    return make_detector().detect(federation)


class TestShardSiteFaults:
    """Faults inside modules 1 + 2 on the in-line sharded path."""

    @pytest.mark.parametrize("site", ["extraction", "screening"])
    def test_retry_absorbs_a_transient_fault(self, federation, reference, site):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            with injecting(FaultInjector(error=1.0, sites=(site,), max_faults=1)):
                result = make_detector(retries=1).detect(federation)
        assert canonical(result) == canonical(reference)
        assert not result.degraded  # the retry fixed it; nothing fell back
        assert recorder.counters["resilience.retries"] == 1

    @pytest.mark.parametrize("site", ["extraction", "screening"])
    @pytest.mark.parametrize("kind", ["error", "crash"])
    def test_exhausted_retries_degrade_with_provenance(
        self, federation, reference, site, kind
    ):
        # Three shards, two faults, no retries: shards 0 and 1 fail, the
        # round degrades to one full-graph pass (fault budget spent by
        # then).  "crash" in-process surfaces as the same typed error.
        probabilities = {kind: 1.0}
        recorder = obs.Recorder()
        with obs.recording(recorder):
            with injecting(
                FaultInjector(sites=(site,), max_faults=2, **probabilities)
            ):
                result = make_detector(retries=0).detect(federation)
        assert canonical(result) == canonical(reference)
        assert result.degraded
        assert result.degradations == ("shard.0", "shard.1")
        assert recorder.counters["resilience.fallbacks"] == 2
        assert recorder.gauges["shard.degraded"] is True

    @pytest.mark.parametrize("site", ["extraction", "screening"])
    def test_hang_only_delays(self, federation, reference, site):
        with injecting(
            FaultInjector(hang=1.0, hang_seconds=0.01, sites=(site,), max_faults=2)
        ):
            result = make_detector().detect(federation)
        assert canonical(result) == canonical(reference)
        assert not result.degraded


class TestMergeFaults:
    def test_failed_merge_degrades_to_full_pass(self, federation, reference):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            with injecting(
                FaultInjector(error=1.0, sites=("shard_merge",), max_faults=1)
            ):
                result = make_detector().detect(federation)
        assert canonical(result) == canonical(reference)
        assert result.degraded
        assert result.degradations == ("shard.merge",)
        assert recorder.counters["resilience.fallbacks"] == 1


class TestFeedbackFaults:
    def _policy(self):
        # An unreachable expectation forces relaxation rounds.
        return FeedbackPolicy(expectation=10**6, max_rounds=3)

    def test_faulted_round_truncates_with_provenance(self, federation, reference):
        with injecting(FaultInjector(error=1.0, sites=("feedback",), max_faults=1)):
            result = make_detector(feedback=self._policy()).detect(federation)
        # Round zero's output survives; the loop stopped at round one.
        assert canonical(result) == canonical(reference)
        assert result.degraded
        assert result.degradations == ("feedback.round1",)
        assert result.feedback_rounds == 1

    def test_strict_raise_suppressed_on_truncation(self, federation):
        with injecting(FaultInjector(error=1.0, sites=("feedback",), max_faults=1)):
            result = make_detector(
                feedback=self._policy(), strict_feedback=True
            ).detect(federation)
        assert result.degraded  # no FeedbackExhaustedError: budget != policy

    def test_deadline_stops_new_rounds(self, federation, reference):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            result = make_detector(
                feedback=self._policy(), deadline=1e-6
            ).detect(federation)
        assert canonical(result) == canonical(reference)
        assert result.degraded
        assert "feedback.deadline" in result.degradations
        assert result.feedback_rounds == 0
        assert recorder.counters["resilience.deadline_hits"] >= 1


class TestRecheckFaults:
    def _online(self, federation):
        return IncrementalRICD(
            federation,
            params=RICDParams(k1=4, k2=3),
            screening=ScreeningParams(min_users=2, min_items=2),
            recheck_batches=1,
        )

    def test_failed_recheck_keeps_previous_result_as_stale(self, federation):
        online = self._online(federation)
        bootstrap = canonical(online.current_result)
        recorder = obs.Recorder()
        with obs.recording(recorder):
            with injecting(FaultInjector(error=1.0, sites=("recheck",), max_faults=1)):
                result = online.ingest(ClickBatch.of([("fresh", "r0:i0", 3)]))
        assert result.stale
        assert canonical(result) == bootstrap  # previous result, kept valid
        assert online.dirty_size == 2  # region retained for the next pass
        assert recorder.counters["resilience.stale_rechecks"] == 1

    def test_next_recheck_recovers_the_retained_region(self, federation):
        online = self._online(federation)
        with injecting(FaultInjector(error=1.0, sites=("recheck",), max_faults=1)):
            online.ingest(ClickBatch.of([("fresh", "r0:i0", 3)]))
            result = online.recheck()  # budget spent: this one succeeds
        assert not result.stale
        assert online.dirty_size == 0
        # The recovered state equals a recheck that never failed.
        witness = self._online(federation)
        witness.ingest(ClickBatch.of([("fresh", "r0:i0", 3)]))
        assert canonical(result) == canonical(witness.current_result)


class TestNoiseFloor:
    def test_disabled_injection_changes_nothing(self, federation, reference):
        recorder = obs.Recorder()
        with obs.recording(recorder):
            result = make_detector(retries=2, deadline=3600.0).detect(federation)
        assert canonical(result) == canonical(reference)
        assert not result.degraded
        assert "resilience.retries" not in recorder.counters
        assert "resilience.fallbacks" not in recorder.counters
        assert not any(k.startswith("resilience.injected") for k in recorder.counters)
