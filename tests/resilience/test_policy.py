"""Unit tests for :class:`RetryPolicy` and :class:`Deadline`."""

import pickle
import time

import pytest

from repro.errors import ConfigError, DeadlineExceededError, DetectionError
from repro.resilience import Deadline, RetryPolicy


class TestRetryPolicy:
    def test_default_performs_no_retries(self):
        assert RetryPolicy().max_retries == 0

    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(max_retries=3, base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert [round(policy.delay(a), 3) for a in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0
        )
        assert policy.delay(5) == 2.0

    def test_jitter_is_deterministic(self):
        first = RetryPolicy(max_retries=2, jitter=0.5, seed=9)
        second = RetryPolicy(max_retries=2, jitter=0.5, seed=9)
        assert [first.delay(a) for a in (1, 2, 3)] == [
            second.delay(a) for a in (1, 2, 3)
        ]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, jitter=0.25, seed=3)
        for attempt in range(1, 6):
            raw = min(policy.max_delay, 0.1 * policy.multiplier ** (attempt - 1))
            assert raw * 0.75 <= policy.delay(attempt) <= raw * 1.25

    def test_different_seeds_differ(self):
        delays_a = [RetryPolicy(jitter=0.5, seed=1).delay(a) for a in (1, 2, 3)]
        delays_b = [RetryPolicy(jitter=0.5, seed=2).delay(a) for a in (1, 2, 3)]
        assert delays_a != delays_b

    def test_sleep_zero_delay_returns_immediately(self):
        start = time.monotonic()
        RetryPolicy(base_delay=0.0, jitter=0.0).sleep(1)
        assert time.monotonic() - start < 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_invalid_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_policy_is_picklable(self):
        policy = RetryPolicy(max_retries=2, seed=7)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestDeadline:
    def test_start_none_means_no_deadline(self):
        assert Deadline.start(None) is None

    def test_fresh_budget_not_expired(self):
        deadline = Deadline.start(60.0)
        assert not deadline.expired
        assert 0.0 < deadline.remaining() <= 60.0
        deadline.check()  # must not raise

    def test_tiny_budget_expires(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_typed_error(self):
        deadline = Deadline(1e-9)
        time.sleep(0.001)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check()
        assert isinstance(excinfo.value, DetectionError)
        assert excinfo.value.budget == 1e-9

    def test_elapsed_is_monotone(self):
        deadline = Deadline(10.0)
        first = deadline.elapsed()
        time.sleep(0.001)
        assert deadline.elapsed() >= first

    @pytest.mark.parametrize("seconds", [0.0, -1.0])
    def test_invalid_budget(self, seconds):
        with pytest.raises(ConfigError):
            Deadline(seconds)
