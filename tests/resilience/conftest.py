"""Shared fixtures for the resilience suite.

Fault injection is process-global state (module globals + the
``RICD_FAULTS`` environment variable), so every test runs inside an
autouse guard that restores a clean, disabled injector afterwards —
a leaked injector would make unrelated tests flaky in the worst way.
"""

from __future__ import annotations

import os

import pytest

from repro.config import RICDParams
from repro.core.framework import RICDDetector
from repro.datagen import AttackConfig, MarketplaceConfig, generate_scenario
from repro.graph import BipartiteGraph
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _clean_injector():
    """Guarantee injection is disabled before and after every test."""
    faults.reset()
    prior = os.environ.pop(faults.ENV_VAR, None)
    yield
    faults.reset()
    if prior is None:
        os.environ.pop(faults.ENV_VAR, None)
    else:
        os.environ[faults.ENV_VAR] = prior


def federated_graph(regions: int = 3) -> BipartiteGraph:
    """Independent regional marketplaces merged under prefixed ids.

    Multiple components give the component-aligned partitioner real
    shards, so per-shard faults and fallbacks are exercised for real.
    """
    graph = BipartiteGraph()
    for region in range(regions):
        scenario = generate_scenario(
            MarketplaceConfig(n_users=300, n_items=80, seed=11 + region),
            AttackConfig(
                n_groups=1,
                workers_per_group=(6, 8),
                targets_per_group=(4, 6),
                seed=70 + region,
            ),
        )
        for user, item, clicks in scenario.graph.edges():
            graph.add_click(f"r{region}:{user}", f"r{region}:{item}", clicks)
    return graph


@pytest.fixture(scope="module")
def federation() -> BipartiteGraph:
    return federated_graph()


def make_detector(**overrides) -> RICDDetector:
    """A sharded detector sized for the federation fixture."""
    defaults = dict(params=RICDParams(k1=4, k2=3), shards=3)
    defaults.update(overrides)
    return RICDDetector(**defaults)


def canonical(result):
    """Everything observable about a result except wall-clock and provenance."""
    return (
        sorted(map(str, result.suspicious_users)),
        sorted(map(str, result.suspicious_items)),
        sorted(
            (
                sorted(map(str, group.users)),
                sorted(map(str, group.items)),
                sorted(map(str, group.hot_items)),
            )
            for group in result.groups
        ),
        sorted((str(node), score) for node, score in result.user_scores.items()),
        sorted((str(node), score) for node, score in result.item_scores.items()),
    )
