"""Tests for stratified item sampling (Section IV's sampling step)."""

import pytest

from repro.graph import BipartiteGraph, stratified_item_sample


@pytest.fixture()
def layered_graph():
    """Items with click volumes spanning several magnitudes."""
    graph = BipartiteGraph()
    volumes = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    for index, volume in enumerate(volumes):
        for user_index in range(volume):
            graph.add_click(f"u{user_index}", f"i{index}", 1)
    return graph


class TestStratifiedSample:
    def test_fraction_one_keeps_all_items(self, layered_graph):
        sample = stratified_item_sample(layered_graph, 1.0, seed=0)
        assert sample.num_items == layered_graph.num_items

    def test_every_stratum_represented(self, layered_graph):
        sample = stratified_item_sample(layered_graph, 0.1, strata=4, seed=0)
        totals = sorted(sample.item_total_clicks(i) for i in sample.items())
        # Both the head and the tail of the distribution must survive.
        assert totals[0] <= 8
        assert totals[-1] >= 128

    def test_adjacent_users_preserved(self, layered_graph):
        sample = stratified_item_sample(layered_graph, 0.5, seed=0)
        for item in sample.items():
            assert sample.item_degree(item) == layered_graph.item_degree(item)

    def test_deterministic_with_seed(self, layered_graph):
        a = stratified_item_sample(layered_graph, 0.3, seed=7)
        b = stratified_item_sample(layered_graph, 0.3, seed=7)
        assert a == b

    def test_invalid_fraction(self, layered_graph):
        with pytest.raises(ValueError):
            stratified_item_sample(layered_graph, 0.0)
        with pytest.raises(ValueError):
            stratified_item_sample(layered_graph, 1.5)

    def test_invalid_strata(self, layered_graph):
        with pytest.raises(ValueError):
            stratified_item_sample(layered_graph, 0.5, strata=0)

    def test_empty_graph(self, empty_graph):
        assert len(stratified_item_sample(empty_graph, 0.5)) == 0
