"""Lazy-vs-eager equivalence: the tentpole's correctness pin.

``BipartiteGraph.from_indexed(snapshot, lazy=True)`` must be
*observationally identical* to the eagerly-rebuilt twin under any
interleaving of reads and writes — hydration and materialization are
cache moves, never semantic ones.  Hypothesis drives random operation
sequences against both graphs simultaneously and compares every return
value, every raised error, and the full end state (including ``edges()``
iteration order, which downstream canonicalization relies on).
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError
from repro.graph import BipartiteGraph, from_click_records

# Small id universes so operations collide: hydrated vertices get
# re-read, snapshot edges get overwritten, removals hit hydrated and
# unhydrated vertices alike.
user_ids = st.integers(min_value=0, max_value=7).map(lambda n: f"u{n}")
item_ids = st.integers(min_value=0, max_value=7).map(lambda n: f"i{n}")
# A few ids outside the snapshot universe exercise the new-node paths.
new_user_ids = st.integers(min_value=90, max_value=93).map(lambda n: f"u{n}")
new_item_ids = st.integers(min_value=90, max_value=93).map(lambda n: f"i{n}")
any_user = st.one_of(user_ids, new_user_ids)
any_item = st.one_of(item_ids, new_item_ids)

seed_records = st.lists(
    st.tuples(user_ids, item_ids, st.integers(min_value=1, max_value=9)),
    min_size=1,
    max_size=40,
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add_click"), any_user, any_item, st.integers(1, 5)),
        st.tuples(st.just("set_click"), any_user, any_item, st.integers(0, 5)),
        st.tuples(st.just("remove_edge"), any_user, any_item),
        st.tuples(st.just("add_user"), any_user),
        st.tuples(st.just("add_item"), any_item),
        st.tuples(st.just("remove_user"), any_user),
        st.tuples(st.just("remove_item"), any_item),
        st.tuples(st.just("get_click"), any_user, any_item),
        st.tuples(st.just("has_edge"), any_user, any_item),
        st.tuples(st.just("has_user"), any_user),
        st.tuples(st.just("has_item"), any_item),
        st.tuples(st.just("user_neighbors"), any_user),
        st.tuples(st.just("item_neighbors"), any_item),
        st.tuples(st.just("user_degree"), any_user),
        st.tuples(st.just("item_degree"), any_item),
        st.tuples(st.just("user_total_clicks"), any_user),
        st.tuples(st.just("item_total_clicks"), any_item),
        st.tuples(st.just("users"),),
        st.tuples(st.just("items"),),
        st.tuples(st.just("edges"),),
        st.tuples(st.just("counts"),),
        st.tuples(st.just("copy"),),
        st.tuples(st.just("subgraph"),),
    ),
    max_size=30,
)


def make_twins(rows):
    """(lazy, eager) rebuilds of the same snapshot."""
    snapshot = from_click_records(rows).indexed()
    return (
        BipartiteGraph.from_indexed(snapshot, lazy=True),
        BipartiteGraph.from_indexed(snapshot, lazy=False),
    )


def apply(graph, op):
    """Run one operation; returns (outcome, payload) for comparison."""
    name, *args = op
    try:
        if name in ("add_click", "set_click"):
            getattr(graph, name)(*args)
            return ("ok", None)
        if name in ("remove_edge", "add_user", "add_item", "remove_user", "remove_item"):
            getattr(graph, name)(*args)
            return ("ok", None)
        if name in ("user_neighbors", "item_neighbors"):
            return ("value", dict(getattr(graph, name)(*args)))
        if name in ("users", "items"):
            return ("value", list(getattr(graph, name)()))
        if name == "edges":
            return ("value", list(graph.edges()))
        if name == "counts":
            return (
                "value",
                (
                    graph.num_users,
                    graph.num_items,
                    graph.num_edges,
                    graph.total_clicks,
                    len(graph),
                ),
            )
        if name == "copy":
            clone = graph.copy()
            return ("value", (list(clone.edges()), clone.total_clicks))
        if name == "subgraph":
            sub = graph.subgraph(None, None)
            return ("value", (list(sub.edges()), sorted(map(str, sub.users()))))
        return ("value", getattr(graph, name)(*args))
    except NodeNotFoundError as error:
        return ("not_found", (error.args[0] if error.args else None,))


@given(seed_records, operations)
@settings(max_examples=120, deadline=None)
def test_lazy_equals_eager_under_interleavings(rows, ops):
    lazy, eager = make_twins(rows)
    for op in ops:
        assert apply(lazy, op) == apply(eager, op), op
    # End state: identical adjacency (== materializes the lazy side),
    # identical canonical iteration order, identical aggregates.
    assert list(lazy.edges()) == list(eager.edges())
    assert list(lazy.users()) == list(eager.users())
    assert list(lazy.items()) == list(eager.items())
    assert lazy.total_clicks == eager.total_clicks
    assert lazy.num_edges == eager.num_edges
    assert lazy == eager


@given(seed_records, operations)
@settings(max_examples=60, deadline=None)
def test_lazy_indexed_snapshot_matches_eager(rows, ops):
    """After any interleaving the canonical array snapshots agree."""
    lazy, eager = make_twins(rows)
    for op in ops:
        apply(lazy, op)
        apply(eager, op)
    a, b = lazy.indexed(), eager.indexed()
    assert a.users == b.users and a.items == b.items
    assert np.array_equal(a.user_idx, b.user_idx)
    assert np.array_equal(a.item_idx, b.item_idx)
    assert np.array_equal(a.clicks, b.clicks)


@given(seed_records)
@settings(max_examples=60, deadline=None)
def test_from_indexed_contract(rows):
    """Satellite: the warm-rebuild contract, lazy and eager alike.

    ``from_indexed`` preserves ``total_clicks``/``num_edges``, iterates
    ``edges()`` in canonical snapshot order, pins ``version`` to the
    snapshot's, and serves the first ``indexed()`` call as a zero-miss
    cache hit.
    """
    from repro import obs

    snapshot = from_click_records(rows).indexed()
    canonical_edges = [
        (snapshot.users[row], snapshot.items[column], weight)
        for row, column, weight in zip(
            snapshot.user_idx.tolist(),
            snapshot.item_idx.tolist(),
            snapshot.clicks.tolist(),
        )
    ]
    for lazy in (True, False):
        graph = BipartiteGraph.from_indexed(snapshot, lazy=lazy)
        assert graph.total_clicks == snapshot.total_clicks
        assert graph.num_edges == snapshot.num_edges
        assert graph.num_users == snapshot.num_users
        assert graph.num_items == snapshot.num_items
        assert list(graph.edges()) == canonical_edges
        assert graph.version == snapshot.version
        recorder = obs.Recorder()
        with obs.recording(recorder):
            assert graph.indexed() is snapshot
        assert recorder.counters.get("graph.indexed.misses", 0) == 0
        assert recorder.counters.get("graph.indexed.hits", 0) == 1


@given(seed_records)
@settings(max_examples=40, deadline=None)
def test_hydration_is_not_a_mutation(rows):
    """Reads never bump the version, lazy or not."""
    snapshot = from_click_records(rows).indexed()
    graph = BipartiteGraph.from_indexed(snapshot)
    before = graph.version
    for user in list(graph.users()):
        graph.user_neighbors(user)
        graph.user_degree(user)
        graph.user_total_clicks(user)
    for item in list(graph.items()):
        graph.item_neighbors(item)
    list(graph.edges())
    assert graph.version == before
    assert graph.indexed() is snapshot


@given(seed_records)
@settings(max_examples=40, deadline=None)
def test_pickle_roundtrip_matches_eager(rows):
    import pickle

    snapshot = from_click_records(rows).indexed()
    lazy = BipartiteGraph.from_indexed(snapshot, lazy=True)
    eager = BipartiteGraph.from_indexed(snapshot, lazy=False)
    restored = pickle.loads(pickle.dumps(lazy))
    assert restored == eager
    assert list(restored.edges()) == list(eager.edges())
