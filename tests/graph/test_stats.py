"""Tests for graph statistics (Tables I/II/V, Fig. 2)."""

import pytest

from repro.graph import (
    BipartiteGraph,
    click_histogram,
    graph_scale,
    item_click_profile,
    side_stats,
)


class TestGraphScale:
    def test_counts(self, simple_graph):
        scale = graph_scale(simple_graph)
        assert scale.as_row() == (3, 3, 6, 13)

    def test_empty(self, empty_graph):
        scale = graph_scale(empty_graph)
        assert scale.as_row() == (0, 0, 0, 0)


class TestSideStats:
    def test_user_side(self, simple_graph):
        stats = side_stats(simple_graph, "user")
        assert stats.avg_clk == pytest.approx(13 / 3)
        assert stats.avg_cnt == pytest.approx(2.0)
        assert stats.stdev >= 0

    def test_item_side(self, simple_graph):
        stats = side_stats(simple_graph, "item")
        assert stats.avg_clk == pytest.approx(13 / 3)
        assert stats.avg_cnt == pytest.approx(2.0)

    def test_single_node_zero_stdev(self):
        graph = BipartiteGraph()
        graph.add_click("u", "i", 5)
        assert side_stats(graph, "user").stdev == 0.0

    def test_invalid_side(self, simple_graph):
        with pytest.raises(ValueError):
            side_stats(simple_graph, "banana")

    def test_empty_graph(self, empty_graph):
        stats = side_stats(empty_graph, "user")
        assert stats.avg_clk == 0.0
        assert stats.avg_cnt == 0.0


class TestClickHistogram:
    def test_bins_partition_counts(self):
        graph = BipartiteGraph()
        for index, clicks in enumerate([1, 2, 3, 8, 9, 64]):
            graph.add_click(f"u{index}", "i", 1)
            graph.add_click(f"u{index}", f"x{index}", clicks)
        bins = click_histogram(graph, "user")
        assert sum(count for _low, _high, count in bins) == graph.num_users

    def test_geometric_edges(self, simple_graph):
        bins = click_histogram(simple_graph, "item", log_base=2.0)
        for low, high, _count in bins:
            assert high == low * 2

    def test_invalid_base(self, simple_graph):
        with pytest.raises(ValueError):
            click_histogram(simple_graph, "user", log_base=1.0)

    def test_invalid_side(self, simple_graph):
        with pytest.raises(ValueError):
            click_histogram(simple_graph, "shop")

    def test_empty(self, empty_graph):
        assert click_histogram(empty_graph, "user") == []

    def test_trailing_empty_bins_trimmed(self):
        graph = BipartiteGraph()
        graph.add_click("u", "i", 1)
        bins = click_histogram(graph, "user")
        assert bins[-1][2] > 0


class TestItemClickProfile:
    def test_profile_fields(self, simple_graph):
        profile = item_click_profile(simple_graph, "i1")
        assert profile.total_clicks == 5
        assert profile.user_num == 2
        assert profile.max_clicks == 3
        assert profile.min_clicks == 2
        assert profile.mean == pytest.approx(2.5)

    def test_isolated_item(self, empty_graph):
        empty_graph.add_item("lonely")
        profile = item_click_profile(empty_graph, "lonely")
        assert profile.total_clicks == 0
        assert profile.user_num == 0
        assert profile.max_clicks == 0

    def test_suspicious_vs_normal_contrast(self, small):
        """Table V's qualitative claim: matched volume, fewer distinct users."""
        graph = small.graph
        target = max(
            small.truth.abnormal_items, key=lambda i: graph.item_total_clicks(i)
        )
        profile = item_click_profile(graph, target)
        # An attacked item's mean clicks per user is well above the organic
        # per-edge mean (~2.5): workers click >= 12 times each.
        assert profile.mean > 3.0
        assert profile.max_clicks >= 12
