"""Tests for the IndexedGraph snapshot and its memoization contract."""

import pickle

import pytest

from repro import obs
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    BipartiteGraph,
    IndexedGraph,
    from_click_records,
    indexed_available,
    snapshot_or_none,
)

pytestmark = pytest.mark.skipif(
    not indexed_available(), reason="numpy not installed"
)

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=8).map(lambda n: f"i{n}"),
        st.integers(min_value=1, max_value=20),
    ),
    max_size=60,
)


class TestRoundTrip:
    @given(records)
    def test_edges_round_trip(self, rows):
        graph = from_click_records(rows)
        snapshot = graph.indexed()
        rebuilt = {
            (snapshot.users[u], snapshot.items[i]): int(c)
            for u, i, c in zip(snapshot.user_idx, snapshot.item_idx, snapshot.clicks)
        }
        expected = {(u, i): c for u, i, c in graph.edges()}
        assert rebuilt == expected
        assert snapshot.num_users == graph.num_users
        assert snapshot.num_items == graph.num_items
        assert snapshot.num_edges == graph.num_edges
        assert snapshot.total_clicks == graph.total_clicks

    @given(records)
    def test_degrees_and_clicks_round_trip(self, rows):
        graph = from_click_records(rows)
        snapshot = graph.indexed()
        user_degrees = snapshot.user_degrees()
        user_clicks = snapshot.user_total_clicks()
        for user in graph.users():
            row = snapshot.user_index[user]
            assert int(user_degrees[row]) == graph.user_degree(user)
            assert int(user_clicks[row]) == graph.user_total_clicks(user)
        item_degrees = snapshot.item_degrees()
        item_clicks = snapshot.item_total_clicks()
        for item in graph.items():
            column = snapshot.item_index[item]
            assert int(item_degrees[column]) == graph.item_degree(item)
            assert int(item_clicks[column]) == graph.item_total_clicks(item)

    def test_interning_tables_are_inverse(self, simple_graph):
        snapshot = simple_graph.indexed()
        assert [snapshot.user_index[u] for u in snapshot.users] == list(
            range(snapshot.num_users)
        )
        assert [snapshot.item_index[i] for i in snapshot.items] == list(
            range(snapshot.num_items)
        )


class TestMemoization:
    def test_repeated_access_returns_same_snapshot(self, simple_graph):
        assert simple_graph.indexed() is simple_graph.indexed()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_click("u1", "i9", 2),
            lambda g: g.add_click("u1", "i1", 1),  # existing edge: weight change
            lambda g: g.add_user("u9"),
            lambda g: g.add_item("i9"),
            lambda g: g.remove_user("u1"),
            lambda g: g.remove_item("i1"),
            lambda g: g.set_click("u1", "i1", 7),
            lambda g: g.remove_edge("u1", "i1"),
        ],
    )
    def test_every_mutation_invalidates(self, simple_graph, mutate):
        graph = simple_graph.copy()
        before = graph.indexed()
        version = graph.version
        mutate(graph)
        assert graph.version > version
        after = graph.indexed()
        assert after is not before
        assert after.total_clicks == graph.total_clicks

    def test_noop_registration_keeps_snapshot(self, simple_graph):
        graph = simple_graph.copy()
        before = graph.indexed()
        graph.add_user("u1")  # already present: structurally a no-op
        graph.add_item("i1")
        assert graph.indexed() is before

    def test_copy_does_not_share_snapshot(self, simple_graph):
        snapshot = simple_graph.indexed()
        clone = simple_graph.copy()
        assert clone.indexed() is not snapshot
        clone.add_click("extra", "edge")
        assert simple_graph.indexed() is snapshot

    def test_derived_cache_dies_with_snapshot(self, simple_graph):
        graph = simple_graph.copy()
        graph.indexed().derived["probe"] = 1
        assert graph.indexed().derived["probe"] == 1
        graph.add_click("u9", "i9")
        assert "probe" not in graph.indexed().derived

    def test_pickle_drops_snapshot_but_keeps_edges(self, simple_graph):
        simple_graph.indexed()
        clone = pickle.loads(pickle.dumps(simple_graph))
        assert clone == simple_graph
        assert clone._indexed is None
        assert clone.indexed().num_edges == simple_graph.num_edges


class TestHelpers:
    def test_snapshot_or_none_returns_snapshot(self, simple_graph):
        assert snapshot_or_none(simple_graph) is simple_graph.indexed()

    def test_from_graph_matches_accessor_ordering(self, simple_graph):
        direct = IndexedGraph.from_graph(simple_graph)
        memoized = simple_graph.indexed()
        assert direct.users == memoized.users
        assert direct.items == memoized.items

    def test_empty_graph_snapshot(self):
        snapshot = BipartiteGraph().indexed()
        assert snapshot.num_users == snapshot.num_items == snapshot.num_edges == 0
        assert snapshot.total_clicks == 0

    def test_biadjacency_cached_and_binary(self, simple_graph):
        pytest.importorskip("scipy")
        snapshot = simple_graph.indexed()
        matrix = snapshot.biadjacency()
        assert matrix is snapshot.biadjacency()
        assert matrix.shape == (snapshot.num_users, snapshot.num_items)
        assert matrix.sum() == snapshot.num_edges
        assert set(matrix.data.tolist()) <= {1}


class TestIncrementalMaintenance:
    """Append-only mutation maintains the snapshot; it never re-snapshots."""

    def _snapshot_table(self, snapshot):
        return {
            (snapshot.users[int(u)], snapshot.items[int(i)]): int(c)
            for u, i, c in zip(
                snapshot.user_idx, snapshot.item_idx, snapshot.clicks
            )
        }

    def test_appends_never_miss(self, simple_graph):
        simple_graph.indexed()  # build once
        with obs.recording(obs.Recorder()) as recorder:
            for step in range(5):
                simple_graph.add_click(f"new_u{step}", "new_item", 2)
                simple_graph.add_click("u1", "i1", 1)  # increment existing
                simple_graph.indexed()
        assert recorder.counters.get("graph.indexed.misses", 0) == 0
        assert recorder.counters["graph.indexed.delta_builds"] == 5
        assert recorder.counters["graph.indexed.hits"] == 5

    def test_delta_snapshot_equals_rebuild(self, simple_graph):
        simple_graph.indexed()
        simple_graph.add_click("delta_u", "delta_i", 7)
        simple_graph.add_click("u1", "i1", 3)
        simple_graph.add_user("idle_account")
        maintained = simple_graph.indexed()
        rebuilt = IndexedGraph.from_graph(simple_graph)
        assert maintained.version == simple_graph.version
        assert set(maintained.users) == set(rebuilt.users)
        assert set(maintained.items) == set(rebuilt.items)
        assert self._snapshot_table(maintained) == self._snapshot_table(rebuilt)

    def test_destructive_mutation_still_rebuilds(self, simple_graph):
        simple_graph.indexed()
        simple_graph.remove_user("u1")
        with obs.recording(obs.Recorder()) as recorder:
            simple_graph.indexed()
        assert recorder.counters["graph.indexed.misses"] == 1

    def test_chained_deltas_stay_canonical(self, simple_graph):
        params_probe = simple_graph.indexed()
        del params_probe
        for step in range(4):
            simple_graph.add_click(f"burst{step}", f"bi{step % 2}", 1)
            snapshot = simple_graph.indexed()
            # Canonical edge-array invariant after every merge.
            keys = (
                snapshot.user_idx.astype("int64") * max(snapshot.num_items, 1)
                + snapshot.item_idx
            )
            assert (keys[1:] > keys[:-1]).all()

    def test_buffer_backstop_falls_back_to_rebuild(self, simple_graph):
        simple_graph.indexed()
        original_limit = type(simple_graph)._DELTA_LIMIT
        try:
            type(simple_graph)._DELTA_LIMIT = 3
            for step in range(6):
                simple_graph.add_click(f"flood{step}", "hot", 1)
            with obs.recording(obs.Recorder()) as recorder:
                simple_graph.indexed()
            assert recorder.counters["graph.indexed.misses"] == 1
        finally:
            type(simple_graph)._DELTA_LIMIT = original_limit
