"""Tests for click-table file I/O."""

import pytest

from repro.errors import ClickTableError
from repro.graph import BipartiteGraph, read_click_table, write_click_table
from repro.graph.io import iter_click_table


def write(tmp_path, text, name="clicks.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestRead:
    def test_csv_with_header(self, tmp_path):
        path = write(tmp_path, "User_ID,Item_ID,Click\nu1,i1,3\nu2,i1,1\n")
        graph = read_click_table(path)
        assert graph.num_users == 2
        assert graph.get_click("u1", "i1") == 3

    def test_csv_without_header(self, tmp_path):
        path = write(tmp_path, "u1,i1,3\n")
        graph = read_click_table(path)
        assert graph.total_clicks == 3

    def test_tsv_detected(self, tmp_path):
        path = write(tmp_path, "u1\ti1\t2\nu2\ti2\t4\n")
        graph = read_click_table(path)
        assert graph.get_click("u2", "i2") == 4

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = write(tmp_path, "# comment\nu1,i1,1\n\nu2,i2,2\n")
        graph = read_click_table(path)
        assert graph.num_edges == 2

    def test_bad_column_count(self, tmp_path):
        path = write(tmp_path, "u1,i1\n")
        with pytest.raises(ClickTableError) as excinfo:
            read_click_table(path)
        assert excinfo.value.line_number == 1

    def test_non_integer_click(self, tmp_path):
        path = write(tmp_path, "u1,i1,many\n")
        with pytest.raises(ClickTableError):
            read_click_table(path)

    def test_nonpositive_click(self, tmp_path):
        path = write(tmp_path, "u1,i1,0\n")
        with pytest.raises(ClickTableError):
            read_click_table(path)

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        graph = read_click_table(path)
        assert len(graph) == 0

    def test_whitespace_stripped(self, tmp_path):
        path = write(tmp_path, " u1 , i1 , 3 \n")
        assert read_click_table(path).get_click("u1", "i1") == 3

    def test_iter_streams_records(self, tmp_path):
        path = write(tmp_path, "u1,i1,1\nu2,i2,2\n")
        assert list(iter_click_table(path)) == [("u1", "i1", 1), ("u2", "i2", 2)]


class TestWrite:
    def test_round_trip(self, tmp_path, simple_graph):
        path = tmp_path / "out.csv"
        count = write_click_table(simple_graph, path)
        assert count == simple_graph.num_edges
        assert read_click_table(path) == simple_graph

    def test_deterministic_output(self, tmp_path):
        a = BipartiteGraph()
        a.add_click("u2", "i1", 1)
        a.add_click("u1", "i1", 1)
        b = BipartiteGraph()
        b.add_click("u1", "i1", 1)
        b.add_click("u2", "i1", 1)
        path_a, path_b = tmp_path / "a.csv", tmp_path / "b.csv"
        write_click_table(a, path_a)
        write_click_table(b, path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_no_header_option(self, tmp_path, simple_graph):
        path = tmp_path / "raw.csv"
        write_click_table(simple_graph, path, header=False)
        first = path.read_text().splitlines()[0]
        assert "User_ID" not in first

    def test_tsv_round_trip(self, tmp_path, simple_graph):
        path = tmp_path / "out.tsv"
        write_click_table(simple_graph, path, delimiter="\t")
        assert read_click_table(path) == simple_graph
