"""Tests for click-table file I/O."""

import pytest

from repro.errors import ClickTableError
from repro.graph import BipartiteGraph, read_click_table, write_click_table
from repro.graph.io import iter_click_table


def write(tmp_path, text, name="clicks.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestRead:
    def test_csv_with_header(self, tmp_path):
        path = write(tmp_path, "User_ID,Item_ID,Click\nu1,i1,3\nu2,i1,1\n")
        graph = read_click_table(path)
        assert graph.num_users == 2
        assert graph.get_click("u1", "i1") == 3

    def test_csv_without_header(self, tmp_path):
        path = write(tmp_path, "u1,i1,3\n")
        graph = read_click_table(path)
        assert graph.total_clicks == 3

    def test_tsv_detected(self, tmp_path):
        path = write(tmp_path, "u1\ti1\t2\nu2\ti2\t4\n")
        graph = read_click_table(path)
        assert graph.get_click("u2", "i2") == 4

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = write(tmp_path, "# comment\nu1,i1,1\n\nu2,i2,2\n")
        graph = read_click_table(path)
        assert graph.num_edges == 2

    def test_bad_column_count(self, tmp_path):
        path = write(tmp_path, "u1,i1\n")
        with pytest.raises(ClickTableError) as excinfo:
            read_click_table(path)
        assert excinfo.value.line_number == 1

    def test_non_integer_click(self, tmp_path):
        path = write(tmp_path, "u1,i1,many\n")
        with pytest.raises(ClickTableError):
            read_click_table(path)

    def test_nonpositive_click(self, tmp_path):
        path = write(tmp_path, "u1,i1,0\n")
        with pytest.raises(ClickTableError):
            read_click_table(path)

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "")
        graph = read_click_table(path)
        assert len(graph) == 0

    def test_whitespace_stripped(self, tmp_path):
        path = write(tmp_path, " u1 , i1 , 3 \n")
        assert read_click_table(path).get_click("u1", "i1") == 3

    def test_iter_streams_records(self, tmp_path):
        path = write(tmp_path, "u1,i1,1\nu2,i2,2\n")
        assert list(iter_click_table(path)) == [("u1", "i1", 1), ("u2", "i2", 2)]


class TestWrite:
    def test_round_trip(self, tmp_path, simple_graph):
        path = tmp_path / "out.csv"
        count = write_click_table(simple_graph, path)
        assert count == simple_graph.num_edges
        assert read_click_table(path) == simple_graph

    def test_deterministic_output(self, tmp_path):
        a = BipartiteGraph()
        a.add_click("u2", "i1", 1)
        a.add_click("u1", "i1", 1)
        b = BipartiteGraph()
        b.add_click("u1", "i1", 1)
        b.add_click("u2", "i1", 1)
        path_a, path_b = tmp_path / "a.csv", tmp_path / "b.csv"
        write_click_table(a, path_a)
        write_click_table(b, path_b)
        assert path_a.read_text() == path_b.read_text()

    def test_no_header_option(self, tmp_path, simple_graph):
        path = tmp_path / "raw.csv"
        write_click_table(simple_graph, path, header=False)
        first = path.read_text().splitlines()[0]
        assert "User_ID" not in first

    def test_tsv_round_trip(self, tmp_path, simple_graph):
        path = tmp_path / "out.tsv"
        write_click_table(simple_graph, path, delimiter="\t")
        assert read_click_table(path) == simple_graph


# ----------------------------------------------------------------------
# Delimiter sniffing, typed malformed-row errors, chunked/array IO
# ----------------------------------------------------------------------
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MalformedRowError
from repro.graph.io import (
    _sniff_delimiter,
    read_click_table_indexed,
    read_graph_memmap,
    read_graph_npz,
    write_graph_memmap,
    write_graph_npz,
)



def edge_table(snapshot):
    """A snapshot's click table as an id-keyed dict (order-free compare)."""
    return {
        (snapshot.users[int(u)], snapshot.items[int(i)]): int(c)
        for u, i, c in zip(snapshot.user_idx, snapshot.item_idx, snapshot.clicks)
    }


def graph_table(graph):
    return {(user, item): clicks for user, item, clicks in graph.edges()}


class TestDelimiterSniffing:
    def test_tab_in_content_wins(self):
        assert _sniff_delimiter("u1\ti1\t2\n") == "\t"

    def test_comma_line_stays_comma(self):
        assert _sniff_delimiter("u1,i1,2\n") == ","

    def test_single_column_defaults_to_comma(self):
        assert _sniff_delimiter("justonecolumn\n") == ","

    def test_whitespace_only_line_defaults_to_comma(self):
        assert _sniff_delimiter(" \t \n") == ","

    def test_trailing_tab_damage_does_not_flip_csv(self):
        # A comma row with trailing-tab damage must stay comma-separated.
        assert _sniff_delimiter("u1,i1,2\t\n") == ","

    def test_comment_with_tab_does_not_vote(self, tmp_path):
        path = write(tmp_path, "# a\tcomment\tfull\tof\ttabs\nu1,i1,3\n")
        graph = read_click_table(path)
        assert graph.get_click("u1", "i1") == 3

    def test_single_column_line_raises_not_misparses(self, tmp_path):
        path = write(tmp_path, "justonecolumn\n")
        with pytest.raises(MalformedRowError):
            read_click_table(path)


class TestMalformedRowError:
    def test_is_value_error_and_click_table_error(self, tmp_path):
        path = write(tmp_path, "u1,i1,3\nu2,i2\n")
        with pytest.raises(ValueError):
            read_click_table(path)
        with pytest.raises(ClickTableError):
            read_click_table(path)

    def test_carries_line_number_and_row(self, tmp_path):
        path = write(tmp_path, "u1,i1,3\nu2,i2,many\n")
        with pytest.raises(MalformedRowError) as excinfo:
            read_click_table(path)
        assert excinfo.value.line_number == 2
        assert excinfo.value.row == ["u2", "i2", "many"]

    def test_header_after_comments_still_detected(self, tmp_path):
        path = write(tmp_path, "# preamble\n\nUser_ID,Item_ID,Click\nu1,i1,3\n")
        assert read_click_table(path).get_click("u1", "i1") == 3


class TestIndexedIngestion:
    def test_matches_dict_path(self, tmp_path):
        path = write(tmp_path, "u1,i1,3\nu2,i1,1\nu1,i2,2\n")
        snapshot = read_click_table_indexed(path)
        assert edge_table(snapshot) == graph_table(read_click_table(path))

    def test_chunk_boundaries_do_not_change_result(self, tmp_path):
        rows = "".join(f"u{n % 5},i{n % 3},{1 + n % 4}\n" for n in range(20))
        path = write(tmp_path, rows)
        whole = read_click_table_indexed(path)
        chunked = read_click_table_indexed(path, chunk_records=3)
        assert edge_table(whole) == edge_table(chunked)

    def test_duplicates_coalesce_across_chunks(self, tmp_path):
        path = write(tmp_path, "u1,i1,1\nu2,i2,5\nu1,i1,2\n")
        snapshot = read_click_table_indexed(path, chunk_records=2)
        assert snapshot.num_edges == 2
        assert edge_table(snapshot)[("u1", "i1")] == 3

    def test_ids_in_first_seen_order(self, tmp_path):
        path = write(tmp_path, "zeta,i9,1\nalpha,i1,1\n")
        snapshot = read_click_table_indexed(path)
        assert list(snapshot.users) == ["zeta", "alpha"]

    def test_empty_file(self, tmp_path):
        snapshot = read_click_table_indexed(write(tmp_path, ""))
        assert snapshot.num_edges == 0


class TestArrayPersistence:
    def test_npz_round_trip(self, tmp_path, simple_graph):
        path = write_graph_npz(simple_graph, tmp_path / "graph.npz")
        loaded = read_graph_npz(path)
        assert edge_table(loaded) == graph_table(simple_graph)

    def test_npz_suffix_added(self, tmp_path, simple_graph):
        path = write_graph_npz(simple_graph, tmp_path / "graph")
        assert path.suffix == ".npz" and path.exists()

    def test_memmap_round_trip(self, tmp_path, simple_graph):
        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        loaded = read_graph_memmap(directory)
        assert edge_table(loaded) == graph_table(simple_graph)

    def test_memmap_arrays_are_memory_mapped(self, tmp_path, simple_graph):
        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        loaded = read_graph_memmap(directory)
        assert isinstance(loaded.user_idx, np.memmap)
        eager = read_graph_memmap(directory, mmap=False)
        assert not isinstance(eager.user_idx, np.memmap)

    def test_memmap_reload_extraction_equivalence(self, tmp_path, simple_graph):
        """CSR/CSC built off the memmap equal the in-memory snapshot's."""
        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        loaded = read_graph_memmap(directory)
        live = simple_graph.indexed()
        for built, expected in zip(loaded.csr_arrays(), live.csr_arrays()):
            assert np.array_equal(built, expected)
        for built, expected in zip(loaded.csc_arrays(), live.csc_arrays()):
            assert np.array_equal(built, expected)

    def test_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(ClickTableError):
            read_graph_memmap(tmp_path)

    def test_rejects_meta_id_mismatch(self, tmp_path, simple_graph):
        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        meta_path = directory / "meta.json"
        import json

        meta = json.loads(meta_path.read_text())
        meta["num_users"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ClickTableError):
            read_graph_memmap(directory)


class TestSchemaVersioning:
    """Unknown schema revisions raise a typed error on both array paths."""

    def test_npz_embeds_the_current_schema_version(self, tmp_path, simple_graph):
        path = write_graph_npz(simple_graph, tmp_path / "graph.npz")
        with np.load(path, allow_pickle=True) as archive:
            assert int(archive["schema_version"]) == 1

    def test_npz_unknown_schema_raises_typed_error(self, tmp_path, simple_graph):
        from repro.errors import SchemaVersionError

        path = write_graph_npz(simple_graph, tmp_path / "graph.npz")
        with np.load(path, allow_pickle=True) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["schema_version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(SchemaVersionError) as excinfo:
            read_graph_npz(path)
        assert excinfo.value.found == 99
        assert 1 in excinfo.value.supported
        assert isinstance(excinfo.value, ClickTableError)

    def test_npz_without_schema_field_reads_as_legacy(self, tmp_path, simple_graph):
        path = write_graph_npz(simple_graph, tmp_path / "graph.npz")
        with np.load(path, allow_pickle=True) as archive:
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "schema_version"
            }
        np.savez(path, **arrays)
        loaded = read_graph_npz(path)
        assert edge_table(loaded) == graph_table(simple_graph)

    def test_memmap_unknown_schema_raises_typed_error(self, tmp_path, simple_graph):
        import json

        from repro.errors import SchemaVersionError

        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(SchemaVersionError) as excinfo:
            read_graph_memmap(directory)
        assert excinfo.value.found == 99

    def test_non_integer_schema_version_raises(self, tmp_path, simple_graph):
        import json

        from repro.errors import SchemaVersionError

        directory = write_graph_memmap(simple_graph, tmp_path / "graph_dir")
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = "two"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(SchemaVersionError):
            read_graph_memmap(directory)


click_records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=9).map(lambda n: f"i{n}"),
        st.integers(min_value=1, max_value=5),
    ),
    max_size=40,
)


@given(click_records_strategy)
@settings(max_examples=40, deadline=None)
def test_property_text_and_array_round_trips_agree(tmp_path_factory, records):
    """write → read agrees across the dict, chunked and npz paths."""
    graph = BipartiteGraph()
    for user, item, clicks in records:
        graph.add_click(user, item, clicks)
    tmp_path = tmp_path_factory.mktemp("roundtrip")
    table = tmp_path / "clicks.csv"
    write_click_table(graph, table)
    via_dict = read_click_table(table)
    via_arrays = read_click_table_indexed(table, chunk_records=7)
    assert via_dict == graph
    assert edge_table(via_arrays) == graph_table(graph)
    npz = write_graph_npz(graph, tmp_path / "graph.npz")
    assert edge_table(read_graph_npz(npz)) == graph_table(graph)
