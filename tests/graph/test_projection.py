"""Tests for one-mode projections."""

import pytest

from repro.graph import BipartiteGraph
from repro.graph.projection import project_items, project_users, top_co_clicked

from ..conftest import make_biclique


@pytest.fixture()
def proj_graph():
    graph = BipartiteGraph()
    graph.add_click("a", "x", 3)
    graph.add_click("a", "y", 1)
    graph.add_click("b", "x", 2)
    graph.add_click("b", "y", 5)
    graph.add_click("c", "y", 1)
    return graph


class TestProjectUsers:
    def test_pair_counts(self, proj_graph):
        pairs = project_users(proj_graph)
        assert pairs[("a", "b")] == 2  # share x and y
        assert pairs[("a", "c")] == 1
        assert pairs[("b", "c")] == 1

    def test_keys_ordered(self, proj_graph):
        assert all(str(u) < str(v) for u, v in project_users(proj_graph))

    def test_min_common_filters(self, proj_graph):
        pairs = project_users(proj_graph, min_common=2)
        assert set(pairs) == {("a", "b")}

    def test_max_degree_skips_hubs(self):
        graph = BipartiteGraph()
        for index in range(20):
            graph.add_click(f"u{index}", "hub", 1)
        graph.add_click("u0", "niche", 1)
        graph.add_click("u1", "niche", 1)
        pairs = project_users(graph, max_degree=10)
        assert set(pairs) == {("u0", "u1")}  # only the niche co-click survives

    def test_biclique_is_complete(self):
        graph = BipartiteGraph()
        users, _ = make_biclique(graph, 4, 3)
        pairs = project_users(graph)
        assert len(pairs) == 6  # C(4, 2)
        assert all(count == 3 for count in pairs.values())

    def test_invalid_min_common(self, proj_graph):
        with pytest.raises(ValueError):
            project_users(proj_graph, min_common=0)


class TestProjectItems:
    def test_unweighted_counts_users(self, proj_graph):
        pairs = project_items(proj_graph)
        assert pairs[("x", "y")] == 2  # a and b clicked both

    def test_weighted_sums_min_clicks(self, proj_graph):
        pairs = project_items(proj_graph, weighted=True)
        # a: min(3, 1) = 1; b: min(2, 5) = 2.
        assert pairs[("x", "y")] == 3

    def test_max_degree_skips_crawlers(self):
        graph = BipartiteGraph()
        for index in range(15):
            graph.add_click("crawler", f"i{index}", 1)
        graph.add_click("u", "i0", 1)
        graph.add_click("u", "i1", 1)
        pairs = project_items(graph, max_degree=10)
        assert set(pairs) == {("i0", "i1")}

    def test_empty_graph(self, empty_graph):
        assert project_items(empty_graph) == {}


class TestTopCoClicked:
    def test_ranked_by_shared_users(self, proj_graph):
        ranked = top_co_clicked(proj_graph, "y", k=5)
        assert ranked[0] == ("x", 2)

    def test_k_truncates(self, proj_graph):
        assert len(top_co_clicked(proj_graph, "y", k=1)) == 1

    def test_anchor_excluded(self, proj_graph):
        assert all(item != "y" for item, _count in top_co_clicked(proj_graph, "y"))

    def test_invalid_k(self, proj_graph):
        with pytest.raises(ValueError):
            top_co_clicked(proj_graph, "y", k=-1)
