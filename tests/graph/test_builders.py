"""Tests for graph constructors and seed expansion."""

import pytest

from repro.errors import ClickTableError
from repro.graph import BipartiteGraph, from_click_records, from_edge_list, seed_expansion


class TestFromClickRecords:
    def test_builds_graph(self):
        graph = from_click_records([("u1", "i1", 3), ("u2", "i1", 1)])
        assert graph.num_users == 2
        assert graph.item_total_clicks("i1") == 4

    def test_repeated_rows_accumulate(self):
        graph = from_click_records([("u", "i", 1), ("u", "i", 2)])
        assert graph.get_click("u", "i") == 3
        assert graph.num_edges == 1

    def test_rejects_nonpositive_clicks(self):
        with pytest.raises(ClickTableError) as excinfo:
            from_click_records([("u", "i", 1), ("u2", "i", 0)])
        assert excinfo.value.line_number == 2

    def test_empty_input(self):
        graph = from_click_records([])
        assert len(graph) == 0


class TestFromEdgeList:
    def test_each_edge_one_click(self):
        graph = from_edge_list([("u", "i"), ("u", "j"), ("v", "i")])
        assert graph.total_clicks == 3
        assert graph.get_click("u", "i") == 1

    def test_duplicates_accumulate(self):
        graph = from_edge_list([("u", "i"), ("u", "i")])
        assert graph.get_click("u", "i") == 2


class TestSeedExpansion:
    @pytest.fixture()
    def chain_graph(self):
        """u1-i1-u2-i2-u3-i3: a path to test hop radii."""
        graph = BipartiteGraph()
        graph.add_click("u1", "i1", 1)
        graph.add_click("u2", "i1", 1)
        graph.add_click("u2", "i2", 1)
        graph.add_click("u3", "i2", 1)
        graph.add_click("u3", "i3", 1)
        return graph

    def test_zero_hops_keeps_only_seeds(self, chain_graph):
        sub = seed_expansion(chain_graph, seed_users=["u2"], hops=0)
        assert set(sub.users()) == {"u2"}
        assert sub.num_items == 0

    def test_one_hop_reaches_items(self, chain_graph):
        sub = seed_expansion(chain_graph, seed_users=["u2"], hops=1)
        assert set(sub.users()) == {"u2"}
        assert set(sub.items()) == {"i1", "i2"}

    def test_two_hops_reach_co_clicking_users(self, chain_graph):
        sub = seed_expansion(chain_graph, seed_users=["u2"], hops=2)
        assert set(sub.users()) == {"u1", "u2", "u3"}
        assert set(sub.items()) == {"i1", "i2"}
        assert not sub.has_item("i3")

    def test_item_seed(self, chain_graph):
        sub = seed_expansion(chain_graph, seed_items=["i3"], hops=1)
        assert set(sub.users()) == {"u3"}

    def test_unknown_seeds_ignored(self, chain_graph):
        sub = seed_expansion(chain_graph, seed_users=["ghost"], hops=2)
        assert len(sub) == 0

    def test_negative_hops_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            seed_expansion(chain_graph, seed_users=["u1"], hops=-1)

    def test_edges_are_induced(self, chain_graph):
        """Edges between reached nodes are preserved even across BFS layers."""
        sub = seed_expansion(chain_graph, seed_users=["u2"], hops=2)
        assert sub.has_edge("u1", "i1")
        assert sub.has_edge("u3", "i2")
