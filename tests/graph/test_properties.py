"""Property-based tests of the BipartiteGraph invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BipartiteGraph, connected_components, from_click_records

# Click records over a small id universe so collisions (accumulation) and
# shared neighbourhoods actually occur.
records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(lambda n: f"u{n}"),
        st.integers(min_value=0, max_value=8).map(lambda n: f"i{n}"),
        st.integers(min_value=1, max_value=20),
    ),
    max_size=60,
)


@given(records)
def test_total_clicks_equals_record_sum(rows):
    graph = from_click_records(rows)
    assert graph.total_clicks == sum(clicks for _u, _i, clicks in rows)


@given(records)
def test_adjacency_mirrors_are_consistent(rows):
    graph = from_click_records(rows)
    for user, item, clicks in graph.edges():
        assert graph.item_neighbors(item)[user] == clicks
    assert graph.num_edges == sum(graph.item_degree(i) for i in graph.items())


@given(records)
def test_degree_totals_match_both_sides(rows):
    graph = from_click_records(rows)
    user_total = sum(graph.user_total_clicks(u) for u in graph.users())
    item_total = sum(graph.item_total_clicks(i) for i in graph.items())
    assert user_total == item_total == graph.total_clicks


@given(records)
def test_copy_equals_original(rows):
    graph = from_click_records(rows)
    assert graph.copy() == graph


@given(records, st.randoms(use_true_random=False))
def test_removal_keeps_mirrors_consistent(rows, rng):
    graph = from_click_records(rows)
    users = sorted(graph.users())
    items = sorted(graph.items())
    for user in users:
        if rng.random() < 0.5:
            graph.remove_user(user)
    for item in items:
        if graph.has_item(item) and rng.random() < 0.5:
            graph.remove_item(item)
    # After arbitrary removals every edge must still be mirrored and the
    # click accounting intact.
    recomputed = sum(clicks for _u, _i, clicks in graph.edges())
    assert recomputed == graph.total_clicks
    for user, item, clicks in graph.edges():
        assert graph.item_neighbors(item)[user] == clicks


@given(records)
@settings(max_examples=50)
def test_components_partition_the_graph(rows):
    graph = from_click_records(rows)
    components = connected_components(graph)
    seen_users = [u for users, _items in components for u in users]
    seen_items = [i for _users, items in components for i in items]
    assert sorted(seen_users) == sorted(graph.users())
    assert sorted(seen_items) == sorted(graph.items())
    # Disjointness.
    assert len(seen_users) == len(set(seen_users))
    assert len(seen_items) == len(set(seen_items))


@given(records)
@settings(max_examples=50)
def test_subgraph_is_subset(rows):
    graph = from_click_records(rows)
    keep_users = {u for u in graph.users() if str(u) < "u5"}
    sub = graph.subgraph(keep_users, None)
    for user, item, clicks in sub.edges():
        assert graph.get_click(user, item) == clicks
    assert set(sub.users()) == keep_users
