"""Tests for structural views: components and two-hop neighbourhoods."""

from repro.graph import (
    BipartiteGraph,
    connected_components,
    two_hop_item_neighbors,
    two_hop_user_neighbors,
)
from repro.graph.views import common_item_neighbors, common_user_neighbors


class TestConnectedComponents:
    def test_single_component(self, simple_graph):
        components = connected_components(simple_graph)
        assert len(components) == 1
        users, items = components[0]
        assert users == {"u1", "u2", "u3"}
        assert items == {"i1", "i2", "i3"}

    def test_two_components_sorted_largest_first(self):
        graph = BipartiteGraph()
        graph.add_click("a", "x", 1)
        graph.add_click("b", "y", 1)
        graph.add_click("c", "y", 1)
        components = connected_components(graph)
        assert len(components) == 2
        assert len(components[0][0]) == 2  # the {b, c} x {y} component first

    def test_isolated_nodes_form_components(self):
        graph = BipartiteGraph()
        graph.add_user("lonely_user")
        graph.add_item("lonely_item")
        components = connected_components(graph)
        assert len(components) == 2

    def test_empty(self, empty_graph):
        assert connected_components(empty_graph) == []

    def test_deterministic_order(self, small):
        first = connected_components(small.graph)
        second = connected_components(small.graph)
        assert first == second


class TestTwoHop:
    def test_user_two_hop_counts(self, simple_graph):
        counts = two_hop_user_neighbors(simple_graph, "u1")
        # u1 shares i1 with u2 and i2 with u3.
        assert counts == {"u2": 1, "u3": 1}

    def test_item_two_hop_counts(self, simple_graph):
        counts = two_hop_item_neighbors(simple_graph, "i1")
        # i1 shares u1 with i2 and u2 with i3.
        assert counts == {"i2": 1, "i3": 1}

    def test_self_excluded(self, simple_graph):
        assert "u1" not in two_hop_user_neighbors(simple_graph, "u1")

    def test_multiple_shared_items(self):
        graph = BipartiteGraph()
        for item in ("a", "b", "c"):
            graph.add_click("u", item, 1)
            graph.add_click("v", item, 1)
        assert two_hop_user_neighbors(graph, "u") == {"v": 3}


class TestCommonNeighbors:
    def test_common_items(self, simple_graph):
        assert common_item_neighbors(simple_graph, "u1", "u2") == {"i1"}
        assert common_item_neighbors(simple_graph, "u2", "u3") == {"i3"}

    def test_common_users(self, simple_graph):
        assert common_user_neighbors(simple_graph, "i1", "i2") == {"u1"}

    def test_no_overlap(self):
        graph = BipartiteGraph()
        graph.add_click("u", "a", 1)
        graph.add_click("v", "b", 1)
        assert common_item_neighbors(graph, "u", "v") == set()
