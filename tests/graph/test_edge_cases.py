"""Edge-case tests: exotic identifiers, extreme weights, degenerate shapes."""

from repro.config import RICDParams
from repro.core import RICDDetector
from repro.core.extraction import extract_groups
from repro.graph import BipartiteGraph, read_click_table, write_click_table


class TestExoticIdentifiers:
    def test_unicode_ids(self, tmp_path):
        graph = BipartiteGraph()
        graph.add_click("用户一", "商品①", 3)
        graph.add_click("ユーザー", "商品①", 2)
        path = tmp_path / "unicode.csv"
        write_click_table(graph, path)
        assert read_click_table(path) == graph

    def test_integer_ids(self):
        graph = BipartiteGraph()
        graph.add_click(1, 100, 5)
        graph.add_click(2, 100, 5)
        assert graph.item_degree(100) == 2
        groups = extract_groups(graph, RICDParams(k1=2, k2=1))
        assert isinstance(groups, list)

    def test_tuple_ids(self):
        graph = BipartiteGraph()
        graph.add_click(("shop", 1), ("sku", 9), 2)
        assert graph.get_click(("shop", 1), ("sku", 9)) == 2

    def test_ids_with_commas_roundtrip_via_tsv(self, tmp_path):
        graph = BipartiteGraph()
        graph.add_click("user, the first", "item, deluxe", 1)
        path = tmp_path / "commas.csv"
        write_click_table(graph, path)  # csv quoting must handle the commas
        assert read_click_table(path) == graph


class TestExtremeWeights:
    def test_huge_click_counts(self):
        graph = BipartiteGraph()
        graph.add_click("u", "i", 10**12)
        assert graph.total_clicks == 10**12
        graph.add_click("u", "i", 1)
        assert graph.get_click("u", "i") == 10**12 + 1

    def test_detector_survives_degenerate_weights(self):
        graph = BipartiteGraph()
        graph.add_click("whale", "item", 10**9)
        for index in range(30):
            graph.add_click(f"u{index}", "item", 1)
        result = RICDDetector(params=RICDParams(k1=2, k2=2)).detect(graph)
        assert isinstance(result.suspicious_users, set)


class TestDegenerateShapes:
    def test_single_edge_graph(self):
        graph = BipartiteGraph()
        graph.add_click("u", "i", 1)
        result = RICDDetector(params=RICDParams(k1=2, k2=2)).detect(graph)
        assert not result.suspicious_users

    def test_star_graph(self):
        graph = BipartiteGraph()
        for index in range(100):
            graph.add_click(f"u{index}", "hub", 1)
        result = RICDDetector(params=RICDParams(k1=2, k2=2)).detect(graph)
        assert not result.suspicious_users  # a star holds no biclique core

    def test_perfect_bipartite_clique_detected_structurally(self):
        graph = BipartiteGraph()
        for user in range(6):
            for item in range(6):
                graph.add_click(f"u{user}", f"i{item}", 20)
        groups = extract_groups(graph, RICDParams(k1=6, k2=6))
        assert len(groups) == 1

    def test_empty_graph_detection(self):
        result = RICDDetector().detect(BipartiteGraph())
        assert not result.suspicious_users
        assert not result.groups
