"""Unit tests for the BipartiteGraph core container."""

import pytest

from repro.errors import DuplicateNodeError, NodeNotFoundError
from repro.graph import BipartiteGraph


class TestNodeManagement:
    def test_add_user_and_item(self, empty_graph):
        empty_graph.add_user("u")
        empty_graph.add_item("i")
        assert empty_graph.has_user("u")
        assert empty_graph.has_item("i")
        assert empty_graph.num_users == 1
        assert empty_graph.num_items == 1

    def test_add_user_idempotent(self, empty_graph):
        empty_graph.add_click("u", "i", 2)
        empty_graph.add_user("u")  # must not wipe adjacency
        assert empty_graph.user_degree("u") == 1

    def test_add_strict_raises_on_duplicate(self, empty_graph):
        empty_graph.add_user_strict("u")
        with pytest.raises(DuplicateNodeError):
            empty_graph.add_user_strict("u")
        empty_graph.add_item_strict("i")
        with pytest.raises(DuplicateNodeError):
            empty_graph.add_item_strict("i")

    def test_same_id_both_sides(self, empty_graph):
        """User and item namespaces are independent."""
        empty_graph.add_user("x")
        empty_graph.add_item("x")
        empty_graph.add_click("x", "x", 1)
        assert empty_graph.get_click("x", "x") == 1

    def test_remove_user_cascades_edges(self, simple_graph):
        simple_graph.remove_user("u1")
        assert not simple_graph.has_user("u1")
        assert simple_graph.item_degree("i1") == 1
        assert simple_graph.item_degree("i2") == 1
        assert simple_graph.total_clicks == 9

    def test_remove_item_cascades_edges(self, simple_graph):
        simple_graph.remove_item("i3")
        assert not simple_graph.has_item("i3")
        assert simple_graph.user_degree("u2") == 1
        assert simple_graph.user_degree("u3") == 1

    def test_remove_missing_raises(self, empty_graph):
        with pytest.raises(NodeNotFoundError):
            empty_graph.remove_user("ghost")
        with pytest.raises(NodeNotFoundError):
            empty_graph.remove_item("ghost")

    def test_node_not_found_error_is_keyerror(self, empty_graph):
        with pytest.raises(KeyError):
            empty_graph.user_neighbors("ghost")


class TestEdges:
    def test_add_click_accumulates(self, empty_graph):
        empty_graph.add_click("u", "i", 2)
        empty_graph.add_click("u", "i", 3)
        assert empty_graph.get_click("u", "i") == 5
        assert empty_graph.num_edges == 1
        assert empty_graph.total_clicks == 5

    def test_add_click_rejects_nonpositive(self, empty_graph):
        with pytest.raises(ValueError):
            empty_graph.add_click("u", "i", 0)
        with pytest.raises(ValueError):
            empty_graph.add_click("u", "i", -1)

    def test_set_click_overwrites(self, empty_graph):
        empty_graph.add_click("u", "i", 7)
        empty_graph.set_click("u", "i", 2)
        assert empty_graph.get_click("u", "i") == 2
        assert empty_graph.total_clicks == 2

    def test_set_click_zero_deletes_edge(self, empty_graph):
        empty_graph.add_click("u", "i", 7)
        empty_graph.set_click("u", "i", 0)
        assert not empty_graph.has_edge("u", "i")
        assert empty_graph.total_clicks == 0
        # Nodes survive edge deletion.
        assert empty_graph.has_user("u")
        assert empty_graph.has_item("i")

    def test_set_click_rejects_negative(self, empty_graph):
        with pytest.raises(ValueError):
            empty_graph.set_click("u", "i", -1)

    def test_set_click_creates_edge_on_new_nodes(self, empty_graph):
        empty_graph.set_click("u", "i", 4)
        assert empty_graph.get_click("u", "i") == 4

    def test_remove_edge(self, simple_graph):
        simple_graph.remove_edge("u1", "i1")
        assert not simple_graph.has_edge("u1", "i1")
        assert simple_graph.has_user("u1")

    def test_get_click_default(self, simple_graph):
        assert simple_graph.get_click("u1", "i3") == 0
        assert simple_graph.get_click("ghost", "i1", default=-1) == -1

    def test_mirrored_adjacency(self, simple_graph):
        """User- and item-side views must always agree."""
        for user, item, clicks in simple_graph.edges():
            assert simple_graph.item_neighbors(item)[user] == clicks


class TestAccessors:
    def test_degrees_and_totals(self, simple_graph):
        assert simple_graph.user_degree("u1") == 2
        assert simple_graph.user_total_clicks("u1") == 4
        assert simple_graph.item_degree("i1") == 2
        assert simple_graph.item_total_clicks("i1") == 5

    def test_counts(self, simple_graph):
        assert simple_graph.num_users == 3
        assert simple_graph.num_items == 3
        assert simple_graph.num_edges == 6
        assert simple_graph.total_clicks == 13
        assert len(simple_graph) == 6

    def test_edges_iteration_complete(self, simple_graph):
        edges = set(simple_graph.edges())
        assert ("u1", "i1", 3) in edges
        assert len(edges) == 6


class TestDerivedGraphs:
    def test_copy_is_independent(self, simple_graph):
        clone = simple_graph.copy()
        clone.remove_user("u1")
        assert simple_graph.has_user("u1")
        assert clone != simple_graph

    def test_copy_preserves_totals(self, simple_graph):
        clone = simple_graph.copy()
        assert clone == simple_graph
        assert clone.total_clicks == simple_graph.total_clicks

    def test_subgraph_induces(self, simple_graph):
        sub = simple_graph.subgraph({"u1", "u2"}, {"i1"})
        assert sub.num_users == 2
        assert sub.num_items == 1
        assert sub.get_click("u1", "i1") == 3
        assert not sub.has_edge("u1", "i2")

    def test_subgraph_none_keeps_side(self, simple_graph):
        sub = simple_graph.subgraph(users=None, items={"i1"})
        assert sub.num_users == 3
        assert sub.num_items == 1

    def test_subgraph_ignores_unknown_ids(self, simple_graph):
        sub = simple_graph.subgraph({"u1", "ghost"}, {"i1", "phantom"})
        assert sub.num_users == 1
        assert sub.num_items == 1

    def test_subgraph_keeps_isolated_requested_items(self, simple_graph):
        sub = simple_graph.subgraph({"u1"}, {"i3"})
        assert sub.has_item("i3")
        assert sub.item_degree("i3") == 0


class TestDunder:
    def test_equality(self, simple_graph):
        assert simple_graph == simple_graph.copy()
        other = simple_graph.copy()
        other.add_click("u1", "i1", 1)
        assert simple_graph != other

    def test_equality_other_type(self, simple_graph):
        assert simple_graph != "not a graph"

    def test_unhashable(self, simple_graph):
        with pytest.raises(TypeError):
            hash(simple_graph)

    def test_repr_mentions_counts(self, simple_graph):
        text = repr(simple_graph)
        assert "users=3" in text
        assert "clicks=13" in text


class TestSetClickInvalidation:
    """Regression pins for the cache-invalidation bugfix sweep."""

    def test_noop_set_click_does_not_bump_version(self, simple_graph):
        before = simple_graph.version
        current = simple_graph.get_click("u1", "i1")
        simple_graph.set_click("u1", "i1", current)
        assert simple_graph.version == before

    def test_noop_set_click_keeps_indexed_snapshot_valid(self, simple_graph):
        pytest.importorskip("numpy")
        snapshot = simple_graph.indexed()
        simple_graph.set_click("u1", "i1", simple_graph.get_click("u1", "i1"))
        assert simple_graph.indexed() is snapshot

    def test_zero_set_on_absent_edge_is_noop(self, simple_graph):
        before = simple_graph.version
        simple_graph.set_click("u1", "i3", 0)  # both endpoints exist, no edge
        assert simple_graph.version == before
        assert not simple_graph.has_edge("u1", "i3")

    def test_zero_set_never_creates_endpoints(self, empty_graph):
        before = empty_graph.version
        empty_graph.set_click("ghost-u", "ghost-i", 0)
        assert not empty_graph.has_user("ghost-u")
        assert not empty_graph.has_item("ghost-i")
        assert empty_graph.version == before


class TestDeltaEventFlags:
    """The `previous == 0` new-edge flag must hold whenever the edge is
    new — including when both endpoints already existed."""

    @staticmethod
    def _snapshots_equal(graph):
        pytest.importorskip("numpy")
        from repro.graph.indexed import IndexedGraph

        # apply_delta appends new nodes after the base ordering (its
        # documented contract), so equivalence is canonical content —
        # node sets and the weighted edge set — not raw array order.
        def content(snapshot):
            edges = {
                (snapshot.users[row], snapshot.items[column], weight)
                for row, column, weight in zip(
                    snapshot.user_idx.tolist(),
                    snapshot.item_idx.tolist(),
                    snapshot.clicks.tolist(),
                )
            }
            return sorted(snapshot.users), sorted(snapshot.items), edges

        delta_built = graph.indexed()
        rebuilt = IndexedGraph.from_graph(graph)
        assert content(delta_built) == content(rebuilt)

    def test_add_click_new_edge_existing_endpoints(self, simple_graph):
        pytest.importorskip("numpy")
        simple_graph.indexed()  # arm the delta buffer
        simple_graph.add_click("u1", "i3", 2)  # endpoints exist, edge is new
        assert simple_graph._delta[-1] == ("edge", "u1", "i3", 2, True)
        self._snapshots_equal(simple_graph)

    def test_add_click_existing_edge_is_not_flagged_new(self, simple_graph):
        pytest.importorskip("numpy")
        simple_graph.indexed()
        simple_graph.add_click("u1", "i1", 2)
        assert simple_graph._delta[-1] == ("edge", "u1", "i1", 2, False)
        self._snapshots_equal(simple_graph)

    def test_set_click_increase_on_new_edge_existing_endpoints(self, simple_graph):
        pytest.importorskip("numpy")
        simple_graph.indexed()
        simple_graph.set_click("u2", "i2", 4)  # endpoints exist, edge is new
        assert simple_graph._delta[-1] == ("edge", "u2", "i2", 4, True)
        self._snapshots_equal(simple_graph)

    def test_mixed_delta_burst_matches_rebuild(self, simple_graph):
        pytest.importorskip("numpy")
        simple_graph.indexed()
        simple_graph.add_click("u9", "i9", 1)      # both endpoints new
        simple_graph.add_click("u9", "i1", 3)      # new edge, one old endpoint
        simple_graph.set_click("u1", "i1", 11)     # increase on existing edge
        simple_graph.add_user("u10")               # idle node
        simple_graph.set_click("u10", "i9", 2)     # new edge from idle node
        self._snapshots_equal(simple_graph)
