"""Unit and property tests for the ``repro.obs`` recorder.

The properties pinned here are the subsystem's contract with every
instrumentation site: spans nest without double-counting, counters merge
additively across workers, a disabled recorder leaves no trace anywhere,
and reports survive the JSON round-trip byte-exactly.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import Recorder, SpanStat, TraceReport


class TestDisabled:
    def test_no_recorder_by_default(self):
        assert obs.current() is None

    def test_helpers_are_noops_when_disabled(self):
        # Must not raise, must not create any recorder.
        with obs.span("anything"):
            obs.count("anything", 5)
            obs.gauge("anything", "x")
        assert obs.current() is None

    def test_disabled_span_is_shared_singleton(self):
        # The no-op span is one shared object: no per-call allocation on
        # the disabled path.
        assert obs.span("a") is obs.span("b")

    def test_disabled_block_adds_no_keys_to_outer_recorder(self):
        recorder = Recorder()
        with obs.recording(recorder):
            obs.count("inside")
        # After the scope exits, instrumentation goes nowhere.
        with obs.span("after"):
            obs.count("after")
        assert set(recorder.counters) == {"inside"}
        assert recorder.spans == {}


class TestNesting:
    def test_dotted_paths(self):
        recorder = Recorder()
        with obs.recording(recorder):
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
                with obs.span("b"):
                    pass
        assert set(recorder.spans) == {"a", "a.b", "a.b.c"}
        assert recorder.spans["a.b"][1] == 2

    def test_inner_recorder_shadows_outer(self):
        outer, inner = Recorder(), Recorder()
        with obs.recording(outer):
            obs.count("seen")
            with obs.recording(inner):
                obs.count("seen")
            obs.count("seen")
        assert outer.counters["seen"] == 2
        assert inner.counters["seen"] == 1

    def test_exception_still_records_and_unwinds(self):
        recorder = Recorder()
        try:
            with obs.recording(recorder):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert set(recorder.spans) == {"outer", "outer.inner"}
        assert obs.current() is None
        assert recorder._stack == []

    @given(
        st.lists(
            st.sampled_from(["push_a", "push_b", "pop"]), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_never_double_counts(self, script):
        """Every entered interval lands exactly once in exactly one key."""
        recorder = Recorder()
        stack = []
        entered = 0
        with obs.recording(recorder):
            for op in script:
                if op == "pop":
                    if stack:
                        stack.pop().__exit__(None, None, None)
                else:
                    cm = obs.span(op[-1])
                    cm.__enter__()
                    stack.append(cm)
                    entered += 1
            while stack:
                stack.pop().__exit__(None, None, None)
        total_calls = sum(cell[1] for cell in recorder.spans.values())
        assert total_calls == entered
        assert all(cell[0] >= 0 for cell in recorder.spans.values())


counter_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c.d", "e"]),
    st.integers(min_value=0, max_value=1_000),
    max_size=4,
)
span_maps = st.dictionaries(
    st.sampled_from(["x", "x.y", "z"]),
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.integers(min_value=1, max_value=100),
    ),
    max_size=3,
)


class TestMerge:
    @given(st.lists(counter_maps, min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_counters_additive_across_workers(self, worker_counts):
        parent = Recorder()
        for counts in worker_counts:
            worker = Recorder()
            for name, value in counts.items():
                worker.count(name, value)
            parent.merge(worker)
        expected: dict = {}
        for counts in worker_counts:
            for name, value in counts.items():
                expected[name] = expected.get(name, 0) + value
        assert parent.counters == expected

    @given(st.lists(span_maps, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_spans_additive_across_workers(self, worker_spans):
        parent = Recorder()
        for spans in worker_spans:
            worker = Recorder()
            for path, (seconds, calls) in spans.items():
                worker.spans[path] = [seconds, calls]
            parent.merge(worker)
        for path in {p for spans in worker_spans for p in spans}:
            seconds = sum(s[path][0] for s in worker_spans if path in s)
            calls = sum(s[path][1] for s in worker_spans if path in s)
            assert parent.spans[path][0] == seconds
            assert parent.spans[path][1] == calls

    def test_merge_accepts_exported_dict(self):
        worker = Recorder()
        with obs.recording(worker):
            with obs.span("stage"):
                obs.count("work", 3)
                obs.gauge("engine", "sparse")
        parent = Recorder()
        parent.merge(worker.report().to_dict())
        parent.merge(worker)  # list-form spans too
        assert parent.counters["work"] == 6
        assert parent.spans["stage"][1] == 2
        assert parent.gauges["engine"] == "sparse"

    def test_gauges_last_write_wins(self):
        parent = Recorder()
        first, second = Recorder(), Recorder()
        first.gauge("engine", "reference")
        second.gauge("engine", "sparse")
        parent.merge(first)
        parent.merge(second)
        assert parent.gauges["engine"] == "sparse"


class TestReport:
    def test_report_freezes_state(self):
        recorder = Recorder()
        with obs.recording(recorder):
            with obs.span("s"):
                obs.count("c", 2)
        report = recorder.report()
        assert isinstance(report.spans["s"], SpanStat)
        assert report.spans["s"].calls == 1
        assert report.counters == {"c": 2}

    @given(counter_maps, st.dictionaries(st.sampled_from(["g1", "g2"]), st.text(max_size=8), max_size=2))
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip(self, counters, gauges):
        report = TraceReport(
            spans={"a.b": SpanStat(seconds=1.5, calls=3)},
            counters=dict(counters),
            gauges=dict(gauges),
            meta={"command": "detect"},
        )
        assert TraceReport.from_json(report.to_json()) == report

    def test_json_is_sorted_and_stable(self):
        report = TraceReport(counters={"b": 1, "a": 2})
        text = report.to_json()
        assert text == TraceReport.from_json(text).to_json()
        assert json.loads(text)["counters"] == {"a": 2, "b": 1}

    def test_render_mentions_all_sections(self):
        recorder = Recorder()
        with obs.recording(recorder):
            with obs.span("stage"):
                obs.count("events", 4)
            obs.gauge("engine", "reference")
        recorder.meta["command"] = "test"
        text = recorder.report().render()
        assert "stage" in text
        assert "events" in text
        assert "engine" in text
        assert "command=test" in text

    def test_empty_trace_renders(self):
        assert "empty" in TraceReport().render()
