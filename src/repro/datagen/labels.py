"""Ground-truth containers for injected attacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .attacks import AttackGroup

__all__ = ["GroundTruth"]

Node = Hashable


@dataclass
class GroundTruth:
    """Exact labels of an injected-attack scenario.

    Attributes
    ----------
    abnormal_users:
        All crowd-worker accounts, across every injected group.
    abnormal_items:
        All target items, across every injected group.
    groups:
        The injected :class:`~repro.datagen.attacks.AttackGroup` objects,
        preserving per-group membership (used by group-level diagnostics).
    """

    abnormal_users: set[Node] = field(default_factory=set)
    abnormal_items: set[Node] = field(default_factory=set)
    groups: list["AttackGroup"] = field(default_factory=list)

    @property
    def abnormal_nodes(self) -> set[Node]:
        """Union of abnormal users and items.

        User and item namespaces never collide in generated scenarios
        (ids are prefixed ``u``/``w`` vs ``i``/``t``), so the union is safe.
        """
        return self.abnormal_users | self.abnormal_items

    def is_abnormal_user(self, user: Node) -> bool:
        """Whether ``user`` is a labelled crowd worker."""
        return user in self.abnormal_users

    def is_abnormal_item(self, item: Node) -> bool:
        """Whether ``item`` is a labelled attack target."""
        return item in self.abnormal_items

    def merge(self, other: "GroundTruth") -> "GroundTruth":
        """Union of two label sets (e.g. attacks injected in two waves)."""
        return GroundTruth(
            abnormal_users=self.abnormal_users | other.abnormal_users,
            abnormal_items=self.abnormal_items | other.abnormal_items,
            groups=[*self.groups, *other.groups],
        )

    def __repr__(self) -> str:
        return (
            f"GroundTruth(users={len(self.abnormal_users)}, "
            f"items={len(self.abnormal_items)}, groups={len(self.groups)})"
        )
