"""Synthetic marketplace and attack-injection substrate.

The paper's evaluation runs on a proprietary Taobao click table (20M users,
4M items, 90M click records).  This subpackage is the documented
substitution (see DESIGN.md §2): a generator that reproduces the published
*marginals* of that table — heavy-tailed (Pareto 80/20) item popularity,
the Table II per-user and per-item click statistics — at a configurable
scale, plus an attack injector that implements the paper's own attack
model (Section III-A, Assumptions 1-3, the Eq. 2-3 optimal click strategy
and camouflage behaviour).

Because attacks are injected, ground truth is exact by construction, which
is *stronger* than the paper's expert-sampled labels; the labelling bias of
the paper is reproduced separately in :mod:`repro.eval.groundtruth`.
"""

from .attacks import (
    ATTACK_FAMILIES,
    AttackConfig,
    AttackGroup,
    AttackPlan,
    ClickBudget,
    ObservedDefense,
    family_names,
    inject_attacks,
    inject_family,
    plan_family,
)
from .evasion import EvasionConfig, inject_evasive_campaign
from .distributions import (
    pareto_share,
    sample_heavy_tail_counts,
    zipf_weights,
)
from .labels import GroundTruth
from .marketplace import MarketplaceConfig, generate_marketplace
from .streams import ReplayResult, StreamConfig, replay, scenario_to_stream
from .scenario import (
    Scenario,
    clean_marketplace,
    generate_scenario,
    marketplace_preset,
    paper_scenario,
    small_scenario,
    tiny_scenario,
)

__all__ = [
    "AttackConfig",
    "AttackGroup",
    "AttackPlan",
    "ClickBudget",
    "ObservedDefense",
    "ATTACK_FAMILIES",
    "family_names",
    "plan_family",
    "inject_family",
    "inject_attacks",
    "EvasionConfig",
    "inject_evasive_campaign",
    "GroundTruth",
    "MarketplaceConfig",
    "generate_marketplace",
    "Scenario",
    "clean_marketplace",
    "marketplace_preset",
    "generate_scenario",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
    "StreamConfig",
    "scenario_to_stream",
    "replay",
    "ReplayResult",
    "zipf_weights",
    "pareto_share",
    "sample_heavy_tail_counts",
]
