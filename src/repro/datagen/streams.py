"""Click streams: replay a scenario as day-structured batches.

The paper's future-work setting (Section VIII) and its Fig. 10 case study
are both *temporal*: clicks arrive day by day, attacks ramp up before a
campaign, and early detection saves losses.  The click *table* has no
timestamps, so this module assigns them generatively:

* organic records are spread uniformly over the horizon (shopping noise);
* each attack group runs a campaign window — fake clicks land between its
  start and end day, ramping like the Fig. 10 timeline.

The output is a list of per-day :class:`~repro.core.incremental.ClickBatch`
objects that an :class:`~repro.core.incremental.IncrementalRICD` can
consume; :func:`replay` drives that loop and reports the detection day per
group, which is the headline metric of online detection ("the earlier
these attacks are detected ... the more losses can be reduced").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.incremental import ClickBatch, IncrementalRICD
from ..errors import DataGenError
from .scenario import Scenario

__all__ = [
    "StreamConfig",
    "scenario_to_stream",
    "scenario_to_events",
    "replay",
    "ReplayResult",
]


@dataclass(frozen=True)
class StreamConfig:
    """Temporal layout of the stream.

    Parameters
    ----------
    days:
        Horizon length.
    campaign_start, campaign_end:
        Window (1-based, inclusive) during which attack groups place their
        fake clicks; defaults follow the Fig. 10 narrative (ramp from day
        3, done by day 8).
    seed:
        Timestamp-assignment seed.
    """

    days: int = 10
    campaign_start: int = 3
    campaign_end: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise DataGenError("days must be >= 1")
        if not 1 <= self.campaign_start <= self.campaign_end <= self.days:
            raise DataGenError(
                "require 1 <= campaign_start <= campaign_end <= days"
            )


def scenario_to_stream(
    scenario: Scenario, config: StreamConfig | None = None
) -> list[ClickBatch]:
    """Split the scenario's click records into one batch per day.

    Organic records (everything not in a group's ``fake_edges``) are
    assigned uniform-random days; each group's fake records are assigned
    days within the campaign window with linearly increasing probability
    (the Fig. 10 ramp).  Every record keeps its full click weight — the
    stream replays the *same* final graph the batch detector would see.
    """
    config = config or StreamConfig()
    rng = np.random.default_rng(config.seed)
    fake_pairs = {
        (user, item)
        for group in scenario.truth.groups
        for user, item, _clicks in group.fake_edges
    }

    per_day: list[list[tuple]] = [[] for _day in range(config.days)]
    for user, item, clicks in scenario.graph.edges():
        if (user, item) in fake_pairs:
            continue
        day = int(rng.integers(0, config.days))
        per_day[day].append((user, item, clicks))

    window = np.arange(config.campaign_start, config.campaign_end + 1)
    ramp = window - config.campaign_start + 1.0
    ramp /= ramp.sum()
    for group in scenario.truth.groups:
        for user, item, clicks in group.fake_edges:
            day = int(rng.choice(window, p=ramp)) - 1
            per_day[day].append((user, item, clicks))

    return [ClickBatch.of(records) for records in per_day]


def scenario_to_events(
    scenario: Scenario,
    config: StreamConfig | None = None,
    seconds_per_day: float = 86_400.0,
):
    """The scenario's stream as timestamped service events, day-ordered.

    The event-level adapter for :class:`~repro.serve.DetectionService`:
    each day's records (exactly the batches :func:`scenario_to_stream`
    produces) become :class:`~repro.serve.queue.ClickEvent` objects with
    event-time stamps spread uniformly through the day, so a simulated
    clock replay sees the same intra-day arrival structure a production
    feed would.
    """
    from ..serve.queue import ClickEvent

    config = config or StreamConfig()
    batches = scenario_to_stream(scenario, config)
    rng = np.random.default_rng(config.seed + 1)
    events = []
    for day_index, batch in enumerate(batches):
        day_start = day_index * seconds_per_day
        offsets = np.sort(rng.uniform(0.0, seconds_per_day, size=len(batch)))
        for (user, item, clicks), offset in zip(batch.records, offsets):
            events.append(
                ClickEvent(user, item, clicks, timestamp=day_start + float(offset))
            )
    return events


@dataclass
class ReplayResult:
    """Outcome of replaying a stream through the online detector.

    Attributes
    ----------
    detection_day:
        ``{group_id: day}`` — first day (1-based) on which at least 80% of
        the group's workers were flagged; groups never reaching that bar
        are absent.
    final_flagged_users:
        The online state's suspicious users after the last batch.
    days:
        Horizon replayed.
    batch_seconds:
        Wall-clock seconds each day's ``ingest`` call took (graph apply
        plus any recheck it triggered) — one entry per day, so benchmarks
        can report ingest-latency percentiles instead of one end-state
        number.
    recheck_days:
        Days (1-based) on which the detector actually ran a recheck.
    recheck_lag_days:
        Per day, how many days its batch waited until the next recheck
        covered it (0 = rechecked the day it arrived).  Days never covered
        by a recheck within the horizon are absent.
    """

    detection_day: dict[int, int]
    final_flagged_users: set
    days: int
    batch_seconds: list[float] = field(default_factory=list)
    recheck_days: list[int] = field(default_factory=list)
    recheck_lag_days: dict[int, int] = field(default_factory=dict)


def replay(
    scenario: Scenario,
    online: IncrementalRICD,
    config: StreamConfig | None = None,
    detection_bar: float = 0.8,
) -> ReplayResult:
    """Feed the scenario's stream through ``online`` day by day.

    Parameters
    ----------
    online:
        A freshly constructed detector over an *empty-ish* or clean graph;
        the stream supplies all click volume.  (Constructing it over the
        scenario graph would leak the future.)
    detection_bar:
        Worker-coverage fraction that counts as "group detected".
    """
    if not 0.0 < detection_bar <= 1.0:
        raise DataGenError("detection_bar must lie in (0, 1]")
    config = config or StreamConfig()
    batches = scenario_to_stream(scenario, config)
    detection_day: dict[int, int] = {}
    batch_seconds: list[float] = []
    recheck_days: list[int] = []
    recheck_lag_days: dict[int, int] = {}
    pending_days: list[int] = []
    result = online.current_result
    for day_index, batch in enumerate(batches, start=1):
        pending_days.append(day_index)
        started = time.perf_counter()
        result = online.ingest(batch)
        batch_seconds.append(time.perf_counter() - started)
        if online.batches_since_recheck == 0:
            # The ingest triggered (or absorbed) a recheck: every pending
            # day is now covered, at a lag of (today - arrival day).
            recheck_days.append(day_index)
            for day in pending_days:
                recheck_lag_days[day] = day_index - day
            pending_days.clear()
        for group in scenario.truth.groups:
            if group.group_id in detection_day:
                continue
            caught = len(set(group.workers) & result.suspicious_users)
            if caught >= detection_bar * len(group.workers):
                detection_day[group.group_id] = day_index
    return ReplayResult(
        detection_day=detection_day,
        final_flagged_users=set(result.suspicious_users),
        days=config.days,
        batch_seconds=batch_seconds,
        recheck_days=recheck_days,
        recheck_lag_days=recheck_lag_days,
    )
