"""Heavy-tailed samplers underlying the synthetic marketplace.

Section IV of the paper observes that both item-side and user-side click
distributions are heavy-tailed and "follow Pareto's principle": about 20%
of items receive about 80% of clicks.  These helpers provide the Zipf
popularity weights and truncated heavy-tail count samplers used to
reproduce that shape, plus :func:`pareto_share`, the diagnostic that
measures where a distribution's 80% mass point actually falls.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_weights",
    "sample_heavy_tail_counts",
    "sample_truncated_zipf",
    "pareto_share",
]


def zipf_weights(n: int, exponent: float = 1.0, offset: float = 0.0) -> np.ndarray:
    """Normalised Zipf-Mandelbrot weights ``w_k ∝ (k + offset)^-exponent``.

    A positive ``offset`` flattens the head of the distribution: the top
    ranks share mass more equally, which lifts the click count of the
    *boundary* hot item (the paper's ``T_hot`` = 1,320 sits ~24x the mean
    item clicks — only reachable with a flat head at realistic scales).

    >>> w = zipf_weights(4, 1.0)
    >>> bool(np.isclose(w.sum(), 1.0))
    True
    >>> bool(w[0] > w[-1])
    True
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = (ranks + offset) ** -exponent
    return weights / weights.sum()


def sample_heavy_tail_counts(
    rng: np.random.Generator,
    size: int,
    mean: float,
    minimum: int = 1,
    maximum: int | None = None,
) -> np.ndarray:
    """Integer counts with a heavy right tail and the requested mean.

    Implemented as ``minimum + floor(lognormal)`` with the lognormal scale
    solved so the expected value matches ``mean``; sigma is fixed at 1.0,
    giving the kind of multi-decade spread seen in the paper's Fig. 2.
    Values above ``maximum`` (when given) are resampled by clipping.

    Parameters
    ----------
    rng:
        Source of randomness.
    size:
        Number of samples.
    mean:
        Target expected value; must exceed ``minimum``.
    minimum:
        Hard lower bound (inclusive).
    maximum:
        Optional hard upper bound (inclusive).
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if mean <= minimum:
        raise ValueError(f"mean ({mean}) must exceed minimum ({minimum})")
    sigma = 1.0
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2); we want that expectation
    # to be (mean - minimum + 0.5) so the floored variable averages ~mean.
    target = mean - minimum + 0.5
    mu = np.log(target) - sigma**2 / 2.0
    raw = rng.lognormal(mean=mu, sigma=sigma, size=size)
    counts = minimum + np.floor(raw).astype(np.int64)
    if maximum is not None:
        counts = np.minimum(counts, maximum)
    return counts


def sample_truncated_zipf(
    rng: np.random.Generator,
    size: int,
    exponent: float,
    maximum: int,
) -> np.ndarray:
    """Zipf-distributed integers in ``[1, maximum]``.

    Used for per-edge click counts: most edges carry one or two clicks, a
    few carry many, matching the per-record click weights of the
    ``TaoBao_UI_Clicks`` table (Table I: 200M clicks over 90M records).
    """
    if maximum < 1:
        raise ValueError(f"maximum must be >= 1, got {maximum}")
    support = np.arange(1, maximum + 1, dtype=np.float64)
    weights = support**-exponent
    weights /= weights.sum()
    return rng.choice(np.arange(1, maximum + 1), size=size, p=weights)


def pareto_share(values: np.ndarray, mass_fraction: float = 0.8) -> float:
    """Fraction of elements needed (largest-first) to cover ``mass_fraction`` of the sum.

    For a perfect 80/20 Pareto distribution,
    ``pareto_share(values, 0.8) ≈ 0.2``.  Returns 0.0 for empty input.

    >>> pareto_share(np.array([80.0, 10, 5, 3, 2]), 0.8)
    0.2
    """
    if not 0.0 < mass_fraction <= 1.0:
        raise ValueError(f"mass_fraction must lie in (0, 1], got {mass_fraction}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total <= 0:
        return 0.0
    ordered = np.sort(values)[::-1]
    cumulative = np.cumsum(ordered)
    needed = int(np.searchsorted(cumulative, mass_fraction * total)) + 1
    return needed / values.size
