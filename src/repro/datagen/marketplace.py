"""Organic (attack-free) marketplace click generator.

Reproduces the statistical environment of the paper's ``TaoBao_UI_Clicks``
table (Tables I & II, Fig. 2) at a configurable scale:

* item popularity is Zipf-distributed, so the item-side click distribution
  is heavy-tailed and obeys the Pareto 80/20 rule the hot-item threshold
  is derived from;
* per-user activity (distinct items clicked) is heavy-tailed with mean
  ``avg_items_per_user`` (paper: 4.32);
* per-edge click counts are truncated-Zipf with mean tuned so the average
  *total* clicks per user lands near ``avg_clicks_per_user`` (paper: 11.35);
* normal users click popular items *more* often than unpopular ones — both
  in choice probability and in per-edge click count (Table IV's normal user
  clicks a hot item 19 times but ordinary items once) — which is exactly
  the contrast the user-behaviour check exploits.

All randomness flows through one :class:`numpy.random.Generator`, so a
scenario is fully determined by its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataGenError
from ..graph.bipartite import BipartiteGraph
from .distributions import sample_heavy_tail_counts, zipf_weights

__all__ = ["MarketplaceConfig", "generate_marketplace", "item_id", "user_id"]


def user_id(index: int) -> str:
    """Canonical organic user id for rank ``index``."""
    return f"u{index}"


def item_id(index: int) -> str:
    """Canonical item id for popularity rank ``index`` (0 = most popular)."""
    return f"i{index}"


@dataclass(frozen=True)
class MarketplaceConfig:
    """Configuration of the organic marketplace generator.

    Defaults reproduce the paper's Table I/II at 1/1000 scale: 20k users,
    4k items, ~86k click records, ~200k total clicks.

    Parameters
    ----------
    n_users, n_items:
        Partition sizes.
    avg_items_per_user:
        Target mean distinct items per user *before* de-duplication of
        repeated popularity draws; 4.9 yields a measured ``Avg_cnt`` near
        the paper's 4.32 (Table II).
    avg_clicks_per_user:
        Target mean total clicks per user (Table II ``Avg_clk``: 11.35).
    popularity_exponent, popularity_offset:
        Zipf-Mandelbrot parameters of item popularity
        (``w_k ∝ (k + offset)^-exponent``).  The defaults (2.6, 12) are
        calibrated so the Pareto-derived hot threshold lands ~24x the mean
        item clicks — matching the ratio implied by the paper's
        ``T_hot = 1320`` against its mean of 54.94.  (The paper's loose
        "about 20% of items hold 80% of clicks" phrasing is numerically
        inconsistent with its own ``T_hot``; we calibrate to ``T_hot``,
        the quantity the algorithms actually consume.)
    max_clicks_per_edge:
        Truncation of the per-edge click-count distribution.
    popularity_click_boost:
        How strongly the per-edge click count grows with item popularity
        (0 disables the effect).  Normal users revisit popular items.
    n_cohorts:
        Number of *organic co-click cohorts*: flash-sale / group-buying
        swarms in which many users each click the same trendy item set a
        small number of times.  These form dense bipartite blocks that are
        **not** attacks — the "group-buying phenomenon" of desired
        property (4b) — and are what makes the raw extraction module
        over-capture (the paper's RICD-UI precision is 0.03).  Cohort
        members click each item only 1-3 times, which is precisely the
        signature the screening module uses to clear them.
    cohort_users, cohort_items:
        Inclusive size ranges per cohort.
    cohort_item_pool:
        Fraction band ``(low, high)`` of the popularity ranking cohort
        items are drawn from (trendy but not top-hot items).
    n_superfans:
        Number of *organic superfans*: genuine users who binge-click a
        small cluster of similar ordinary items (comparing variants of one
        product) well past ``T_click``.  They are the behavioural false
        positives of this domain — indistinguishable from crowd workers by
        per-edge click counts alone, but never embedded in a large dense
        block, so structural extraction (RICD's module 1) filters them
        while screening-only pipelines (baselines "+UI") cannot.
    superfan_items:
        Inclusive range of adjacent-rank items per superfan cluster.
    superfan_clicks:
        Inclusive per-item click range for superfans (should straddle
        ``T_click``).
    superfan_item_pool:
        Fraction band of the popularity ranking superfan anchors are drawn
        from.
    n_swarms:
        Number of *deal-hunter swarms*: large organic groups who each
        binge-click the same product line (obsessive deal refreshing
        during a promotion).  They are structurally AND behaviourally
        attack-like — dense blocks whose members click ordinary items past
        ``T_click`` — and are exactly the "group-buying phenomenon" that
        desired property (4b) guards against.  The one thing separating
        them from real attacks is *scale*: organic swarms are large, while
        crowd-worker groups are small ("crowd workers tend to attack ...
        on a small scale").  RICD's group-size cap exploits that;
        baselines without the cap flag swarms as attacks.
    swarm_users, swarm_items:
        Inclusive size ranges per swarm (larger than any attack group).
    swarm_clicks:
        Per-edge click range for swarm members (past ``T_click``, but the
        per-item totals must stay below ``T_hot``).
    swarm_item_pool:
        Fraction band of the popularity ranking swarm items are drawn from.
    seed:
        RNG seed.
    """

    n_users: int = 20_000
    n_items: int = 4_000
    avg_items_per_user: float = 4.9
    avg_clicks_per_user: float = 11.35
    popularity_exponent: float = 2.6
    popularity_offset: float = 12.0
    max_clicks_per_edge: int = 60
    popularity_click_boost: float = 0.45
    n_cohorts: int = 12
    cohort_users: tuple[int, int] = (15, 40)
    cohort_items: tuple[int, int] = (8, 14)
    cohort_item_pool: tuple[float, float] = (0.01, 0.25)
    n_superfans: int = 250
    superfan_items: tuple[int, int] = (2, 4)
    superfan_clicks: tuple[int, int] = (12, 22)
    superfan_item_pool: tuple[float, float] = (0.05, 0.6)
    n_swarms: int = 6
    swarm_users: tuple[int, int] = (24, 32)
    swarm_items: tuple[int, int] = (10, 14)
    swarm_clicks: tuple[int, int] = (12, 13)
    swarm_item_pool: tuple[float, float] = (0.05, 0.5)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_items < 1:
            raise DataGenError("n_users and n_items must be positive")
        if self.avg_items_per_user <= 1.0:
            raise DataGenError("avg_items_per_user must exceed 1")
        if self.avg_clicks_per_user <= self.avg_items_per_user:
            raise DataGenError("avg_clicks_per_user must exceed avg_items_per_user")
        if self.max_clicks_per_edge < 2:
            raise DataGenError("max_clicks_per_edge must be >= 2")
        if self.n_cohorts < 0:
            raise DataGenError("n_cohorts must be >= 0")
        if self.cohort_users[0] > self.cohort_users[1] or self.cohort_users[0] < 1:
            raise DataGenError("cohort_users range is invalid")
        if self.cohort_items[0] > self.cohort_items[1] or self.cohort_items[0] < 1:
            raise DataGenError("cohort_items range is invalid")
        low, high = self.cohort_item_pool
        if not 0.0 <= low < high <= 1.0:
            raise DataGenError("cohort_item_pool must satisfy 0 <= low < high <= 1")
        if self.n_superfans < 0:
            raise DataGenError("n_superfans must be >= 0")
        if self.superfan_items[0] > self.superfan_items[1] or self.superfan_items[0] < 1:
            raise DataGenError("superfan_items range is invalid")
        if self.superfan_clicks[0] > self.superfan_clicks[1] or self.superfan_clicks[0] < 1:
            raise DataGenError("superfan_clicks range is invalid")
        low, high = self.superfan_item_pool
        if not 0.0 <= low < high <= 1.0:
            raise DataGenError("superfan_item_pool must satisfy 0 <= low < high <= 1")
        if self.n_swarms < 0:
            raise DataGenError("n_swarms must be >= 0")
        if self.swarm_users[0] > self.swarm_users[1] or self.swarm_users[0] < 1:
            raise DataGenError("swarm_users range is invalid")
        if self.swarm_items[0] > self.swarm_items[1] or self.swarm_items[0] < 1:
            raise DataGenError("swarm_items range is invalid")
        if self.swarm_clicks[0] > self.swarm_clicks[1] or self.swarm_clicks[0] < 1:
            raise DataGenError("swarm_clicks range is invalid")
        low, high = self.swarm_item_pool
        if not 0.0 <= low < high <= 1.0:
            raise DataGenError("swarm_item_pool must satisfy 0 <= low < high <= 1")


def generate_marketplace(config: MarketplaceConfig) -> BipartiteGraph:
    """Generate an organic click graph from ``config``.

    Returns a graph whose users are ``u0..u{n_users-1}`` and whose items
    are ``i0..i{n_items-1}`` with ``i0`` the most popular.  Every user has
    at least one edge.
    """
    rng = np.random.default_rng(config.seed)
    popularity = zipf_weights(
        config.n_items, config.popularity_exponent, config.popularity_offset
    )

    # Distinct items per user: heavy-tailed around avg_items_per_user.
    degrees = sample_heavy_tail_counts(
        rng,
        size=config.n_users,
        mean=config.avg_items_per_user,
        minimum=1,
        maximum=config.n_items,
    )

    # Per-edge click counts: the marginal mean must satisfy
    # mean_edge_clicks * avg_items_per_user ~= avg_clicks_per_user.
    mean_edge_clicks = config.avg_clicks_per_user / config.avg_items_per_user

    graph = BipartiteGraph()
    for rank in range(config.n_items):
        graph.add_item(item_id(rank))

    item_indices = np.arange(config.n_items)
    total_edges = int(degrees.sum())
    # Draw all item choices in one vectorised pass (with replacement; the
    # per-user de-duplication below merges repeats, slightly thinning very
    # high-degree draws, which the heavy-tailed degree sampler tolerates).
    all_choices = rng.choice(item_indices, size=total_edges, p=popularity)
    # Per-edge click counts decompose into a geometric baseline plus a
    # popularity-driven boost (normal users revisit popular items — Table
    # IV's normal user clicks a hot item 19 times).  The boost's expected
    # contribution is computed from the *actual* draws and subtracted from
    # the baseline mean, so the per-user total stays on the Avg_clk target
    # regardless of how concentrated the popularity distribution is.
    boost_mean_clicks = 3.0  # mean of the geometric(1/3) boost component
    if config.popularity_click_boost > 0:
        # Popularity percentile in [0, 1): 1.0 for the hottest item.
        percentile = 1.0 - all_choices / config.n_items
        boost_probability = config.popularity_click_boost * percentile**4
        boost = rng.random(total_edges) < boost_probability
        extra = rng.geometric(1.0 / boost_mean_clicks, size=total_edges) * boost
        expected_extra = float(boost_probability.mean()) * boost_mean_clicks
    else:
        extra = np.zeros(total_edges, dtype=np.int64)
        expected_extra = 0.0
    base_mean = max(1.05, mean_edge_clicks - expected_extra)
    base_clicks = rng.geometric(min(1.0, 1.0 / base_mean), size=total_edges)
    clicks = np.minimum(base_clicks + extra, config.max_clicks_per_edge)

    cursor = 0
    for user_index in range(config.n_users):
        degree = int(degrees[user_index])
        user = user_id(user_index)
        graph.add_user(user)
        for offset in range(degree):
            choice = int(all_choices[cursor + offset])
            graph.add_click(user, item_id(choice), int(clicks[cursor + offset]))
        cursor += degree

    _add_cohorts(graph, config, rng)
    _add_superfans(graph, config, rng)
    _add_swarms(graph, config, rng)
    return graph


def _add_swarms(
    graph: BipartiteGraph, config: MarketplaceConfig, rng: np.random.Generator
) -> None:
    """Overlay deal-hunter swarms (large organic heavy-click blocks).

    Every swarm member clicks every swarm item ``swarm_clicks`` times —
    a dense block that passes the behaviour checks and is only
    distinguishable from an attack by its size (see the class docstring).
    """
    if config.n_swarms == 0:
        return
    pool_low = int(config.swarm_item_pool[0] * config.n_items)
    pool_high = max(pool_low + 1, int(config.swarm_item_pool[1] * config.n_items))
    item_pool = np.arange(pool_low, min(pool_high, config.n_items))
    for _swarm in range(config.n_swarms):
        n_members = int(rng.integers(config.swarm_users[0], config.swarm_users[1] + 1))
        n_swarm_items = min(
            int(rng.integers(config.swarm_items[0], config.swarm_items[1] + 1)),
            len(item_pool),
        )
        if n_swarm_items == 0:
            continue
        members = rng.integers(0, config.n_users, size=n_members)
        chosen = rng.choice(item_pool, size=n_swarm_items, replace=False)
        for member in members:
            user = user_id(int(member))
            for item_index in chosen:
                clicks = int(
                    rng.integers(config.swarm_clicks[0], config.swarm_clicks[1] + 1)
                )
                graph.add_click(user, item_id(int(item_index)), clicks)


def _add_superfans(
    graph: BipartiteGraph, config: MarketplaceConfig, rng: np.random.Generator
) -> None:
    """Overlay organic superfans (binge users on small product clusters).

    Each superfan picks an anchor rank in the configured popularity band
    and heavily clicks 2-4 *adjacent-rank* items (adjacent popularity
    ranks stand in for product variants).  Adjacent anchoring means
    independent superfans occasionally binge the same cluster — organic
    coincidence that the item-behaviour verification can mistake for a
    coordinated attack, but never at biclique scale.
    """
    if config.n_superfans == 0:
        return
    pool_low = int(config.superfan_item_pool[0] * config.n_items)
    pool_high = max(pool_low + 1, int(config.superfan_item_pool[1] * config.n_items))
    for _fan in range(config.n_superfans):
        fan = user_id(int(rng.integers(0, config.n_users)))
        anchor = int(rng.integers(pool_low, pool_high))
        width = int(rng.integers(config.superfan_items[0], config.superfan_items[1] + 1))
        for rank in range(anchor, min(anchor + width, config.n_items)):
            clicks = int(
                rng.integers(config.superfan_clicks[0], config.superfan_clicks[1] + 1)
            )
            graph.add_click(fan, item_id(rank), clicks)


def _add_cohorts(
    graph: BipartiteGraph, config: MarketplaceConfig, rng: np.random.Generator
) -> None:
    """Overlay organic co-click cohorts (flash sales, group buying).

    Each cohort picks a set of trendy items from the configured popularity
    band and a set of existing users; every member clicks every cohort
    item 1-3 times.  The result is a dense bipartite block with *small*
    per-edge click counts — structurally attack-like, behaviourally
    benign.
    """
    if config.n_cohorts == 0:
        return
    pool_low = int(config.cohort_item_pool[0] * config.n_items)
    pool_high = max(pool_low + 1, int(config.cohort_item_pool[1] * config.n_items))
    item_pool = np.arange(pool_low, min(pool_high, config.n_items))
    for _cohort in range(config.n_cohorts):
        n_members = int(rng.integers(config.cohort_users[0], config.cohort_users[1] + 1))
        n_cohort_items = int(
            rng.integers(config.cohort_items[0], config.cohort_items[1] + 1)
        )
        n_cohort_items = min(n_cohort_items, len(item_pool))
        if n_cohort_items == 0:
            continue
        members = rng.integers(0, config.n_users, size=n_members)
        chosen_items = rng.choice(item_pool, size=n_cohort_items, replace=False)
        for member in members:
            user = user_id(int(member))
            for item_index in chosen_items:
                graph.add_click(
                    user, item_id(int(item_index)), int(rng.integers(1, 4))
                )
