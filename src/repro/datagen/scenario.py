"""Scenario = marketplace + injected attacks + exact ground truth.

A :class:`Scenario` bundles everything an experiment needs: the click
graph, the labels, and the configurations that produced them.  Three
presets cover the repository's needs:

* :func:`paper_scenario` — the paper's environment at 1/1000 scale
  (20k users / 4k items / ~90k records), used by the benchmark harness;
* :func:`small_scenario` — 3k users / 700 items, used by integration tests;
* :func:`tiny_scenario` — ~800 users, used by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.bipartite import BipartiteGraph
from .attacks import AttackConfig, inject_attacks
from .labels import GroundTruth
from .marketplace import MarketplaceConfig, generate_marketplace

__all__ = [
    "Scenario",
    "generate_scenario",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
    "marketplace_preset",
    "clean_marketplace",
]


@dataclass
class Scenario:
    """A generated experiment environment.

    Attributes
    ----------
    graph:
        The click graph with attacks already injected.
    truth:
        Exact labels of the injected attacks.
    marketplace_config, attack_config:
        The generator configurations, kept for provenance and reporting.
    """

    graph: BipartiteGraph
    truth: GroundTruth
    marketplace_config: MarketplaceConfig
    attack_config: AttackConfig

    @property
    def abnormal_fraction_users(self) -> float:
        """Share of user nodes that are labelled abnormal."""
        if self.graph.num_users == 0:
            return 0.0
        return len(self.truth.abnormal_users) / self.graph.num_users

    @property
    def abnormal_fraction_items(self) -> float:
        """Share of item nodes that are labelled abnormal."""
        if self.graph.num_items == 0:
            return 0.0
        return len(self.truth.abnormal_items) / self.graph.num_items

    def __repr__(self) -> str:
        return f"Scenario(graph={self.graph!r}, truth={self.truth!r})"


def generate_scenario(
    marketplace_config: MarketplaceConfig, attack_config: AttackConfig
) -> Scenario:
    """Generate a marketplace and inject attacks into it."""
    graph = generate_marketplace(marketplace_config)
    organic_users = list(graph.users())
    truth = inject_attacks(graph, attack_config, existing_users=organic_users)
    return Scenario(
        graph=graph,
        truth=truth,
        marketplace_config=marketplace_config,
        attack_config=attack_config,
    )


def marketplace_preset(scale: str = "small", seed: int = 0) -> MarketplaceConfig:
    """The marketplace configuration behind each scenario preset.

    These shapes are threshold-calibrated: their organic click mass
    resolves ``T_click`` to ~12-13, so the paper's 13-click attack model
    (and the attack zoo's family defaults) sits exactly at the detection
    boundary — the regime the paper studies.  Use them whenever an
    experiment needs a *clean* marketplace to attack separately (the
    red-team harness, the evasion studies).
    """
    from ..errors import DataGenError

    if scale == "paper":
        return MarketplaceConfig(seed=seed)
    if scale == "small":
        return MarketplaceConfig(
            n_users=3_000,
            n_items=700,
            n_cohorts=4,
            cohort_users=(12, 25),
            cohort_items=(8, 12),
            n_superfans=30,
            superfan_clicks=(12, 18),
            n_swarms=2,
            swarm_users=(20, 26),
            swarm_items=(6, 8),
            seed=seed,
        )
    if scale == "tiny":
        return MarketplaceConfig(
            n_users=800,
            n_items=150,
            n_cohorts=1,
            cohort_users=(8, 12),
            cohort_items=(6, 8),
            n_superfans=5,
            n_swarms=0,
            seed=seed,
        )
    raise DataGenError(f"unknown marketplace scale {scale!r} (tiny/small/paper)")


def clean_marketplace(scale: str = "small", seed: int = 0) -> BipartiteGraph:
    """A preset marketplace with *no* attacks injected."""
    return generate_marketplace(marketplace_preset(scale, seed))


def paper_scenario(seed: int = 0, n_groups: int = 8) -> Scenario:
    """The paper's environment at 1/1000 scale.

    20k users, 4k items, ~86k organic click records plus ``n_groups``
    injected attack groups with the paper's case-study group shape.
    """
    marketplace = marketplace_preset("paper", seed)
    attacks = AttackConfig(n_groups=n_groups, seed=seed + 1)
    return generate_scenario(marketplace, attacks)


def small_scenario(seed: int = 0, n_groups: int = 4) -> Scenario:
    """A 3k-user / 700-item scenario for integration tests (~1 s)."""
    marketplace = marketplace_preset("small", seed)
    attacks = AttackConfig(
        n_groups=n_groups,
        workers_per_group=(5, 8),
        targets_per_group=(5, 8),
        target_clicks=(13, 15),
        sloppy_target_clicks=(3, 7),
        seed=seed + 1,
    )
    return generate_scenario(marketplace, attacks)


def tiny_scenario(seed: int = 0, n_groups: int = 1) -> Scenario:
    """A few-hundred-node scenario for unit tests (tens of milliseconds)."""
    marketplace = marketplace_preset("tiny", seed)
    attacks = AttackConfig(
        n_groups=n_groups,
        workers_per_group=(4, 5),
        targets_per_group=(5, 6),
        hot_items_per_group=(1, 2),
        target_clicks=(13, 14),
        density=1.0,
        sloppy_fraction=0.0,
        hijacked_user_fraction=0.0,
        worker_reuse_fraction=0.0,
        organic_target_users=(1, 3),
        seed=seed + 1,
    )
    return generate_scenario(marketplace, attacks)
