"""Adversarial evasion: the strongest attacker the paper's model allows.

Section III-A: "This work assumes that attackers have complete knowledge
of how the recommendation system works and the attack detection
mechanisms."  Such an attacker never lets their fake-edge set contain a
``k1 x k2`` biclique, because that is exactly what Algorithm 3 prunes
*for* — and the Zarankiewicz bound (:mod:`repro.core.camouflage`) caps how
many fake clicks such an *invisible* campaign can place.

:func:`inject_evasive_campaign` builds that attacker: worker-target
assignments are generated so every target is clicked by at most
``k1 - 1`` workers, which makes the fake-edge set trivially
``K_{k1,k2}``-free (a forbidden biclique needs ``k1`` workers sharing
``k2`` targets, but no target reaches ``k1`` workers at all).  This is the
structure-optimal evasion for a seller who wants per-target click volume:
it maximises edges per target under the invisibility constraint.

The point of the module — made quantitative by
``benchmarks/bench_camouflage_bound.py`` — is the paper's property (3):
the evasive campaign indeed escapes extraction, but its per-target I2I
lift is capped at a fraction of the overt campaign's, so invisibility is
*bought with effectiveness*.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..config import RICDParams
from ..errors import DataGenError
from ..graph.bipartite import BipartiteGraph
from .attacks import AttackGroup, _pick_hot_items, _uniform_int
from .labels import GroundTruth

__all__ = ["EvasionConfig", "inject_evasive_campaign"]

Node = Hashable


class EvasionConfig:
    """Configuration of the invisible (K-free) campaign.

    Parameters
    ----------
    params:
        The deployed RICD parameters the attacker is evading (``k1`` sets
        the per-target worker ceiling).
    n_workers:
        Accounts the seller controls.
    n_targets:
        Target items to boost.
    target_clicks:
        Clicks per realised (worker, target) edge — the attacker still
        follows the Eq. 3 concentration optimum per edge.
    hot_items:
        Hot items to ride (clicked once per worker, as Eq. 3 dictates).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        params: RICDParams,
        n_workers: int = 30,
        n_targets: int = 12,
        target_clicks: tuple[int, int] = (12, 14),
        hot_items: int = 2,
        seed: int = 0,
    ):
        if n_workers < 1 or n_targets < 1:
            raise DataGenError("n_workers and n_targets must be positive")
        if hot_items < 0:
            raise DataGenError("hot_items must be >= 0")
        low, high = target_clicks
        if low > high or low < 1:
            raise DataGenError("target_clicks range is invalid")
        self.params = params
        self.n_workers = n_workers
        self.n_targets = n_targets
        self.target_clicks = target_clicks
        self.hot_items = hot_items
        self.seed = seed


def inject_evasive_campaign(
    graph: BipartiteGraph, config: EvasionConfig
) -> GroundTruth:
    """Inject a ``K_{k1,k2}``-free campaign into ``graph`` in place.

    Every target receives fake clicks from at most ``k1 - 1`` distinct
    workers (round-robin assignment), so no ``k1``-worker core can share
    even a single target — the campaign is invisible to Algorithm 3 by
    construction.  Hot rides are unrestricted (hot items never join an
    extracted core's item side at sane parameters, and the paper's
    screening discards them anyway).

    Returns the exact :class:`GroundTruth` of the campaign (one group).

    Degenerate case: ``k1 = 1`` forbids any fake edge at all (a single
    worker-target pair is already a ``K_{1,1}`` the extractor can seed
    from); the function then injects nothing but still returns the
    labelled accounts.
    """
    params = config.params
    rng = np.random.default_rng(config.seed)
    group = AttackGroup(group_id=0)

    per_target_cap = params.k1 - 1
    group.workers = [f"ev_w{index}" for index in range(config.n_workers)]
    for worker in group.workers:
        graph.add_user(worker)

    if config.hot_items:
        hot_boundary_pool = sorted(
            graph.items(), key=graph.item_total_clicks, reverse=True
        )[: max(10, config.hot_items)]
        group.hot_items = _pick_hot_items(
            graph, config.hot_items, rng, hot_boundary_pool
        )
        for worker in group.workers:
            for hot in group.hot_items:
                graph.add_click(worker, hot, 1)
                group.fake_edges.append((worker, hot, 1))

    cursor = 0
    for target_index in range(config.n_targets):
        target = f"ev_t{target_index}"
        graph.add_item(target)
        group.target_items.append(target)
        # Round-robin at most (k1 - 1) workers onto this target.
        for _slot in range(min(per_target_cap, config.n_workers)):
            worker = group.workers[cursor % config.n_workers]
            cursor += 1
            clicks = _uniform_int(rng, config.target_clicks)
            graph.add_click(worker, target, clicks)
            group.fake_edges.append((worker, target, clicks))

    return GroundTruth(
        abnormal_users=set(group.workers),
        abnormal_items=set(group.target_items),
        groups=[group],
    )
