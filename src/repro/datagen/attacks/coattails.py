"""The "Ride Item's Coattails" attack injector.

Implements the paper's attack model (Section III-A) and the behavioural
findings of Section IV as a generative process:

* a malicious seller recruits a *group* of crowd-worker accounts;
* the group shares 1-3 **hot items** (existing high-traffic items) and a
  set of low-traffic **target items**;
* each worker clicks every hot item a *small* number of times (the Eq. 3
  optimum is once; the observed average is "extremely small (< 4)",
  Table III shows 1-2);
* each worker clicks each assigned target item many times — at least the
  abnormal threshold ``T_click = 12`` (Eq. 4, Table III shows 13) — the
  "click the target item as much as possible" optimum of Eq. 3;
* each worker adds **camouflage**: a few clicks on random unrelated items
  to "confuse the risk control system" (Table III rows 4, 5, 7).

Worker-target density below 1.0 produces the *near*-biclique structure
that motivates the paper's ``(alpha, k1, k2)``-extension definition: with
``density = 0.8``, roughly 80% of worker-target pairs receive fake clicks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ...core.thresholds import pareto_hot_threshold
from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from ..labels import GroundTruth
from .base import (
    AttackGroup,
    AttackPlan,
    ClickBudget,
    pick_hot_items as _pick_hot_items,
    target_id,
    uniform_int as _uniform_int,
    worker_id,
)

__all__ = [
    "AttackConfig",
    "AttackGroup",
    "inject_attacks",
    "worker_id",
    "target_id",
    "CoattailsCampaignConfig",
    "plan_coattails",
]

Node = Hashable


@dataclass(frozen=True)
class AttackConfig:
    """Configuration of the attack injector.

    Ranges are inclusive ``(low, high)`` tuples sampled uniformly per group
    or per worker.  Defaults follow the paper's published case study
    (Section VII: 28 accounts, 2 hot items, 11 target items per group) and
    the sensitivity-analysis observation that real attacks are *frequent
    on a small scale* — more target clicks (large k2-side pressure), fewer
    accounts (small k1-side), which the defaults scale down a little so
    several groups fit a 1/1000-scale marketplace.

    Parameters
    ----------
    n_groups:
        Number of independent attack groups.
    workers_per_group:
        Accounts recruited per group.
    targets_per_group:
        Target items per group.
    hot_items_per_group:
        Hot items ridden per group (the paper: sellers "always try to
        associate multiple hot items with target items").
    target_clicks:
        Fake clicks per (worker, target) edge; the low end should sit at or
        above the abnormal threshold ``T_click`` (paper: 12).
    hot_clicks:
        Clicks per (worker, hot item) edge; Eq. 3 optimum is 1, observed
        average is below 4.
    camouflage_items:
        Unrelated items clicked per worker as disguise.
    camouflage_clicks:
        Clicks per camouflage edge (small: disguise is cheap by Eq. 3).
    density:
        Probability a (worker, target) pair receives fake clicks.  1.0
        yields a full biclique core; lower values yield near-bicliques.
    sloppy_fraction:
        Fraction of workers who ignore the Eq. 3 optimum and spread only
        ``sloppy_target_clicks`` clicks per target (below ``T_click``).
        They are still labelled abnormal, and the extraction module still
        catches them (it is click-weight-blind), but the behaviour checks
        clear them — reproducing the paper's recall drop from RICD-UI
        (0.82) to RICD (0.51).
    sloppy_target_clicks:
        Per-target click range used by sloppy workers.
    organic_target_users:
        Pre-attack organic users per target item (targets are real listed
        items with *some* traffic; Section IV-B selects low-click items).
    hijacked_user_fraction:
        Fraction of worker accounts that are *hijacked organic accounts*
        (an existing user id is relabelled as a worker) instead of fresh
        registrations — these workers come with a genuine history, the
        hardest camouflage in the paper's challenge list.
    worker_reuse_fraction:
        Fraction of each group's accounts drawn from a shared pool of
        *professional* crowd workers who serve multiple sellers.  Reused
        workers accumulate clicks on several groups' hot items — the
        cross-task footprint the naive algorithm's ``Alpha`` score keys
        on, and a documented reality of crowdsourcing platforms (Fig. 1).
    seed:
        RNG seed (independent from the marketplace seed).
    """

    n_groups: int = 8
    workers_per_group: tuple[int, int] = (8, 18)
    targets_per_group: tuple[int, int] = (10, 14)
    hot_items_per_group: tuple[int, int] = (1, 3)
    target_clicks: tuple[int, int] = (12, 14)
    hot_clicks: tuple[int, int] = (1, 3)
    camouflage_items: tuple[int, int] = (3, 10)
    camouflage_clicks: tuple[int, int] = (1, 2)
    density: float = 0.95
    sloppy_fraction: float = 0.3
    sloppy_target_clicks: tuple[int, int] = (3, 8)
    organic_target_users: tuple[int, int] = (1, 6)
    hijacked_user_fraction: float = 0.2
    worker_reuse_fraction: float = 0.25
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_groups < 0:
            raise DataGenError("n_groups must be >= 0")
        for name in (
            "workers_per_group",
            "targets_per_group",
            "hot_items_per_group",
            "target_clicks",
            "hot_clicks",
            "camouflage_items",
            "camouflage_clicks",
            "organic_target_users",
        ):
            low, high = getattr(self, name)
            if low > high:
                raise DataGenError(f"{name} range is inverted: ({low}, {high})")
            if low < 0:
                raise DataGenError(f"{name} must be non-negative")
        if self.workers_per_group[0] < 1:
            raise DataGenError("workers_per_group must be >= 1")
        if self.targets_per_group[0] < 1:
            raise DataGenError("targets_per_group must be >= 1")
        if not 0.0 < self.density <= 1.0:
            raise DataGenError("density must lie in (0, 1]")
        if not 0.0 <= self.hijacked_user_fraction <= 1.0:
            raise DataGenError("hijacked_user_fraction must lie in [0, 1]")
        if not 0.0 <= self.sloppy_fraction <= 1.0:
            raise DataGenError("sloppy_fraction must lie in [0, 1]")
        if not 0.0 <= self.worker_reuse_fraction <= 1.0:
            raise DataGenError("worker_reuse_fraction must lie in [0, 1]")
        low, high = self.sloppy_target_clicks
        if low > high or low < 1:
            raise DataGenError(f"sloppy_target_clicks range is invalid: ({low}, {high})")


def inject_attacks(
    graph: BipartiteGraph,
    config: AttackConfig,
    existing_users: Sequence[Node] | None = None,
) -> GroundTruth:
    """Inject ``config.n_groups`` attack groups into ``graph`` in place.

    Parameters
    ----------
    graph:
        The organic marketplace graph; mutated in place.
    config:
        Attack parameters.
    existing_users:
        Pool of account ids eligible for hijacking; defaults to all users
        currently in the graph.

    Returns
    -------
    GroundTruth
        Exact labels: every worker account and every target item.
    """
    rng = np.random.default_rng(config.seed)
    user_pool = list(existing_users) if existing_users is not None else list(graph.users())
    hijackable = list(user_pool)
    rng.shuffle(hijackable)  # type: ignore[arg-type]
    truth = GroundTruth()

    # Hot items the sellers ride: the genuinely hot (Pareto-boundary) set,
    # so ridden items classify as hot under the detector's derived T_hot.
    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item
        for item in graph.items()
        if graph.item_total_clicks(item) >= hot_boundary
    ]
    professional_pool: list[Node] = []

    for group_index in range(config.n_groups):
        group = AttackGroup(group_id=group_index)
        n_workers = _uniform_int(rng, config.workers_per_group)
        n_targets = _uniform_int(rng, config.targets_per_group)
        n_hot = _uniform_int(rng, config.hot_items_per_group)

        # --- accounts: professional (reused), hijacked, and fresh workers
        n_reused = int(round(n_workers * config.worker_reuse_fraction))
        if professional_pool and n_reused:
            chosen = rng.choice(
                len(professional_pool),
                size=min(n_reused, len(professional_pool)),
                replace=False,
            )
            group.workers.extend(professional_pool[int(index)] for index in chosen)
        n_hijacked = int(round(n_workers * config.hijacked_user_fraction))
        for _count in range(min(n_hijacked, len(hijackable))):
            group.workers.append(hijackable.pop())
        fresh_needed = n_workers - len(group.workers)
        for worker_index in range(fresh_needed):
            account = worker_id(group_index, worker_index)
            graph.add_user(account)
            group.workers.append(account)
            professional_pool.append(account)

        # --- items: ride existing hot items; list fresh low-quality targets
        group.hot_items = _pick_hot_items(graph, n_hot, rng, hot_pool)
        ordinary_pool = [
            item for item in graph.items() if item not in group.hot_items
        ]
        for item_index in range(n_targets):
            target = target_id(group_index, item_index)
            graph.add_item(target)
            group.target_items.append(target)
            # Pre-attack organic trickle: targets are listed items that
            # "cannot attract users' clicks" but are not fully isolated.
            n_organic = _uniform_int(rng, config.organic_target_users)
            if n_organic and user_pool:
                chosen = rng.choice(len(user_pool), size=min(n_organic, len(user_pool)), replace=False)
                for index in chosen:
                    graph.add_click(user_pool[int(index)], target, 1)

        # --- fake click campaign (Eq. 3 strategy per worker; sloppy
        # workers spread fewer clicks per target than the optimum)
        for worker in group.workers:
            sloppy = rng.random() < config.sloppy_fraction
            click_range = (
                config.sloppy_target_clicks if sloppy else config.target_clicks
            )
            for hot in group.hot_items:
                clicks = _uniform_int(rng, config.hot_clicks)
                if clicks:
                    graph.add_click(worker, hot, clicks)
                    group.fake_edges.append((worker, hot, clicks))
            for target in group.target_items:
                if rng.random() > config.density:
                    continue
                clicks = _uniform_int(rng, click_range)
                graph.add_click(worker, target, clicks)
                group.fake_edges.append((worker, target, clicks))
            n_camouflage = _uniform_int(rng, config.camouflage_items)
            if n_camouflage and ordinary_pool:
                chosen = rng.choice(
                    len(ordinary_pool),
                    size=min(n_camouflage, len(ordinary_pool)),
                    replace=False,
                )
                for index in chosen:
                    clicks = _uniform_int(rng, config.camouflage_clicks)
                    if clicks:
                        item = ordinary_pool[int(index)]
                        graph.add_click(worker, item, clicks)
                        group.fake_edges.append((worker, item, clicks))

        truth.abnormal_users.update(group.workers)
        truth.abnormal_items.update(group.target_items)
        truth.groups.append(group)

    return truth


# ----------------------------------------------------------------------
# Budgeted planner: the same attack as a red-team frontier family
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CoattailsCampaignConfig:
    """Budgeted "Ride Item's Coattails" campaign (red-team baseline).

    The classic :func:`inject_attacks` is parameterised by *shape*
    (groups, ranges); the frontier needs campaigns parameterised by
    *spend*, so every family is compared at an equal fake-click budget.
    This planner keeps the paper's Eq. 3 strategy — ride hot items
    lightly, concentrate clicks on targets, sprinkle camouflage — and
    simply opens a new seller (group) whenever the previous one reaches
    the paper's observed group size, until the budget is drained.

    Parameters
    ----------
    click_budget:
        Exact fake clicks to place (the ledger is drained to zero for
        any budget >= ~50).
    workers_per_group:
        Accounts per seller before a new group opens (paper case study:
        28; Table III band 8-18 — the default sits inside it).
    targets_per_group:
        Fresh target listings per group.
    hot_rides:
        Hot items ridden per group.
    target_clicks:
        Per (worker, target) clicks; static campaigns use it as-is, the
        adaptive variant caps it under the observed ``T_click``.  The
        default is 15, the top of the paper's observed 13-15 band: the
        campaign's own click mass feeds back into the Eq. 4 threshold,
        so a naive attacker clicking exactly at the pre-attack
        ``T_click`` hides itself by raising it — the static baseline
        must clear the *post-attack* threshold to be the overt campaign
        the frontier compares against.
    camouflage_items:
        Camouflage edges per worker (doubled when adaptive: camouflage
        is the cheapest place to spend invisibly).
    adaptive:
        Observe resolved ``T_hot``/``T_click`` on the pre-attack graph
        and shape under them (sub-threshold target clicks, hot-ride
        padding past the screening band, straddling camouflage).
    seed:
        RNG seed.
    """

    click_budget: int = 2_000
    workers_per_group: int = 12
    targets_per_group: int = 10
    hot_rides: int = 2
    target_clicks: int = 15
    camouflage_items: int = 4
    adaptive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.click_budget < 1:
            raise DataGenError("click_budget must be >= 1")
        if min(self.workers_per_group, self.targets_per_group) < 1:
            raise DataGenError("group shape values must be >= 1")
        if self.target_clicks < 1:
            raise DataGenError("target_clicks must be >= 1")
        if self.hot_rides < 0 or self.camouflage_items < 0:
            raise DataGenError("hot_rides and camouflage_items must be >= 0")


def plan_coattails(
    graph: BipartiteGraph, config: CoattailsCampaignConfig
) -> AttackPlan:
    """Plan a budget-exact coattails campaign against ``graph``.

    The graph is only *read* (hot pool, camouflage pool, observed
    thresholds); call :meth:`~repro.datagen.attacks.base.AttackPlan.apply`
    to inject.
    """
    from .adaptive import ObservedDefense, straddle_anchors

    rng = np.random.default_rng(config.seed)
    budget = ClickBudget(config.click_budget)
    plan = AttackPlan(family="coattails", adaptive=config.adaptive, budget=budget.total)
    defense = ObservedDefense.observe(graph) if config.adaptive else None

    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item for item in graph.items() if graph.item_total_clicks(item) >= hot_boundary
    ]
    camouflage_pool = [item for item in graph.items() if item not in hot_pool]

    group_index = 0
    while not budget.exhausted:
        group = AttackGroup(group_id=group_index)
        group.hot_items = _pick_hot_items(graph, config.hot_rides, rng, hot_pool)
        for target_index in range(config.targets_per_group):
            target = f"rc{group_index}_t{target_index}"
            group.target_items.append(target)
            plan.fresh_items.add(target)
        per_edge = (
            defense.capped(config.target_clicks) if defense else config.target_clicks
        )
        hot_clicks = defense.hot_pad if defense else 1
        n_camouflage = config.camouflage_items * (2 if defense else 1)

        for worker_index in range(config.workers_per_group):
            if budget.exhausted:
                break
            worker = f"rc{group_index}_w{worker_index}"
            group.workers.append(worker)
            plan.fresh_users.add(worker)
            for hot in group.hot_items:
                grant = budget.take(hot_clicks)
                if grant:
                    group.fake_edges.append((worker, hot, grant))
            for target in group.target_items:
                grant = budget.take(per_edge)
                if grant:
                    group.fake_edges.append((worker, target, grant))
            camouflage: list[Node] = []
            if defense:
                camouflage.extend(
                    straddle_anchors(graph, rng, n_anchors=2, exclude=set(hot_pool))
                )
            if n_camouflage and camouflage_pool:
                chosen = rng.choice(
                    len(camouflage_pool),
                    size=min(n_camouflage, len(camouflage_pool)),
                    replace=False,
                )
                camouflage.extend(camouflage_pool[int(index)] for index in chosen)
            for item in camouflage:
                grant = budget.take(1)
                if grant:
                    group.fake_edges.append((worker, item, grant))
        plan.groups.append(group)
        group_index += 1
    return plan
