"""Profile-obfuscation attacks (after Yang et al., PAPERS.md).

The hardest camouflage in the paper's own challenge list is the worker
who *looks like an organic user* — hijacked accounts arrive with real
histories, and professional workers groom their accounts before selling
them.  This family models the grooming directly: every worker spends a
configurable **obfuscation fraction** of its click budget building an
organic-mimicking profile *before* (in graph terms: alongside) the
campaign:

* obfuscation items are sampled from the marketplace's popularity
  distribution (``item_total_clicks`` as weights), so the fake history
  has the same heavy-tailed shape as real browsing;
* obfuscation click counts are small (1-3), matching the Table II
  per-record marginals;
* the remaining budget executes a compact coattails-style core at
  reduced intensity.

Against a click-weight-blind extractor the core still surfaces; what the
obfuscation buys is *screening* pressure — the worker's abnormal-click
fraction drops, its hot-item behaviour blends into the organic band —
exactly the axis the paper's RICD / RICD-UI gap measures.  The adaptive
variant raises the obfuscation fraction, caps target depths under the
observed ``T_click``, rides hot items at the screening band, and
straddles organic communities with part of its obfuscation spend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ...core.thresholds import pareto_hot_threshold
from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from .adaptive import ObservedDefense, straddle_anchors
from .base import AttackGroup, AttackPlan, ClickBudget

__all__ = ["ProfileObfuscationConfig", "plan_obfuscation", "inject_obfuscation"]

Node = Hashable


@dataclass(frozen=True)
class ProfileObfuscationConfig:
    """Configuration of the profile-obfuscation planner.

    Parameters
    ----------
    click_budget:
        Exact fake clicks to place (campaign + obfuscation combined —
        grooming is not free, which is what makes the trade-off real).
    obfuscation_fraction:
        Share of each worker's spend that goes to the organic-mimicking
        profile (raised by half, capped at 0.75, when adaptive).
    n_targets:
        Fresh target listings per group.
    workers_per_group:
        Accounts per seller before a new group opens.
    target_clicks:
        Per (worker, target) clicks (capped when adaptive).
    hot_rides:
        Hot items ridden per group.
    adaptive:
        Observe resolved thresholds and shape under them.
    seed:
        RNG seed.
    """

    click_budget: int = 2_000
    obfuscation_fraction: float = 0.35
    n_targets: int = 10
    workers_per_group: int = 12
    target_clicks: int = 15
    hot_rides: int = 1
    adaptive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.click_budget < 1:
            raise DataGenError("click_budget must be >= 1")
        if not 0.0 <= self.obfuscation_fraction < 1.0:
            raise DataGenError("obfuscation_fraction must lie in [0, 1)")
        if min(self.n_targets, self.workers_per_group, self.target_clicks) < 1:
            raise DataGenError("group shape values must be >= 1")
        if self.hot_rides < 0:
            raise DataGenError("hot_rides must be >= 0")


def plan_obfuscation(
    graph: BipartiteGraph, config: ProfileObfuscationConfig
) -> AttackPlan:
    """Plan a budget-exact profile-obfuscation campaign against ``graph``."""
    rng = np.random.default_rng(config.seed)
    budget = ClickBudget(config.click_budget)
    plan = AttackPlan(
        family="obfuscation", adaptive=config.adaptive, budget=budget.total
    )
    defense = ObservedDefense.observe(graph) if config.adaptive else None

    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item for item in graph.items() if graph.item_total_clicks(item) >= hot_boundary
    ]
    if not hot_pool:
        raise DataGenError("cannot inject attacks: graph has no hot items")

    # Popularity-weighted obfuscation pool (ordinary items only; clicking
    # hot items is handled separately because screening treats it apart).
    pool = [item for item in graph.items() if item not in hot_pool]
    if not pool:
        pool = list(graph.items())
    popularity = np.array(
        [graph.item_total_clicks(item) for item in pool], dtype=float
    )
    popularity = np.maximum(popularity, 1.0)
    popularity /= popularity.sum()

    fraction = config.obfuscation_fraction
    if defense:
        fraction = min(0.75, fraction * 1.5)
    per_edge = (
        defense.capped(config.target_clicks) if defense else config.target_clicks
    )
    hot_clicks = defense.hot_pad if defense else 1
    # Per-worker campaign spend implied by the group shape; the grooming
    # budget is sized against it through the obfuscation fraction.
    campaign_spend = (
        config.n_targets * per_edge + config.hot_rides * hot_clicks
    )
    groom_spend = int(round(campaign_spend * fraction / max(1e-9, 1.0 - fraction)))

    group_index = 0
    while not budget.exhausted:
        group = AttackGroup(group_id=group_index)
        if config.hot_rides:
            chosen_hot = rng.choice(
                len(hot_pool), size=min(config.hot_rides, len(hot_pool)), replace=False
            )
            group.hot_items = [
                hot_pool[int(index)] for index in np.atleast_1d(chosen_hot)
            ]
        for target_index in range(config.n_targets):
            target = f"ob{group_index}_t{target_index}"
            group.target_items.append(target)
            plan.fresh_items.add(target)

        for worker_index in range(config.workers_per_group):
            if budget.exhausted:
                break
            worker = f"ob{group_index}_w{worker_index}"
            group.workers.append(worker)
            plan.fresh_users.add(worker)

            # --- grooming: an organic-looking history, popularity-shaped
            groomed: dict[Node, int] = {}
            remaining_groom = groom_spend
            if defense:
                for anchor in straddle_anchors(
                    graph, rng, n_anchors=2, exclude=set(hot_pool)
                ):
                    grant = budget.take(1)
                    if grant:
                        groomed[anchor] = groomed.get(anchor, 0) + grant
                        remaining_groom -= 1
            while remaining_groom > 0 and not budget.exhausted:
                item = pool[int(rng.choice(len(pool), p=popularity))]
                desired = min(int(rng.integers(1, 4)), remaining_groom)
                grant = budget.take(desired)
                if not grant:
                    break
                groomed[item] = groomed.get(item, 0) + grant
                remaining_groom -= grant
            for item, clicks in groomed.items():
                group.fake_edges.append((worker, item, clicks))

            # --- campaign: the compact core the grooming pays cover for
            for hot in group.hot_items:
                grant = budget.take(hot_clicks)
                if grant:
                    group.fake_edges.append((worker, hot, grant))
            for target in group.target_items:
                grant = budget.take(per_edge)
                if grant:
                    group.fake_edges.append((worker, target, grant))
        plan.groups.append(group)
        group_index += 1
    return plan


def inject_obfuscation(graph: BipartiteGraph, config: ProfileObfuscationConfig):
    """Plan against ``graph``, apply in place, return exact labels."""
    return plan_obfuscation(graph, config).apply(graph)
