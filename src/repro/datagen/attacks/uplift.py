"""Uplift-based target-user attacks (after Wang et al., PAPERS.md).

The coattails seller wants its targets in *any* I2I list; the uplift
attacker wants them in front of a chosen **audience** — the users whose
conversion uplift is worth buying.  Wang et al. select the target users
first and optimise the injection toward exactly them.  Translated to the
Eq. 1 co-click model:

1. **Victim selection.**  The planner picks the ``n_victims`` most
   active organic users (high-degree profiles: the marketplace's heavy
   browsers, the audience with the most recommendation slots to win).
   Victims are *never labelled* — they are organic users the attack is
   aimed at, a property the label-soundness tests rely on.
2. **Anchor mining.**  From the victims' click histories the planner
   mines *anchor items*: the ordinary (non-hot) items the victims click
   most.  An I2I list conditioned on an anchor is precisely what the
   victims are shown.
3. **Injection.**  Workers click a few anchors lightly — mimicking the
   audience's taste and establishing the co-click link — and the fresh
   targets heavily, wiring the targets into the anchors' I2I lists.
   Optionally a hot ride is kept (anchored campaigns still benefit from
   mass-traffic slots).

Because anchors are *ordinary* items, the resulting structure is exactly
the near-biclique RICD extracts; what changes is the camouflage surface:
worker profiles overlap the victims' organic profiles, so behavioural
screens keyed on "clicks nothing organic" miss them.  The adaptive
variant additionally caps target depths under the observed ``T_click``,
pads its (single) hot ride past the screening band, and spreads anchors
across more of the audience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ...core.thresholds import pareto_hot_threshold
from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from .adaptive import ObservedDefense
from .base import AttackGroup, AttackPlan, ClickBudget

__all__ = ["UpliftAttackConfig", "plan_uplift", "inject_uplift"]

Node = Hashable


@dataclass(frozen=True)
class UpliftAttackConfig:
    """Configuration of the uplift-attack planner.

    Parameters
    ----------
    click_budget:
        Exact fake clicks to place.
    n_victims:
        Audience size: most-active organic users targeted.
    n_targets:
        Fresh target listings per group.
    workers_per_group:
        Accounts per seller before a new group opens.
    target_clicks:
        Per (worker, target) clicks (capped when adaptive).
    anchors_per_worker:
        Anchor items each worker mimics (doubled when adaptive: a wider
        anchor spread makes the audience overlap look organic).
    hot_rides:
        Hot items ridden per group (0 disables the coattail entirely —
        a pure audience-targeted campaign).
    adaptive:
        Observe resolved thresholds and shape under them.
    seed:
        RNG seed.
    """

    click_budget: int = 2_000
    n_victims: int = 50
    n_targets: int = 10
    workers_per_group: int = 12
    target_clicks: int = 15
    anchors_per_worker: int = 3
    hot_rides: int = 1
    adaptive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.click_budget < 1:
            raise DataGenError("click_budget must be >= 1")
        if min(self.n_victims, self.n_targets, self.workers_per_group) < 1:
            raise DataGenError("n_victims/n_targets/workers_per_group must be >= 1")
        if self.target_clicks < 1:
            raise DataGenError("target_clicks must be >= 1")
        if self.anchors_per_worker < 0 or self.hot_rides < 0:
            raise DataGenError("anchors_per_worker and hot_rides must be >= 0")


def _mine_anchors(
    graph: BipartiteGraph, victims: list[Node], hot: set[Node], limit: int
) -> list[Node]:
    """The victims' favourite ordinary items, by audience click mass."""
    mass: dict[Node, int] = {}
    for victim in victims:
        for item, clicks in graph.user_neighbors(victim).items():
            if item not in hot:
                mass[item] = mass.get(item, 0) + clicks
    return sorted(mass, key=lambda item: (-mass[item], str(item)))[:limit]


def plan_uplift(graph: BipartiteGraph, config: UpliftAttackConfig) -> AttackPlan:
    """Plan a budget-exact uplift campaign against ``graph``."""
    rng = np.random.default_rng(config.seed)
    budget = ClickBudget(config.click_budget)
    plan = AttackPlan(family="uplift", adaptive=config.adaptive, budget=budget.total)
    defense = ObservedDefense.observe(graph) if config.adaptive else None

    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item for item in graph.items() if graph.item_total_clicks(item) >= hot_boundary
    ]
    if not hot_pool:
        raise DataGenError("cannot inject attacks: graph has no hot items")

    victims = sorted(
        graph.users(), key=lambda user: (-graph.user_total_clicks(user), str(user))
    )[: config.n_victims]
    anchors_per_worker = config.anchors_per_worker * (2 if defense else 1)
    anchor_pool = _mine_anchors(
        graph, victims, set(hot_pool), limit=max(10, 4 * anchors_per_worker)
    )

    per_edge = (
        defense.capped(config.target_clicks) if defense else config.target_clicks
    )
    hot_clicks = defense.hot_pad if defense else 1

    group_index = 0
    while not budget.exhausted:
        group = AttackGroup(group_id=group_index)
        if config.hot_rides and hot_pool:
            chosen_hot = rng.choice(
                len(hot_pool), size=min(config.hot_rides, len(hot_pool)), replace=False
            )
            group.hot_items = [
                hot_pool[int(index)] for index in np.atleast_1d(chosen_hot)
            ]
        for target_index in range(config.n_targets):
            target = f"up{group_index}_t{target_index}"
            group.target_items.append(target)
            plan.fresh_items.add(target)

        for worker_index in range(config.workers_per_group):
            if budget.exhausted:
                break
            worker = f"up{group_index}_w{worker_index}"
            group.workers.append(worker)
            plan.fresh_users.add(worker)
            for hot in group.hot_items:
                grant = budget.take(hot_clicks)
                if grant:
                    group.fake_edges.append((worker, hot, grant))
            if anchor_pool and anchors_per_worker:
                chosen = rng.choice(
                    len(anchor_pool),
                    size=min(anchors_per_worker, len(anchor_pool)),
                    replace=False,
                )
                for index in np.atleast_1d(chosen):
                    grant = budget.take(int(rng.integers(1, 3)))
                    if grant:
                        group.fake_edges.append((worker, anchor_pool[int(index)], grant))
            for target in group.target_items:
                grant = budget.take(per_edge)
                if grant:
                    group.fake_edges.append((worker, target, grant))
        plan.groups.append(group)
        group_index += 1
    return plan


def inject_uplift(graph: BipartiteGraph, config: UpliftAttackConfig):
    """Plan against ``graph``, apply in place, return exact labels."""
    return plan_uplift(graph, config).apply(graph)
