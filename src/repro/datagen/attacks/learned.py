"""Adversarially *learned* injection (after Tang et al., PAPERS.md).

Where the coattails injector executes the paper's fixed Eq. 3 recipe,
this family *optimises* its campaign against a white-box surrogate of
the recommender — the repository's own Eq. 1/2 I2I model
(:mod:`repro.core.i2i`) — before spending a single click:

1. **Hot-item choice is learned.**  Eq. 2 says the marginal I2I gain of
   a target click shrinks with the hot item's existing co-click mass, so
   the planner measures that mass for every hot candidate and rides the
   *least-contested* hot items, not random ones.
2. **Click depth is learned.**  Instead of the fixed "click the target
   13 times", the planner scans per-edge depths ``d`` and maximises the
   surrogate utility rate — Eq. 2 lift per click spent, amortising the
   hot-link cost a new worker pays before its target clicks count —
   picking the depth a gradient attacker would converge to.  The
   *adaptive* variant adds the detectability penalty: depths at or above
   the observed ``T_click`` are charged ``detect_penalty``, which pushes
   the optimum under the threshold (and pads hot rides past the
   screening band, where the static optimum is the Eq. 3 single click).
3. **Filler profiles.**  Each worker carries a small learned filler set
   (popular-but-ordinary items) so its profile resembles the organic
   users the surrogate was fitted on — Tang et al.'s generator
   regularisation, reduced to its behavioural effect.

The result is still an exact-ground-truth campaign: every worker and
fresh target is labelled, every placed click is drawn from the
:class:`~repro.datagen.attacks.base.ClickBudget` ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ...core.i2i import co_click_counts
from ...core.thresholds import pareto_hot_threshold
from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from .adaptive import ObservedDefense, straddle_anchors
from .base import AttackGroup, AttackPlan, ClickBudget

__all__ = ["LearnedInjectionConfig", "plan_learned", "inject_learned"]

Node = Hashable


@dataclass(frozen=True)
class LearnedInjectionConfig:
    """Configuration of the learned-injection planner.

    Parameters
    ----------
    click_budget:
        Exact fake clicks to place.
    n_targets:
        Fresh target listings per group.
    workers_per_group:
        Accounts per seller before a new group opens (the attacker knows
        about the detector's group-size cap — white-box assumption).
    hot_rides:
        Hot items ridden per group (chosen by surrogate, see module doc).
    fillers_per_worker:
        Learned filler items per worker profile.
    max_depth:
        Upper end of the per-edge click-depth scan.
    detect_penalty:
        Surrogate penalty (in Eq. 2 lift units) charged to depths at or
        above the observed ``T_click``; only active when ``adaptive``.
    adaptive:
        Observe the resolved thresholds and shape under them.
    seed:
        RNG seed.
    """

    click_budget: int = 2_000
    n_targets: int = 10
    workers_per_group: int = 10
    hot_rides: int = 1
    fillers_per_worker: int = 3
    max_depth: int = 30
    detect_penalty: float = 0.5
    adaptive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.click_budget < 1:
            raise DataGenError("click_budget must be >= 1")
        if min(self.n_targets, self.workers_per_group, self.max_depth) < 1:
            raise DataGenError("n_targets/workers_per_group/max_depth must be >= 1")
        if self.hot_rides < 0 or self.fillers_per_worker < 0:
            raise DataGenError("hot_rides and fillers_per_worker must be >= 0")
        if self.detect_penalty < 0:
            raise DataGenError("detect_penalty must be >= 0")


def _contested_mass(graph: BipartiteGraph, hot_item: Node) -> int:
    """Existing co-click mass competing for ``hot_item``'s I2I list (Eq. 1 denominator)."""
    return sum(co_click_counts(graph, hot_item).values())


def _learned_depth(
    baseline_mass: float,
    hot_cost: int,
    n_targets: int,
    max_depth: int,
    defense: ObservedDefense | None,
    penalty: float,
) -> int:
    """The per-edge click depth the surrogate optimiser converges to.

    Utility rate of depth ``d``: the Eq. 2 lift a worker's ``n_targets``
    edges of depth ``d`` buy, minus the detectability penalty, per click
    spent (including the worker's amortised hot-link cost).  The scan is
    the closed-form stand-in for Tang et al.'s gradient loop — the
    surrogate is concave in ``d``, so the argmax is exact.
    """
    per_target_baseline = max(1.0, baseline_mass / max(1, n_targets))
    best_depth, best_rate = 1, -np.inf
    for depth in range(1, max_depth + 1):
        lift = depth / (per_target_baseline + depth)
        penalised = penalty if (defense is not None and depth >= defense.t_click) else 0.0
        rate = (n_targets * lift - penalised) / (n_targets * depth + hot_cost)
        if rate > best_rate:
            best_depth, best_rate = depth, rate
    if defense is not None:
        # Never converge above the observed threshold: the penalty makes
        # it sub-optimal for sane settings, the clamp makes it certain.
        best_depth = min(best_depth, defense.sub_threshold_clicks)
    return best_depth


def plan_learned(graph: BipartiteGraph, config: LearnedInjectionConfig) -> AttackPlan:
    """Plan a budget-exact learned-injection campaign against ``graph``."""
    rng = np.random.default_rng(config.seed)
    budget = ClickBudget(config.click_budget)
    plan = AttackPlan(family="learned", adaptive=config.adaptive, budget=budget.total)
    defense = ObservedDefense.observe(graph) if config.adaptive else None

    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item for item in graph.items() if graph.item_total_clicks(item) >= hot_boundary
    ]
    if not hot_pool:
        raise DataGenError("cannot inject attacks: graph has no hot items")
    # Learned hot-item choice: least-contested first (ties by id for
    # determinism).  Each group rides the next-cheapest hot items.
    ranked_hot = sorted(hot_pool, key=lambda item: (_contested_mass(graph, item), str(item)))

    # Learned filler pool: popular-but-ordinary items, by reach.
    filler_pool = sorted(
        (item for item in graph.items() if item not in hot_pool),
        key=lambda item: (-graph.item_degree(item), str(item)),
    )[: max(20, 4 * config.fillers_per_worker)]

    hot_clicks = defense.hot_pad if defense else 1
    group_index = 0
    while not budget.exhausted:
        group = AttackGroup(group_id=group_index)
        offset = (group_index * config.hot_rides) % max(1, len(ranked_hot))
        group.hot_items = [
            ranked_hot[(offset + ride) % len(ranked_hot)]
            for ride in range(min(config.hot_rides, len(ranked_hot)))
        ]
        for target_index in range(config.n_targets):
            target = f"lr{group_index}_t{target_index}"
            group.target_items.append(target)
            plan.fresh_items.add(target)

        baseline = sum(_contested_mass(graph, hot) for hot in group.hot_items)
        depth = _learned_depth(
            baseline_mass=float(baseline),
            hot_cost=hot_clicks * max(1, len(group.hot_items)),
            n_targets=config.n_targets,
            max_depth=config.max_depth,
            defense=defense,
            penalty=config.detect_penalty,
        )

        for worker_index in range(config.workers_per_group):
            if budget.exhausted:
                break
            worker = f"lr{group_index}_w{worker_index}"
            group.workers.append(worker)
            plan.fresh_users.add(worker)
            for hot in group.hot_items:
                grant = budget.take(hot_clicks)
                if grant:
                    group.fake_edges.append((worker, hot, grant))
            for target in group.target_items:
                grant = budget.take(depth)
                if grant:
                    group.fake_edges.append((worker, target, grant))
            fillers: list[Node] = []
            if defense:
                fillers.extend(
                    straddle_anchors(graph, rng, n_anchors=2, exclude=set(hot_pool))
                )
            if config.fillers_per_worker and filler_pool:
                chosen = rng.choice(
                    len(filler_pool),
                    size=min(config.fillers_per_worker, len(filler_pool)),
                    replace=False,
                )
                fillers.extend(filler_pool[int(index)] for index in chosen)
            for item in fillers:
                grant = budget.take(1)
                if grant:
                    group.fake_edges.append((worker, item, grant))
        plan.groups.append(group)
        group_index += 1
    return plan


def inject_learned(graph: BipartiteGraph, config: LearnedInjectionConfig):
    """Plan against ``graph``, apply in place, return exact labels."""
    return plan_learned(graph, config).apply(graph)
