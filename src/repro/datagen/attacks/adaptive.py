"""Adaptive shaping: attacks that observe the deployed defense.

The paper assumes attackers "have complete knowledge of how the
recommendation system works and the attack detection mechanisms"
(Section III-A).  The static families in this package ignore that power;
the *adaptive* variants use it.  Concretely an adaptive planner:

1. **observes** the thresholds the detector would resolve on the current
   marketplace — the Pareto ``T_hot`` and the Eq. 4 ``T_click`` — via
   :class:`ObservedDefense` (the same derivations
   :class:`~repro.pipeline.stages.ResolveThresholds` runs, so the
   observation is exact, not an estimate);
2. **shapes** its click placement to sit *under* those thresholds:
   per-edge target clicks capped at ``T_click - 1``
   (:meth:`ObservedDefense.capped`), hot rides padded up to the
   screening module's organic-looking band
   (:meth:`ObservedDefense.hot_pad`), camouflage volume increased;
3. optionally **straddles** organic communities
   (:func:`straddle_anchors`) so naive partitioners would tear the
   group, and **slow-drips** the campaign over the stream clock
   (:meth:`~repro.datagen.attacks.base.AttackPlan.schedule`) so no
   single micro-batch moves a record past a threshold.

Shaping never changes a campaign's *budget*, only its geometry: the same
clicks spread over more edges, more workers, and more time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ...core.thresholds import pareto_hot_threshold, t_click_from_graph
from ...graph.bipartite import BipartiteGraph

__all__ = ["ObservedDefense", "straddle_anchors"]

Node = Hashable


@dataclass(frozen=True)
class ObservedDefense:
    """What a fully informed attacker reads off the deployed detector.

    Attributes
    ----------
    t_hot:
        The resolved hot-item threshold (total clicks).
    t_click:
        The resolved abnormal-click threshold (Eq. 4).
    hot_click_cap:
        The screening module's organic-looking band for mean hot-item
        clicks (users at or above it are cleared by the user behaviour
        check — Section IV-A's "< 4" observation turned into a defense).
    """

    t_hot: float
    t_click: float
    hot_click_cap: float = 4.0

    @classmethod
    def observe(
        cls, graph: BipartiteGraph, hot_click_cap: float = 4.0
    ) -> "ObservedDefense":
        """Resolve the thresholds exactly as the detector would.

        Uses the same Section IV derivations the framework's
        ``ResolveThresholds`` stage runs on the pre-attack marketplace —
        the white-box observation the paper's threat model grants.
        """
        return cls(
            t_hot=float(pareto_hot_threshold(graph)),
            t_click=float(t_click_from_graph(graph)),
            hot_click_cap=hot_click_cap,
        )

    @property
    def sub_threshold_clicks(self) -> int:
        """The largest per-edge click count that is *not* abnormal."""
        return max(1, int(self.t_click) - 1)

    def capped(self, desired: int) -> int:
        """``desired`` clicks, clipped under the abnormal-click threshold."""
        return max(1, min(int(desired), self.sub_threshold_clicks))

    @property
    def hot_pad(self) -> int:
        """Hot-item clicks per ride that make a worker look organic.

        The user behaviour check clears users whose *mean* hot-item
        clicks reach ``hot_click_cap``; an adaptive worker therefore
        rides each hot item exactly that often instead of the Eq. 3
        optimum of once.
        """
        return max(1, int(np.ceil(self.hot_click_cap)))


def straddle_anchors(
    graph: BipartiteGraph,
    rng: np.random.Generator,
    n_anchors: int = 2,
    exclude: frozenset[Node] | set[Node] = frozenset(),
) -> list[Node]:
    """Low-degree items from ``n_anchors`` distinct users' neighbourhoods.

    Component-straddling camouflage: each returned item anchors the
    campaign into a different organic user's community, so a node-level
    (hash/range) partition of the graph would scatter the attack group
    across workers while the component-aligned shard layer keeps it
    whole.  Anchor users are sampled without replacement; from each, the
    least-clicked neighbouring item is chosen (cheap to ride, unlikely to
    be hot).
    """
    users = [user for user in graph.users() if graph.user_degree(user) > 0]
    if not users or n_anchors < 1:
        return []
    chosen = rng.choice(len(users), size=min(n_anchors, len(users)), replace=False)
    anchors: list[Node] = []
    for index in np.atleast_1d(chosen):
        user = users[int(index)]
        neighbours = [
            item for item in graph.user_neighbors(user) if item not in exclude
        ]
        if not neighbours:
            continue
        anchor = min(neighbours, key=lambda item: (graph.item_total_clicks(item), str(item)))
        if anchor not in anchors:
            anchors.append(anchor)
    return anchors
