"""The attack-family registry: one uniform door into the zoo.

Every family exposes the same planning signature through a
:class:`FamilySpec`, so the red-team harness
(:func:`repro.eval.robustness.red_team`), the ``ricd redteam`` CLI and
the property/metamorphic test grids can iterate over *all* families
without knowing their individual config dataclasses:

>>> from repro.datagen.marketplace import MarketplaceConfig, generate_marketplace
>>> graph = generate_marketplace(MarketplaceConfig(n_users=800, n_items=200, seed=3))
>>> plan = plan_family(graph, "coattails", budget=500, seed=0)
>>> plan.clicks_spent
500

Families (all emit exact ground truth; budgets are spent exactly):

``coattails``
    The paper's own attack model, budget-parameterised — the baseline
    every other family's detectability is compared against.
``learned``
    Adversarially learned injection (Tang et al.): hot items, click
    depths and filler profiles optimised against the Eq. 1/2 surrogate.
``poisoning``
    Influence-function poisoning (Fang et al.): filler edges chosen by
    marketplace-wide influence scores.
``uplift``
    Uplift-based target-user attacks (Wang et al.): campaigns aimed at
    a mined audience through its anchor items.
``obfuscation``
    Profile obfuscation (Yang et al.): workers groom organic-looking
    histories that dilute every behavioural screen.

Each family also has an **adaptive** variant (``adaptive=True``): the
planner observes the resolved ``T_hot``/``T_click`` of the deployed
detector on the pre-attack marketplace and shapes its clicks to sit
under the thresholds (see :mod:`repro.datagen.attacks.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from ..labels import GroundTruth
from .base import AttackPlan
from .coattails import CoattailsCampaignConfig, plan_coattails
from .learned import LearnedInjectionConfig, plan_learned
from .obfuscation import ProfileObfuscationConfig, plan_obfuscation
from .poisoning import InfluencePoisoningConfig, plan_poisoning
from .uplift import UpliftAttackConfig, plan_uplift

__all__ = ["FamilySpec", "ATTACK_FAMILIES", "family_names", "plan_family", "inject_family"]


@dataclass(frozen=True)
class FamilySpec:
    """One attack family's uniform planning interface.

    Attributes
    ----------
    name:
        Registry key (also ``AttackPlan.family``).
    citation:
        The PAPERS.md lineage of the model.
    plan:
        ``(graph, budget, seed, adaptive) -> AttackPlan``.
    """

    name: str
    citation: str
    plan: Callable[[BipartiteGraph, int, int, bool], AttackPlan]


def _spec(name: str, citation: str, config_type, planner) -> FamilySpec:
    def plan(graph: BipartiteGraph, budget: int, seed: int, adaptive: bool) -> AttackPlan:
        config = config_type(click_budget=budget, seed=seed, adaptive=adaptive)
        return planner(graph, config)

    return FamilySpec(name=name, citation=citation, plan=plan)


#: Registry of every attack family, in canonical reporting order.
ATTACK_FAMILIES: dict[str, FamilySpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "coattails",
            "Ride Item's Coattails (the source paper, Section III-A)",
            CoattailsCampaignConfig,
            plan_coattails,
        ),
        _spec(
            "learned",
            "adversarially learned injection (Tang et al.)",
            LearnedInjectionConfig,
            plan_learned,
        ),
        _spec(
            "poisoning",
            "influence-function data poisoning (Fang et al.)",
            InfluencePoisoningConfig,
            plan_poisoning,
        ),
        _spec(
            "uplift",
            "uplift-based target-user attacks (Wang et al.)",
            UpliftAttackConfig,
            plan_uplift,
        ),
        _spec(
            "obfuscation",
            "profile-obfuscation attacks (Yang et al.)",
            ProfileObfuscationConfig,
            plan_obfuscation,
        ),
    )
}


def family_names() -> list[str]:
    """Registry keys in canonical reporting order."""
    return list(ATTACK_FAMILIES)


def plan_family(
    graph: BipartiteGraph,
    family: str,
    budget: int,
    seed: int = 0,
    adaptive: bool = False,
) -> AttackPlan:
    """Plan ``family``'s campaign at ``budget`` clicks against ``graph``."""
    try:
        spec = ATTACK_FAMILIES[family]
    except KeyError:
        known = ", ".join(family_names())
        raise DataGenError(f"unknown attack family {family!r} (known: {known})") from None
    return spec.plan(graph, budget, seed, adaptive)


def inject_family(
    graph: BipartiteGraph,
    family: str,
    budget: int,
    seed: int = 0,
    adaptive: bool = False,
) -> GroundTruth:
    """Plan, apply in place, and return exact labels — one call."""
    return plan_family(graph, family, budget, seed, adaptive).apply(graph)
