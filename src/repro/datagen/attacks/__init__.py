"""Adversarial attack zoo: fake-click campaign planners with exact labels.

This package grew out of the single-module injector that reproduced the
paper's own attack model (now :mod:`repro.datagen.attacks.coattails`).
It keeps that module's public API verbatim — ``AttackConfig`` /
``inject_attacks`` and the private helpers :mod:`repro.datagen.evasion`
leans on — and adds:

* :mod:`~repro.datagen.attacks.base` — the shared campaign machinery:
  :class:`ClickBudget` (exact-spend ledger), :class:`AttackPlan`
  (plan → apply/schedule → exact :class:`~repro.datagen.labels.GroundTruth`).
* :mod:`~repro.datagen.attacks.adaptive` — :class:`ObservedDefense`,
  the attacker-side view of the deployed thresholds.
* four literature-derived families (``learned``, ``poisoning``,
  ``uplift``, ``obfuscation``) plus the budgeted ``coattails`` planner.
* :mod:`~repro.datagen.attacks.registry` — the uniform
  ``plan_family(graph, name, budget, seed, adaptive)`` door the
  red-team harness and the test grids iterate over.
"""

from __future__ import annotations

from .adaptive import ObservedDefense, straddle_anchors
from .base import (
    AttackGroup,
    AttackPlan,
    ClickBudget,
    ordinary_item_pool,
    pick_hot_items,
    target_id,
    uniform_int,
    worker_id,
)
from .coattails import (
    AttackConfig,
    CoattailsCampaignConfig,
    inject_attacks,
    plan_coattails,
)
from .learned import LearnedInjectionConfig, inject_learned, plan_learned
from .obfuscation import ProfileObfuscationConfig, inject_obfuscation, plan_obfuscation
from .poisoning import (
    InfluencePoisoningConfig,
    influence_scores,
    inject_poisoning,
    plan_poisoning,
)
from .registry import (
    ATTACK_FAMILIES,
    FamilySpec,
    family_names,
    inject_family,
    plan_family,
)
from .uplift import UpliftAttackConfig, inject_uplift, plan_uplift

# Back-compat aliases: these started life as module-private helpers of the
# original ``repro.datagen.attacks`` module and are imported by name from
# ``repro.datagen.evasion``.
_uniform_int = uniform_int
_pick_hot_items = pick_hot_items

__all__ = [
    # paper attack model (original module API)
    "AttackConfig",
    "AttackGroup",
    "inject_attacks",
    "worker_id",
    "target_id",
    # shared machinery
    "AttackPlan",
    "ClickBudget",
    "ObservedDefense",
    "straddle_anchors",
    "uniform_int",
    "pick_hot_items",
    "ordinary_item_pool",
    # families
    "CoattailsCampaignConfig",
    "plan_coattails",
    "LearnedInjectionConfig",
    "plan_learned",
    "inject_learned",
    "InfluencePoisoningConfig",
    "influence_scores",
    "plan_poisoning",
    "inject_poisoning",
    "UpliftAttackConfig",
    "plan_uplift",
    "inject_uplift",
    "ProfileObfuscationConfig",
    "plan_obfuscation",
    "inject_obfuscation",
    # registry
    "FamilySpec",
    "ATTACK_FAMILIES",
    "family_names",
    "plan_family",
    "inject_family",
]
