"""Shared substrate of the attack zoo.

Every attack family in this package — the paper's own "Ride Item's
Coattails" model and the stronger families from the literature — builds
on the same three primitives:

* :class:`AttackGroup`, the per-campaign record of workers, targets and
  fake edges (unchanged from the original single-module injector, so the
  exact-ground-truth contract of :mod:`repro.eval.groundtruth` holds for
  every family);
* :class:`ClickBudget`, the spend ledger that makes campaigns comparable
  across families: a planner may only place clicks it ``take``s from the
  ledger, so "family X at budget B" means *exactly* B fake clicks hit the
  graph — the invariant the property suite pins;
* :class:`AttackPlan`, a campaign planned against a snapshot of the
  marketplace but not yet applied.  Plans support three consumption
  modes: one-shot :meth:`~AttackPlan.apply` (batch experiments),
  :meth:`~AttackPlan.schedule` (slow-drip click batches for the streaming
  service), and plain inspection (tests).

Planning and application are split because the *adaptive* variants need
to observe the deployed defense (resolved ``T_hot``/``T_click``) on the
pre-attack graph and because the slow-drip replay must emit the very same
edges the batch experiments see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from ..labels import GroundTruth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...core.incremental import ClickBatch

__all__ = [
    "AttackGroup",
    "AttackPlan",
    "ClickBudget",
    "worker_id",
    "target_id",
]

Node = Hashable


def worker_id(group_index: int, worker_index: int) -> str:
    """Canonical crowd-worker account id."""
    return f"w{group_index}_{worker_index}"


def target_id(group_index: int, target_index: int) -> str:
    """Canonical target-item id."""
    return f"t{group_index}_{target_index}"


@dataclass
class AttackGroup:
    """One injected attack group (any family).

    Attributes
    ----------
    group_id:
        Sequential index of the group.
    workers:
        Crowd-worker account ids (fresh and hijacked).
    hot_items:
        Existing hot items the group rides.
    target_items:
        Low-quality items being boosted.
    fake_edges:
        The injected ``(user, item, clicks)`` records, including hot and
        camouflage clicks — everything attributable to the attack.
    """

    group_id: int
    workers: list[Node] = field(default_factory=list)
    hot_items: list[Node] = field(default_factory=list)
    target_items: list[Node] = field(default_factory=list)
    fake_edges: list[tuple[Node, Node, int]] = field(default_factory=list)

    @property
    def fake_click_volume(self) -> int:
        """Total fake clicks injected by this group."""
        return sum(clicks for _user, _item, clicks in self.fake_edges)

    def __repr__(self) -> str:
        return (
            f"AttackGroup(id={self.group_id}, workers={len(self.workers)}, "
            f"hot={len(self.hot_items)}, targets={len(self.target_items)}, "
            f"fake_clicks={self.fake_click_volume})"
        )


class ClickBudget:
    """A strict fake-click spend ledger.

    Planners request clicks through :meth:`take`; the grant never exceeds
    what remains, so a finished plan's total spend can be compared to the
    configured budget exactly.  Families are written so that, for any
    budget at or above their documented minimum, they drain the ledger to
    zero — "budget 5000" then means 5000 clicks on the graph, no more, no
    less, regardless of family or adaptivity.
    """

    def __init__(self, total: int):
        if total < 1:
            raise DataGenError(f"click budget must be >= 1, got {total}")
        self.total = int(total)
        self.spent = 0

    @property
    def remaining(self) -> int:
        """Clicks still available to spend."""
        return self.total - self.spent

    @property
    def exhausted(self) -> bool:
        """Whether the ledger is drained."""
        return self.remaining <= 0

    def take(self, clicks: int) -> int:
        """Grant at most ``clicks`` from the remainder; returns the grant."""
        grant = max(0, min(int(clicks), self.remaining))
        self.spent += grant
        return grant

    def __repr__(self) -> str:
        return f"ClickBudget(spent={self.spent}/{self.total})"


@dataclass
class AttackPlan:
    """A fully planned, not-yet-applied campaign.

    Attributes
    ----------
    family:
        Registry name of the family that planned it.
    adaptive:
        Whether the plan was shaped against observed thresholds.
    budget:
        The click budget the planner drew from.
    groups:
        Planned groups; their ``fake_edges`` are the complete campaign.
    fresh_users, fresh_items:
        Nodes the campaign introduces (worker registrations, fresh target
        listings).  Hijacked accounts and ridden hot items are *not*
        listed here — they already exist in the marketplace.
    """

    family: str
    adaptive: bool
    budget: int
    groups: list[AttackGroup] = field(default_factory=list)
    fresh_users: set[Node] = field(default_factory=set)
    fresh_items: set[Node] = field(default_factory=set)

    @property
    def clicks_spent(self) -> int:
        """Total planned fake clicks across every group."""
        return sum(group.fake_click_volume for group in self.groups)

    @property
    def fake_edges(self) -> list[tuple[Node, Node, int]]:
        """Every planned ``(user, item, clicks)`` record, in plan order."""
        return [edge for group in self.groups for edge in group.fake_edges]

    def truth(self) -> GroundTruth:
        """Exact labels of the planned campaign."""
        truth = GroundTruth()
        for group in self.groups:
            truth.abnormal_users.update(group.workers)
            truth.abnormal_items.update(group.target_items)
            truth.groups.append(group)
        return truth

    def apply(self, graph: BipartiteGraph) -> GroundTruth:
        """Apply the whole campaign to ``graph`` in place; returns labels.

        Fresh nodes are registered first so even a worker whose edges were
        clipped by the budget still exists (and stays labelled — label
        soundness is a per-node property, not a per-edge one).
        """
        for user in sorted(self.fresh_users, key=str):
            graph.add_user(user)
        for item in sorted(self.fresh_items, key=str):
            graph.add_item(item)
        for user, item, clicks in self.fake_edges:
            graph.add_click(user, item, clicks)
        return self.truth()

    def unit_events(self) -> list[tuple[Node, Node, int]]:
        """The campaign as minimal click increments, in drip order.

        A planned 13-click edge becomes 13 unit events: the slow-drip
        shape, where no single batch moves any record past a threshold.
        Interleaved round-robin across edges so every batch touches many
        edges a little rather than one edge a lot.
        """
        remaining = [[user, item, clicks] for user, item, clicks in self.fake_edges]
        events: list[tuple[Node, Node, int]] = []
        while remaining:
            still = []
            for edge in remaining:
                user, item, clicks = edge
                events.append((user, item, 1))
                edge[2] = clicks - 1
                if edge[2] > 0:
                    still.append(edge)
            remaining = still
        return events

    def schedule(self, n_batches: int) -> list["ClickBatch"]:
        """Split the campaign into ``n_batches`` slow-drip click batches.

        Replaying every batch (in any order — clicks are additive)
        produces exactly the same final table as :meth:`apply`, which is
        the invariant the serve-parity difftest pins.
        """
        from ...core.incremental import ClickBatch

        if n_batches < 1:
            raise DataGenError(f"n_batches must be >= 1, got {n_batches}")
        events = self.unit_events()
        size = max(1, -(-len(events) // n_batches))  # ceil division
        return [
            ClickBatch.of(events[start : start + size])
            for start in range(0, len(events), size)
        ]

    def __repr__(self) -> str:
        return (
            f"AttackPlan(family={self.family!r}, adaptive={self.adaptive}, "
            f"groups={len(self.groups)}, spent={self.clicks_spent}/{self.budget})"
        )


def uniform_int(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    """One uniform draw from an inclusive ``(low, high)`` range."""
    low, high = bounds
    return int(rng.integers(low, high + 1))


def pick_hot_items(
    graph: BipartiteGraph,
    count: int,
    rng: np.random.Generator,
    hot_pool: Sequence[Node],
) -> list[Node]:
    """Sample ``count`` items from a precomputed hot pool."""
    if not hot_pool:
        raise DataGenError("cannot inject attacks: graph has no hot items")
    indices = rng.choice(len(hot_pool), size=min(count, len(hot_pool)), replace=False)
    return [hot_pool[int(index)] for index in indices]


def ordinary_item_pool(
    graph: BipartiteGraph, exclude: set[Node] | frozenset[Node] = frozenset()
) -> list[Node]:
    """Existing items eligible as camouflage/filler, in stable order."""
    return [item for item in graph.items() if item not in exclude]
