"""Influence-style data poisoning (after Fang et al., PAPERS.md).

Fang et al. pick each fake user's filler items by *influence*: how much
a single injected interaction shifts the recommender's output across the
whole user base.  For the Eq. 1 co-click I2I model, an injected click on
filler item ``j`` matters in proportion to how many organic users it
co-occurs with (reach) and how little competing mass dilutes it — so
this family scores every ordinary item by

.. math:: \\text{influence}(j) = \\frac{\\text{reach}(j)}{1 + \\text{clicks}(j) / \\text{reach}(j)}

(reach = distinct clickers; the denominator discounts items whose I2I
lists are already saturated by heavy per-user click mass) and builds
worker profiles from the top of that ranking.  Workers click their
targets heavily and their influence fillers lightly: the filler edges
wire the workers into the *centre* of the organic co-click graph, which
simultaneously (a) spreads the targets into many items' I2I lists and
(b) acts as functional camouflage — unlike the coattails camouflage,
these edges are chosen to do promotional work, not merely to "confuse
the risk control system".

The adaptive variant caps target depths under the observed ``T_click``,
pads hot rides past the screening band, and straddles organic
communities with its lowest-value filler edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ...core.thresholds import pareto_hot_threshold
from ...errors import DataGenError
from ...graph.bipartite import BipartiteGraph
from .adaptive import ObservedDefense, straddle_anchors
from .base import AttackGroup, AttackPlan, ClickBudget

__all__ = ["InfluencePoisoningConfig", "plan_poisoning", "inject_poisoning"]

Node = Hashable


@dataclass(frozen=True)
class InfluencePoisoningConfig:
    """Configuration of the influence-poisoning planner.

    Parameters
    ----------
    click_budget:
        Exact fake clicks to place.
    n_targets:
        Fresh target listings per group.
    workers_per_group:
        Accounts per seller before a new group opens.
    target_clicks:
        Per (worker, target) clicks (capped under ``T_click`` when
        adaptive).
    fillers_per_worker:
        Influence-ranked filler edges per worker.
    filler_pool_size:
        Size of the top-influence candidate pool workers sample from
        (sampling ∝ influence keeps profiles diverse enough that the
        worker set is not a perfect biclique on the filler side).
    hot_rides:
        Hot items ridden per group.
    adaptive:
        Observe resolved thresholds and shape under them.
    seed:
        RNG seed.
    """

    click_budget: int = 2_000
    n_targets: int = 10
    workers_per_group: int = 12
    target_clicks: int = 15
    fillers_per_worker: int = 5
    filler_pool_size: int = 40
    hot_rides: int = 1
    adaptive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.click_budget < 1:
            raise DataGenError("click_budget must be >= 1")
        if min(self.n_targets, self.workers_per_group, self.target_clicks) < 1:
            raise DataGenError("group shape values must be >= 1")
        if self.fillers_per_worker < 0 or self.hot_rides < 0:
            raise DataGenError("fillers_per_worker and hot_rides must be >= 0")
        if self.filler_pool_size < 1:
            raise DataGenError("filler_pool_size must be >= 1")


def influence_scores(
    graph: BipartiteGraph, exclude: set[Node] | frozenset[Node] = frozenset()
) -> dict[Node, float]:
    """Influence score of every ordinary item (see module docstring)."""
    scores: dict[Node, float] = {}
    for item in graph.items():
        if item in exclude:
            continue
        reach = graph.item_degree(item)
        if reach == 0:
            continue
        saturation = graph.item_total_clicks(item) / reach
        scores[item] = reach / (1.0 + saturation)
    return scores


def plan_poisoning(
    graph: BipartiteGraph, config: InfluencePoisoningConfig
) -> AttackPlan:
    """Plan a budget-exact influence-poisoning campaign against ``graph``."""
    rng = np.random.default_rng(config.seed)
    budget = ClickBudget(config.click_budget)
    plan = AttackPlan(family="poisoning", adaptive=config.adaptive, budget=budget.total)
    defense = ObservedDefense.observe(graph) if config.adaptive else None

    hot_boundary = pareto_hot_threshold(graph)
    hot_pool = [
        item for item in graph.items() if graph.item_total_clicks(item) >= hot_boundary
    ]
    if not hot_pool:
        raise DataGenError("cannot inject attacks: graph has no hot items")

    scores = influence_scores(graph, exclude=set(hot_pool))
    ranked = sorted(scores, key=lambda item: (-scores[item], str(item)))
    pool = ranked[: config.filler_pool_size]
    weights = np.array([scores[item] for item in pool], dtype=float)
    weights = weights / weights.sum() if weights.size and weights.sum() > 0 else None

    per_edge = (
        defense.capped(config.target_clicks) if defense else config.target_clicks
    )
    hot_clicks = defense.hot_pad if defense else 1

    group_index = 0
    while not budget.exhausted:
        group = AttackGroup(group_id=group_index)
        chosen_hot = rng.choice(
            len(hot_pool), size=min(config.hot_rides, len(hot_pool)), replace=False
        )
        group.hot_items = [hot_pool[int(index)] for index in np.atleast_1d(chosen_hot)]
        for target_index in range(config.n_targets):
            target = f"ip{group_index}_t{target_index}"
            group.target_items.append(target)
            plan.fresh_items.add(target)

        for worker_index in range(config.workers_per_group):
            if budget.exhausted:
                break
            worker = f"ip{group_index}_w{worker_index}"
            group.workers.append(worker)
            plan.fresh_users.add(worker)
            for hot in group.hot_items:
                grant = budget.take(hot_clicks)
                if grant:
                    group.fake_edges.append((worker, hot, grant))
            for target in group.target_items:
                grant = budget.take(per_edge)
                if grant:
                    group.fake_edges.append((worker, target, grant))
            fillers: list[Node] = []
            if pool:
                chosen = rng.choice(
                    len(pool),
                    size=min(config.fillers_per_worker, len(pool)),
                    replace=False,
                    p=weights,
                )
                fillers.extend(pool[int(index)] for index in np.atleast_1d(chosen))
            if defense:
                fillers.extend(
                    straddle_anchors(graph, rng, n_anchors=2, exclude=set(hot_pool))
                )
            for item in fillers:
                grant = budget.take(1)
                if grant:
                    group.fake_edges.append((worker, item, grant))
        plan.groups.append(group)
        group_index += 1
    return plan


def inject_poisoning(graph: BipartiteGraph, config: InfluencePoisoningConfig):
    """Plan against ``graph``, apply in place, return exact labels."""
    return plan_poisoning(graph, config).apply(graph)
