"""Array-native marketplace generation at paper proportions.

The dict-of-dict generator in :mod:`repro.datagen.marketplace` tops out
around the default 20k-user scale — every click is a Python dict insert.
This module generates the same *shape* of marketplace (heavy-tailed item
popularity, casual/power-user activity split, dense injected attack
blocks) directly as integer edge arrays, so a paper-proportioned graph
(``scale=1.0`` → 20M users / 4M items / ~90M click records, Section VII)
materialises in numpy at ~24 bytes per record instead of several hundred.

The output is deliberately engine-ready rather than id-ready: rows and
columns are integers, convertible to an
:class:`~repro.graph.indexed.IndexedGraph` (:func:`to_snapshot`) or — at
small scales only — a dict :class:`~repro.graph.bipartite.BipartiteGraph`
(:func:`to_bipartite`) when names or reference-engine comparisons are
needed.  Ground truth is exact by construction: worker rows and target
columns per injected group ride along in the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

__all__ = [
    "PAPER_USERS",
    "PAPER_ITEMS",
    "PAPER_RECORDS",
    "AtScaleConfig",
    "AtScaleArrays",
    "generate_at_scale",
    "to_snapshot",
    "to_bipartite",
]

#: The paper's Taobao click-table proportions (Section VII).
PAPER_USERS = 20_000_000
PAPER_ITEMS = 4_000_000
PAPER_RECORDS = 90_000_000


@dataclass(frozen=True)
class AtScaleConfig:
    """Knobs for one paper-proportioned marketplace.

    ``scale`` multiplies the paper's table proportions: users, items,
    records and attack-group count all shrink together, so a 0.1 run is a
    faithful 1/10 miniature rather than a denser or sparser graph.

    The organic population splits in two, mirroring what CorePruning
    (floors ``ceil(alpha * k2)`` / ``ceil(alpha * k1)``) sees at Taobao
    scale: a casual majority whose distinct-item degree sits *below* the
    default floors (pruned in the first cascade — the bandwidth-bound
    phase the roofline measures) and a small power-user cadre above them
    whose diffuse co-click structure SquarePruning must then reject.
    """

    scale: float = 0.001
    seed: int = 0
    #: Zipf exponent for item popularity (1.05 ≈ the Pareto 80/20 share
    #: the dict generator targets).
    popularity_exponent: float = 1.05
    #: Fraction of organic users in the high-activity cadre.
    power_user_fraction: float = 0.002
    #: Distinct-item degree ranges (casual stays under the default k=10
    #: floors; power users clear them and reach SquarePruning).
    casual_degree: tuple[int, int] = (1, 8)
    power_degree: tuple[int, int] = (10, 24)
    #: Injected attack groups per 1.0 scale, and their block shape.
    groups_at_full_scale: int = 400
    workers_per_group: tuple[int, int] = (12, 18)
    targets_per_group: tuple[int, int] = (10, 14)
    target_clicks: tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")


@dataclass
class AtScaleArrays:
    """One generated marketplace as canonical edge arrays.

    ``user_idx`` / ``item_idx`` / ``clicks`` are parallel per-edge arrays
    sorted by ``(row, column)`` with duplicate pairs coalesced — the same
    invariant :class:`~repro.graph.indexed.IndexedGraph` maintains.
    Attack workers occupy the trailing rows (``n_users - n_workers ...``);
    ``worker_rows`` / ``target_columns`` list each group's block.
    """

    n_users: int
    n_items: int
    user_idx: "np.ndarray"
    item_idx: "np.ndarray"
    clicks: "np.ndarray"
    worker_rows: list = field(default_factory=list)
    target_columns: list = field(default_factory=list)

    @property
    def n_edges(self) -> int:
        return len(self.user_idx)

    def csr(self):
        """User-major CSR adjacency ``(indptr, item_indices)``."""
        indptr = np.zeros(self.n_users + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.user_idx, minlength=self.n_users), out=indptr[1:])
        return indptr, self.item_idx

    def csc(self):
        """Item-major CSC adjacency ``(indptr, user_indices)``."""
        order = np.argsort(self.item_idx, kind="stable")
        indptr = np.zeros(self.n_items + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.item_idx, minlength=self.n_items), out=indptr[1:])
        return indptr, self.user_idx[order]


def _degree_draw(rng, count: int, bounds: tuple[int, int]):
    low, high = bounds
    return rng.integers(low, high + 1, size=count, dtype=np.int64)


def _zipf_cdf(n_items: int, exponent: float):
    weights = (np.arange(1, n_items + 1, dtype=np.float64)) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def generate_at_scale(config: AtScaleConfig) -> AtScaleArrays:
    """Generate one paper-proportioned marketplace with injected attacks."""
    if np is None:
        raise RuntimeError("numpy is not installed; use datagen.generate_scenario")
    rng = np.random.default_rng(config.seed)
    n_organic = max(60, int(PAPER_USERS * config.scale))
    n_items = max(30, int(PAPER_ITEMS * config.scale))
    n_power = max(1, int(n_organic * config.power_user_fraction))
    n_casual = n_organic - n_power

    # Organic records: each user draws a distinct-item degree, then that
    # many items from the Zipf popularity CDF.  Duplicate (user, item)
    # draws coalesce into click weights during canonicalization, exactly
    # like repeated add_click calls.
    casual_deg = _degree_draw(rng, n_casual, config.casual_degree)
    power_deg = _degree_draw(rng, n_power, config.power_degree)
    degrees = np.concatenate([casual_deg, power_deg])
    organic_users = np.repeat(np.arange(n_organic, dtype=np.int64), degrees)
    cdf = _zipf_cdf(n_items, config.popularity_exponent)
    organic_items = np.searchsorted(cdf, rng.random(len(organic_users))).astype(
        np.int64
    )
    organic_clicks = np.ones(len(organic_users), dtype=np.int64)

    # Attack blocks: dense worker x target bicliques on fresh user rows,
    # targeting cold-to-mid items (attackers boost products that lack
    # organic traction; the hot head is what they camouflage with, and
    # camouflage does not change pruning survivors at default floors).
    n_groups = max(2, int(round(config.groups_at_full_scale * config.scale)))
    worker_counts = _degree_draw(rng, n_groups, config.workers_per_group)
    target_counts = _degree_draw(rng, n_groups, config.targets_per_group)
    cold_band_start = n_items // 2
    block_users = []
    block_items = []
    block_clicks = []
    worker_rows: list = []
    target_columns: list = []
    next_row = n_organic
    for group in range(n_groups):
        workers = np.arange(next_row, next_row + worker_counts[group], dtype=np.int64)
        next_row += worker_counts[group]
        targets = rng.choice(
            np.arange(cold_band_start, n_items, dtype=np.int64),
            size=target_counts[group],
            replace=False,
        )
        block_users.append(np.repeat(workers, len(targets)))
        block_items.append(np.tile(targets, len(workers)))
        block_clicks.append(
            rng.integers(
                config.target_clicks[0],
                config.target_clicks[1] + 1,
                size=len(workers) * len(targets),
                dtype=np.int64,
            )
        )
        worker_rows.append(workers)
        target_columns.append(np.sort(targets))
    n_users = int(next_row)

    user_idx = np.concatenate([organic_users] + block_users)
    item_idx = np.concatenate([organic_items] + block_items)
    clicks = np.concatenate([organic_clicks] + block_clicks)

    # Canonicalize: sort by (row, column), coalesce duplicates.
    keys = user_idx * np.int64(n_items) + item_idx
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    unique_keys, starts = np.unique(keys, return_index=True)
    clicks = np.add.reduceat(clicks[order], starts)
    user_idx = (unique_keys // n_items).astype(np.int64)
    item_idx = (unique_keys % n_items).astype(np.int64)

    return AtScaleArrays(
        n_users=n_users,
        n_items=n_items,
        user_idx=user_idx,
        item_idx=item_idx,
        clicks=clicks,
        worker_rows=worker_rows,
        target_columns=target_columns,
    )


def to_snapshot(arrays: AtScaleArrays):
    """The marketplace as an :class:`~repro.graph.indexed.IndexedGraph`.

    Materialises ``u<row>`` / ``i<column>`` id lists — linear memory in
    nodes, fine up to ~1/10 scale; the roofline benchmark's full-scale
    runs stay on the raw arrays instead.
    """
    from ..graph.indexed import IndexedGraph

    users = [f"u{row}" for row in range(arrays.n_users)]
    items = [f"i{column}" for column in range(arrays.n_items)]
    return IndexedGraph.from_arrays(
        users, items, arrays.user_idx, arrays.item_idx, arrays.clicks
    )


def to_bipartite(arrays: AtScaleArrays):
    """The marketplace as a dict :class:`BipartiteGraph` (small scales only)."""
    from ..graph.bipartite import BipartiteGraph

    graph = BipartiteGraph()
    for user, item, count in zip(
        arrays.user_idx.tolist(), arrays.item_idx.tolist(), arrays.clicks.tolist()
    ):
        graph.add_click(f"u{user}", f"i{item}", count)
    return graph
