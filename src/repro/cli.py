"""Command-line entry point: ``python -m repro`` / ``ricd``.

Usage::

    ricd list                       # show available experiments
    ricd run fig8                   # run one experiment and print its report
    ricd run all                    # run every experiment in paper order
    ricd run fig8 --seed 7          # change the scenario seed
    ricd detect clicks.csv          # run RICD on a real click table
    ricd detect clicks.csv --k1 5 --k2 5 --output findings
    ricd detect clicks.csv --shards 4 --jobs 4   # component-sharded detection
    ricd serve --replay clicks.csv  # stream the table through the online service
    ricd serve --replay clicks.csv --rate 50000 --max-batch 2000
    ricd server --store ./store     # detection-as-a-service over HTTP
    ricd server --store ./store --bootstrap clicks.csv --port 8749
    ricd redteam                    # attack-zoo frontier on a clean marketplace
    ricd redteam --families learned,uplift --budgets 2000 --out frontier.json
"""

from __future__ import annotations

import argparse
import csv
import inspect
import sys
from pathlib import Path
from typing import Sequence

from . import obs
from .config import FeedbackPolicy, RICDParams
from .core.framework import RICDDetector
from .errors import ExperimentError, ReproError
from .eval.reporting import render_trace
from .experiments import EXPERIMENT_IDS, get_experiment
from .graph.io import read_click_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``ricd`` command."""
    parser = argparse.ArgumentParser(
        prog="ricd",
        description=(
            "RICD — 'Ride Item's Coattails' attack detection "
            "(ICDE 2021 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="scenario seed (default 0)"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for experiments that fan out (fig8 suite, "
            "fig9 sweeps); 1 runs serially (default)"
        ),
    )
    _add_trace_flags(run_parser)

    detect_parser = subparsers.add_parser(
        "detect", help="run RICD on a click-table file (User_ID, Item_ID, Click)"
    )
    detect_parser.add_argument("click_table", help="CSV/TSV click table path")
    detect_parser.add_argument("--k1", type=int, default=10, help="min group users")
    detect_parser.add_argument("--k2", type=int, default=10, help="min group items")
    detect_parser.add_argument(
        "--alpha", type=float, default=1.0, help="extension tolerance in (0, 1]"
    )
    detect_parser.add_argument(
        "--t-hot", type=float, default=None, help="hot threshold (default: Pareto rule)"
    )
    detect_parser.add_argument(
        "--t-click", type=float, default=None, help="abnormal-click threshold (default: Eq. 4)"
    )
    detect_parser.add_argument(
        "--max-group-users",
        type=int,
        default=18,
        help="group-size cap, 0 disables (property 4b)",
    )
    detect_parser.add_argument(
        "--expectation",
        type=int,
        default=0,
        help="minimum output size; > 0 enables the Fig. 7 feedback loop",
    )
    detect_parser.add_argument(
        "--engine",
        choices=("reference", "sparse", "bitset", "auto"),
        default="auto",
        help=(
            "extraction engine: pure-Python reference, scipy sparse, numpy "
            "bitset, or auto (bitset above the edge threshold; default)"
        ),
    )
    detect_parser.add_argument(
        "--auto-engine-threshold",
        type=int,
        default=20_000,
        help=(
            "edge count above which engine=auto switches to an accelerated "
            "engine (default 20000)"
        ),
    )
    detect_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the graph into up to N component-aligned shards and "
            "detect per shard — the same pipeline run under its sharded "
            "execution strategy (identical output; 1 = unsharded, default)"
        ),
    )
    detect_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the per-shard fan-out when --shards > 1; "
            "1 runs shards serially (default)"
        ),
    )
    detect_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "bounded retries (with backoff) for transient per-shard/worker "
            "failures before the serial fallback; 0 disables (default)"
        ),
    )
    detect_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "soft wall-clock budget: on expiry stragglers are abandoned and "
            "the run completes serially, marked degraded (default: none)"
        ),
    )
    detect_parser.add_argument(
        "--top", type=int, default=20, help="rows shown per risk ranking"
    )
    detect_parser.add_argument(
        "--output",
        default=None,
        help="prefix for <prefix>_users.csv / <prefix>_items.csv result files",
    )
    _add_trace_flags(detect_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the online detection service over a replayed click stream "
            "(micro-batch ingest, bounded-staleness rechecks)"
        ),
    )
    serve_parser.add_argument(
        "--replay",
        required=True,
        metavar="CLICK_TABLE",
        help="CSV/TSV click table replayed as a timestamped event stream",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=10_000.0,
        help="replayed event arrival rate, events per simulated second (default 10000)",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=1_000, help="events per micro-batch (default 1000)"
    )
    serve_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=100_000,
        help="bounded ingest queue size; overflow sheds oldest-first (default 100000)",
    )
    serve_parser.add_argument(
        "--max-dirty",
        type=int,
        default=5_000,
        help="staleness bound: dirty-region size that forces a recheck (default 5000)",
    )
    serve_parser.add_argument(
        "--max-batches",
        type=int,
        default=10,
        help="staleness bound: micro-batches between rechecks (default 10)",
    )
    serve_parser.add_argument(
        "--max-age",
        type=float,
        default=60.0,
        help="staleness bound: simulated seconds a dirty mark may wait (default 60)",
    )
    serve_parser.add_argument(
        "--checkpoints",
        type=int,
        default=0,
        help=(
            "evenly spaced exact synchronization points during the replay; each "
            "verifies the streamed state against a one-shot batch detection "
            "(default 0: final checkpoint only)"
        ),
    )
    serve_parser.add_argument("--k1", type=int, default=10, help="min group users")
    serve_parser.add_argument("--k2", type=int, default=10, help="min group items")
    serve_parser.add_argument(
        "--engine",
        choices=("reference", "sparse", "bitset", "auto"),
        default="auto",
        help="extraction engine for rechecks (default auto)",
    )
    _add_trace_flags(serve_parser)

    server_parser = subparsers.add_parser(
        "server",
        help=(
            "serve the detection API over HTTP from a persistent store "
            "(detection-as-a-service; restart-safe warm resume)"
        ),
    )
    server_parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help=(
            "detection store directory; created empty if missing, resumed "
            "warm (same verdicts at the same store version) if populated"
        ),
    )
    server_parser.add_argument(
        "--bootstrap",
        default=None,
        metavar="CLICK_TABLE",
        help=(
            "CSV/TSV click table detected as version 1 when the store is "
            "empty (ignored on a populated store, which resumes as-is)"
        ),
    )
    server_parser.add_argument("--host", default="127.0.0.1", help="bind host")
    server_parser.add_argument(
        "--port", type=int, default=8749, help="bind port; 0 picks an ephemeral port"
    )
    server_parser.add_argument("--k1", type=int, default=10, help="min group users")
    server_parser.add_argument("--k2", type=int, default=10, help="min group items")
    server_parser.add_argument(
        "--engine",
        choices=("reference", "sparse", "bitset", "auto"),
        default="auto",
        help="extraction engine for rechecks (default auto)",
    )
    server_parser.add_argument(
        "--max-batch", type=int, default=1_000, help="events per micro-batch (default 1000)"
    )
    server_parser.add_argument(
        "--max-dirty",
        type=int,
        default=5_000,
        help="staleness bound: dirty-region size that forces a recheck (default 5000)",
    )
    server_parser.add_argument(
        "--max-batches",
        type=int,
        default=10,
        help="staleness bound: micro-batches between rechecks (default 10)",
    )
    server_parser.add_argument(
        "--max-age",
        type=float,
        default=60.0,
        help="staleness bound: seconds a dirty mark may wait (default 60)",
    )
    server_parser.add_argument(
        "--no-pump-thread",
        action="store_true",
        help=(
            "do not start the background pump thread; the queue is only "
            "drained by explicit POST /v1/pump or /v1/checkpoint calls "
            "(deterministic driving for tests and replays)"
        ),
    )

    redteam_parser = subparsers.add_parser(
        "redteam",
        help=(
            "run the adversarial attack zoo against the detector and report "
            "the recall/precision frontier per (family x budget x adaptivity)"
        ),
    )
    redteam_parser.add_argument(
        "--families",
        default=None,
        metavar="LIST",
        help="comma-separated attack families (default: every registry family)",
    )
    redteam_parser.add_argument(
        "--budgets",
        default="2000,5000",
        metavar="LIST",
        help="comma-separated click budgets (default 2000,5000)",
    )
    redteam_parser.add_argument(
        "--adaptivity",
        choices=("static", "adaptive", "both"),
        default="both",
        help="attacker adaptivity levels to run (default both)",
    )
    redteam_parser.add_argument(
        "--scale",
        choices=("tiny", "small", "paper"),
        default="small",
        help="clean-marketplace preset the campaigns attack (default small)",
    )
    redteam_parser.add_argument(
        "--seed", type=int, default=0, help="marketplace + campaign seed (default 0)"
    )
    redteam_parser.add_argument("--k1", type=int, default=10, help="min group users")
    redteam_parser.add_argument("--k2", type=int, default=10, help="min group items")
    redteam_parser.add_argument(
        "--no-feedback",
        action="store_true",
        help="skip the Fig. 7 feedback-loop defense column",
    )
    redteam_parser.add_argument(
        "--drip",
        type=int,
        default=0,
        metavar="N_BATCHES",
        help=(
            "also replay each adaptive campaign as an N-batch slow drip "
            "through the online service and report the checkpoint parity "
            "(default 0: skip the serve replay)"
        ),
    )
    redteam_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the frontier as a JSON artifact to PATH",
    )
    return parser


def _add_trace_flags(subparser: argparse.ArgumentParser) -> None:
    """The shared observability flags (``detect`` and ``run``)."""
    subparser.add_argument(
        "--trace",
        action="store_true",
        help="record per-stage timings and counters; print a trace summary",
    )
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the trace as JSON to PATH (implies --trace)",
    )


def _trace_scope(args: argparse.Namespace):
    """An active recorder when tracing was requested, else a no-op scope."""
    if args.trace or args.trace_out:
        return obs.recording(obs.Recorder())
    import contextlib

    return contextlib.nullcontext(None)


def _emit_trace(recorder, args: argparse.Namespace) -> None:
    """Print and/or write the recorder's report per the trace flags."""
    if recorder is None:
        return
    report = recorder.report()
    print()
    print(render_trace(report))
    if args.trace_out:
        path = Path(args.trace_out)
        path.write_text(report.to_json() + "\n")
        print(f"\nwrote trace to {path}")


def _run_detect(args: argparse.Namespace) -> int:
    """The ``ricd detect`` subcommand body."""
    try:
        graph = read_click_table(args.click_table)
    except (OSError, ReproError) as error:
        print(f"error: cannot load {args.click_table}: {error}", file=sys.stderr)
        return 2
    try:
        params = RICDParams(
            k1=args.k1,
            k2=args.k2,
            alpha=args.alpha,
            t_hot=args.t_hot,
            t_click=args.t_click,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    feedback = (
        FeedbackPolicy(expectation=args.expectation) if args.expectation > 0 else None
    )
    try:
        detector = RICDDetector(
            params=params,
            feedback=feedback,
            max_group_users=args.max_group_users or None,
            engine=args.engine,
            auto_engine_edge_threshold=args.auto_engine_threshold,
            shards=args.shards,
            shard_jobs=args.jobs,
            retries=args.retries,
            deadline=args.deadline,
        )
    except ValueError as error:  # shards/jobs/retries/deadline out of range
        print(f"error: {error}", file=sys.stderr)
        return 2
    with _trace_scope(args) as recorder:
        if recorder is not None:
            recorder.meta.update(
                {
                    "command": "detect",
                    "input": str(args.click_table),
                    "engine": args.engine,
                    "shards": args.shards,
                }
            )
        try:
            result = detector.detect(graph)
        except RuntimeError as error:  # engine="sparse" without scipy
            print(f"error: {error}", file=sys.stderr)
            return 2

    print(f"loaded {graph!r}")
    resolved = detector.resolve_thresholds(graph)
    print(f"thresholds: T_hot={resolved.t_hot:.0f}, T_click={resolved.t_click:.0f}")
    print(
        f"detected {len(result.groups)} group(s): "
        f"{len(result.suspicious_users)} suspicious users, "
        f"{len(result.suspicious_items)} suspicious items "
        f"in {result.elapsed:.2f}s"
        + (f" ({result.feedback_rounds} feedback rounds)" if result.feedback_rounds else "")
    )
    if result.degraded:
        print(f"degraded run (fallbacks: {', '.join(result.degradations)})")
    if result.suspicious_users:
        print(f"\ntop-{args.top} users by risk score:")
        for user, score in result.top_users(args.top):
            print(f"  {user}\t{score:.2f}")
        print(f"\ntop-{args.top} items by risk score:")
        for item, score in result.top_items(args.top):
            print(f"  {item}\t{score:.2f}")

    if args.output:
        users_path = Path(f"{args.output}_users.csv")
        items_path = Path(f"{args.output}_items.csv")
        with users_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["User_ID", "Risk"])
            for user, score in result.top_users(len(result.user_scores)):
                writer.writerow([user, f"{score:.4f}"])
        with items_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Item_ID", "Risk"])
            for item, score in result.top_items(len(result.item_scores)):
                writer.writerow([item, f"{score:.4f}"])
        print(f"\nwrote {users_path} and {items_path}")
    _emit_trace(recorder, args)
    return 0


def _percentile(values: list, fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _run_serve(args: argparse.Namespace) -> int:
    """The ``ricd serve`` subcommand body: a deterministic stream replay."""
    import time as _time

    from .core.framework import RICDDetector
    from .graph.bipartite import BipartiteGraph
    from .serve import (
        DetectionService,
        ServeConfig,
        SimulatedClock,
        StalenessPolicy,
    )

    try:
        table = read_click_table(args.replay)
    except (OSError, ReproError) as error:
        print(f"error: cannot load {args.replay}: {error}", file=sys.stderr)
        return 2
    try:
        params = RICDParams(k1=args.k1, k2=args.k2)
        config = ServeConfig(
            queue_capacity=args.queue_capacity,
            max_batch=args.max_batch,
            staleness=StalenessPolicy(
                max_dirty=args.max_dirty,
                max_batches=args.max_batches,
                max_age=args.max_age,
            ),
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    records = [
        (user, item, table.get_click(user, item))
        for user in sorted(table.users(), key=str)
        for item in sorted(table.user_neighbors(user), key=str)
    ]
    clock = SimulatedClock()
    service = DetectionService.over_graph(
        BipartiteGraph(), params=params, engine=args.engine, config=config, clock=clock
    )
    batch_detector = RICDDetector(params=params, engine=args.engine)
    marks = (
        {round(len(records) * step / (args.checkpoints + 1)) for step in range(1, args.checkpoints + 1)}
        if args.checkpoints > 0
        else set()
    )

    with _trace_scope(args) as recorder:
        if recorder is not None:
            recorder.meta.update(
                {"command": "serve", "input": str(args.replay), "rate": args.rate}
            )
        started = _time.perf_counter()
        parity_failures = 0
        for index, (user, item, clicks) in enumerate(records, start=1):
            clock.advance_to(index / args.rate)
            service.submit(user, item, clicks, timestamp=clock.now())
            if len(service.queue) >= config.max_batch:
                service.pump()
            if index in marks:
                streamed = service.checkpoint()
                expected = batch_detector.detect(service.online.graph)
                ok = (
                    streamed.suspicious_users == expected.suspicious_users
                    and streamed.suspicious_items == expected.suspicious_items
                )
                parity_failures += 0 if ok else 1
                print(
                    f"checkpoint @ {index} events: "
                    f"{len(streamed.suspicious_users)} users / "
                    f"{len(streamed.suspicious_items)} items suspicious "
                    f"[batch parity {'ok' if ok else 'MISMATCH'}]"
                )
        result = service.checkpoint()
        wall = _time.perf_counter() - started
    snapshot = service.snapshot()

    lags = service.recheck_lags
    print(f"replayed {len(records)} events in {wall:.2f}s wall ({len(records) / max(wall, 1e-9):,.0f} events/s)")
    print(
        f"queue: {snapshot.queue.submitted} submitted, {snapshot.applied} ingested, "
        f"{snapshot.queue.shed} shed (oldest-first)"
    )
    print(
        f"rechecks: {snapshot.rechecks} "
        f"(recheck lag p50 {_percentile(lags, 0.5):.1f}s / p99 {_percentile(lags, 0.99):.1f}s simulated)"
    )
    print(
        f"final state: {len(result.groups)} group(s), "
        f"{len(result.suspicious_users)} suspicious users, "
        f"{len(result.suspicious_items)} suspicious items"
    )
    if snapshot.degraded or snapshot.provenance:
        print(f"degraded serving events: {', '.join(snapshot.provenance) or 'none'}")
    _emit_trace(recorder, args)
    return 1 if parity_failures else 0


def _run_server(args: argparse.Namespace) -> int:
    """The ``ricd server`` subcommand body: detection-as-a-service."""
    from .serve import DetectionService, ServeConfig, StalenessPolicy
    from .serve.api import serve_api

    initial = None
    if args.bootstrap:
        try:
            initial = read_click_table(args.bootstrap)
        except (OSError, ReproError) as error:
            print(f"error: cannot load {args.bootstrap}: {error}", file=sys.stderr)
            return 2
    try:
        params = RICDParams(k1=args.k1, k2=args.k2)
        config = ServeConfig(
            max_batch=args.max_batch,
            staleness=StalenessPolicy(
                max_dirty=args.max_dirty,
                max_batches=args.max_batches,
                max_age=args.max_age,
            ),
        )
        service = DetectionService.from_store(
            args.store,
            initial_graph=initial,
            params=params,
            engine=args.engine,
            config=config,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    server, thread = serve_api(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    graph = service.online.graph
    print(
        f"store {args.store}: head version {service.store_version}, "
        f"{graph.num_users} users / {graph.num_items} items / {graph.num_edges} edges"
    )
    print(f"serving detection API at http://{host}:{port}/v1/ (Ctrl-C to stop)")
    if not args.no_pump_thread:
        service.start()
    try:
        thread.join()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        try:
            server.shutdown()
            service.stop(drain=False)
            # A clean close is a checkpoint: drain, sync exactly, compact
            # the store head so the next start resumes from one snapshot.
            result = service.checkpoint()
            print(
                f"final state at store version {service.store_version}: "
                f"{len(result.suspicious_users)} suspicious users, "
                f"{len(result.suspicious_items)} suspicious items"
            )
        except KeyboardInterrupt:
            # A second Ctrl-C skips the final checkpoint; the store stays
            # at its last committed version (crash-safe by construction).
            print("forced exit before the final checkpoint", file=sys.stderr)
            return 130
    return 0


def _run_redteam(args: argparse.Namespace) -> int:
    """The ``ricd redteam`` subcommand body: attack zoo vs the detector."""
    import json

    from .datagen import clean_marketplace
    from .datagen.attacks import family_names, plan_family
    from .eval.reporting import render_table
    from .eval.robustness import red_team

    known = family_names()
    families = known
    if args.families:
        families = [name.strip() for name in args.families.split(",") if name.strip()]
        unknown = [name for name in families if name not in known]
        if unknown:
            print(
                f"error: unknown families {', '.join(unknown)} "
                f"(known: {', '.join(known)})",
                file=sys.stderr,
            )
            return 2
    try:
        budgets = [int(token) for token in args.budgets.split(",") if token.strip()]
        params = RICDParams(k1=args.k1, k2=args.k2)
    except (ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not budgets:
        print("error: --budgets must name at least one budget", file=sys.stderr)
        return 2
    adaptivity = {
        "static": (False,),
        "adaptive": (True,),
        "both": (False, True),
    }[args.adaptivity]

    graph = clean_marketplace(args.scale, seed=args.seed)
    print(f"marketplace: scale={args.scale} seed={args.seed} {graph!r}")
    report = red_team(
        graph,
        families=families,
        budgets=budgets,
        adaptivity=adaptivity,
        params=params,
        seed=args.seed,
        with_feedback=not args.no_feedback,
    )

    headers = ["family", "budget", "adaptive", "workers", "P", "R", "F1"]
    if not args.no_feedback:
        headers += ["fb P", "fb R", "fb rounds"]
    rows = []
    for point in report.points:
        row = [
            point.family,
            point.budget,
            "yes" if point.adaptive else "no",
            point.n_workers,
            f"{point.metrics.precision:.3f}",
            f"{point.metrics.recall:.3f}",
            f"{point.metrics.f1:.3f}",
        ]
        if point.feedback_metrics is not None:
            row += [
                f"{point.feedback_metrics.precision:.3f}",
                f"{point.feedback_metrics.recall:.3f}",
                point.feedback_rounds,
            ]
        elif not args.no_feedback:
            row += ["-", "-", "-"]
        rows.append(row)
    print()
    print(render_table(headers, rows, title="red-team frontier (exact truth)"))

    payload = report.to_json()
    payload["marketplace"] = {"scale": args.scale, "seed": args.seed}
    payload["params"] = {"k1": args.k1, "k2": args.k2}

    if args.drip > 0:
        from .serve.redteam import drip_campaign

        print()
        drip_rows = []
        drip_campaigns = []
        parity_failures = 0
        for family in families:
            plan = plan_family(
                graph.copy(), family, budget=budgets[0], seed=args.seed, adaptive=True
            )
            outcome = drip_campaign(graph, plan, n_batches=args.drip, params=params)
            applied = graph.copy()
            plan.apply(applied)
            batch = RICDDetector(params=params).detect(applied)
            parity = (
                outcome.final.suspicious_users == batch.suspicious_users
                and outcome.final.suspicious_items == batch.suspicious_items
            )
            parity_failures += 0 if parity else 1
            drip_rows.append(
                [
                    family,
                    outcome.events,
                    outcome.mid_flagged_workers,
                    outcome.final_flagged_workers,
                    outcome.n_workers,
                    "ok" if parity else "MISMATCH",
                ]
            )
            drip_campaigns.append(
                {
                    "family": family,
                    "events": outcome.events,
                    "mid_flagged_workers": outcome.mid_flagged_workers,
                    "final_flagged_workers": outcome.final_flagged_workers,
                    "n_workers": outcome.n_workers,
                    "parity": parity,
                }
            )
        print(
            render_table(
                ["family", "events", "mid flagged", "final flagged", "workers", "parity"],
                drip_rows,
                title=f"slow-drip replay ({args.drip} batches, adaptive, budget {budgets[0]})",
            )
        )
        payload["drip"] = {
            "n_batches": args.drip,
            "budget": budgets[0],
            "parity_failures": parity_failures,
            "campaigns": drip_campaigns,
        }
        if parity_failures:
            print(f"error: {parity_failures} drip parity failure(s)", file=sys.stderr)

    if args.out:
        path = Path(args.out)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote frontier artifact to {path}")
    return 1 if args.drip > 0 and payload["drip"]["parity_failures"] else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in EXPERIMENT_IDS:
            print(experiment_id)
        return 0

    if args.command == "detect":
        return _run_detect(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "server":
        return _run_server(args)

    if args.command == "redteam":
        return _run_redteam(args)

    targets = list(EXPERIMENT_IDS) if args.experiment == "all" else [args.experiment]
    with _trace_scope(args) as recorder:
        if recorder is not None:
            recorder.meta.update(
                {"command": "run", "experiments": ",".join(targets), "jobs": args.jobs}
            )
        for experiment_id in targets:
            try:
                runner = get_experiment(experiment_id)
            except ExperimentError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            # Each experiment takes the subset of knobs it understands
            # (e.g. eq3 has no seed; only fig8/fig9 fan out over jobs).
            accepted = inspect.signature(runner).parameters
            offered = {"seed": args.seed, "jobs": args.jobs}
            with obs.span(f"experiment.{experiment_id}"):
                report = runner(**{k: v for k, v in offered.items() if k in accepted})
            print(report)
            print()
    _emit_trace(recorder, args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
