"""One module per reproduced table/figure, plus the experiment registry.

Every experiment exposes ``run(...) -> ExperimentReport``; the registry
maps paper artifact ids (``table1`` ... ``fig10``) to those functions, and
``python -m repro <id>`` runs them from the command line.
"""

from .registry import (
    EXPERIMENT_IDS,
    ExperimentReport,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentReport",
    "EXPERIMENT_IDS",
    "get_experiment",
    "run_experiment",
]
