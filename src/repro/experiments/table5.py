"""Table V: click-profile contrast between a suspicious and a normal item.

The paper pairs a target item (368 total clicks) with a normal item of
comparable volume (404) and shows the target has about half the distinct
users, a higher per-user mean/stdev/max, and a 4x higher share of abnormal
users in its click list.  We find the closest-volume (target, normal) pair
in the scenario and print the same columns.
"""

from __future__ import annotations

from typing import Hashable

from ..eval.reporting import format_float, render_table
from ..graph.stats import item_click_profile
from .base import ExperimentReport, default_scenario

__all__ = ["run"]

Node = Hashable


def _abnormal_share(scenario, item: Node) -> float:
    """Share of labelled-abnormal users in the item's click list."""
    clickers = scenario.graph.item_neighbors(item)
    if not clickers:
        return 0.0
    abnormal = sum(1 for user in clickers if user in scenario.truth.abnormal_users)
    return abnormal / len(clickers)


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce Table V on the default scenario."""
    scenario = default_scenario(seed)
    graph = scenario.graph

    # Pick the target item whose total clicks best matches some normal
    # item (the paper matched 368 vs 404, < 10% apart).
    targets = sorted(scenario.truth.abnormal_items, key=str)
    normals = [
        item
        for item in graph.items()
        if item not in scenario.truth.abnormal_items and graph.item_degree(item) > 0
    ]
    best_pair: tuple[Node, Node] | None = None
    best_gap = float("inf")
    normal_totals = sorted(
        (graph.item_total_clicks(item), str(item), item) for item in normals
    )
    import bisect

    for target in targets:
        target_total = graph.item_total_clicks(target)
        index = bisect.bisect_left(normal_totals, (target_total, "", None))
        for probe in (index - 1, index):
            if 0 <= probe < len(normal_totals):
                gap = abs(normal_totals[probe][0] - target_total)
                if gap < best_gap:
                    best_gap = gap
                    best_pair = (target, normal_totals[probe][2])
    if best_pair is None:
        raise RuntimeError("scenario has no (target, normal) item pair to compare")

    target_item, normal_item = best_pair
    rows = []
    data = {}
    for label, item in (("suspicious", target_item), ("normal", normal_item)):
        profile = item_click_profile(graph, item)
        share = _abnormal_share(scenario, item)
        rows.append(
            [
                label,
                profile.total_clicks,
                format_float(profile.mean, 2),
                format_float(profile.stdev, 2),
                profile.user_num,
                profile.max_clicks,
                profile.min_clicks,
                f"{share * 100:.2f}%",
            ]
        )
        data[label] = {
            "item": item,
            "profile": profile,
            "abnormal_share": share,
        }
    text = render_table(
        ["item", "Total_click", "Mean", "Stdev", "User_num", "Max", "Min", "abnormal users"],
        rows,
        title="Table V — suspicious vs normal item (closest click volumes)",
    )
    return ExperimentReport(
        experiment_id="table5",
        title="Suspicious vs normal item statistics (Table V)",
        text=text,
        data=data,
    )
