"""Fig. 8: baseline comparison — quality (8a) and elapsed time (8b).

Runs the paper's full line-up (RICD + six baselines "+UI") on the default
scenario and reports precision / recall / F1 against both the exact
injected truth and the paper's partial-label protocol, plus end-to-end
elapsed time with the detection vs screening ("UI") split.

Per the paper, COPYCATCH and FRAUDAR are excluded from the *timing*
comparison (their implementations did not run on the accelerated
platform); they still appear in the quality comparison.
"""

from __future__ import annotations

from ..eval.harness import default_detector_suite, run_suite
from ..eval.reporting import format_float, render_table
from .base import ExperimentReport, default_scenario

__all__ = ["run"]

_TIMING_EXCLUDED = {"COPYCATCH+UI", "FRAUDAR+UI"}


def run(seed: int = 0, copycatch_deadline: float = 5.0, jobs: int = 1) -> ExperimentReport:
    """Reproduce Fig. 8a and Fig. 8b on the default scenario.

    ``jobs > 1`` evaluates the seven detectors over a process pool; the
    quality table is identical, but per-detector timings then reflect
    contended workers, so keep ``jobs=1`` when Fig. 8b numbers matter.
    """
    scenario = default_scenario(seed)
    suite = default_detector_suite(copycatch_deadline=copycatch_deadline)
    runs = run_suite(suite, scenario, jobs=jobs)

    quality_rows = []
    for run_ in runs:
        quality_rows.append(
            [
                run_.name,
                format_float(run_.exact.precision),
                format_float(run_.exact.recall),
                format_float(run_.exact.f1),
                format_float(run_.known.precision if run_.known else None),
                format_float(run_.known.recall if run_.known else None),
                format_float(run_.known.f1 if run_.known else None),
            ]
        )
    quality = render_table(
        ["method", "P(exact)", "R(exact)", "F1(exact)", "P(known)", "R(known)", "F1(known)"],
        quality_rows,
        title="Fig. 8a — precision / recall / F1 (exact truth and the paper's partial-label protocol)",
    )

    timing_rows = []
    for run_ in runs:
        if run_.name in _TIMING_EXCLUDED:
            continue
        detection = run_.result.timings.get("detection", 0.0)
        screening = run_.result.timings.get("screening", 0.0)
        timing_rows.append(
            [
                run_.name,
                format_float(run_.elapsed, 3),
                format_float(detection, 3),
                format_float(screening, 3),
            ]
        )
    timing = render_table(
        ["method", "elapsed (s)", "detection (s)", "UI (s)"],
        timing_rows,
        title="Fig. 8b — elapsed time (COPYCATCH/FRAUDAR excluded, as in the paper)",
    )
    return ExperimentReport(
        experiment_id="fig8",
        title="Baseline comparison (Fig. 8a/8b)",
        text=f"{quality}\n\n{timing}",
        data={
            "runs": {
                run_.name: {
                    "exact": run_.exact,
                    "known": run_.known,
                    "elapsed": run_.elapsed,
                    "timings": dict(run_.result.timings),
                }
                for run_ in runs
            }
        },
    )
