"""Tables III & IV: click records of a suspect vs an ordinary user.

The paper contrasts a representative crowd worker (hot items clicked 1-2
times, target items 13 times, camouflage in between) with a normal user
(hot item clicked 19 times, ordinary items once).  We pick a genuine
injected worker and a heavy organic user from the scenario and print their
click lists in the paper's format: per-item clicks, the item's total
clicks, and the hot flag.
"""

from __future__ import annotations

from typing import Hashable

from ..core.thresholds import pareto_hot_threshold
from ..eval.reporting import render_table
from ..graph.bipartite import BipartiteGraph
from .base import ExperimentReport, default_scenario

__all__ = ["run"]

Node = Hashable


def _record_rows(
    graph: BipartiteGraph, user: Node, t_hot: float, limit: int = 14
) -> list[list[object]]:
    """The user's click list as Table III/IV rows, heaviest-item first.

    The limit is generous enough that a worker's target items (whose click
    volumes sit *below* camouflage onto mid-popularity items at 1/1000
    scale) stay visible alongside the hot and camouflage rows.
    """
    neighbors = sorted(
        graph.user_neighbors(user).items(),
        key=lambda pair: -graph.item_total_clicks(pair[0]),
    )
    rows: list[list[object]] = []
    for sequence_id, (item, clicks) in enumerate(neighbors[:limit], start=1):
        total = graph.item_total_clicks(item)
        rows.append([sequence_id, clicks, f"{total:,}", int(total >= t_hot)])
    return rows


def _pick_representative_worker(scenario) -> Node:
    """A fresh, diligent (non-sloppy) worker with hot and heavy target clicks."""
    graph = scenario.graph
    for group in scenario.truth.groups:
        if not group.hot_items:
            continue
        for worker in group.workers:
            if not str(worker).startswith("w"):
                continue
            heavy = max(
                (
                    clicks
                    for item, clicks in graph.user_neighbors(worker).items()
                    if item in set(group.target_items)
                ),
                default=0,
            )
            if heavy >= 12:
                return worker
    # Degenerate scenario with no diligent fresh workers: any worker.
    return next(iter(scenario.truth.abnormal_users))


def _pick_normal_heavy_user(scenario, t_hot: float) -> Node:
    """An organic user who clicked a hot item several times."""
    graph = scenario.graph
    best_user, best_clicks = None, -1
    for user in graph.users():
        if user in scenario.truth.abnormal_users:
            continue
        if graph.user_degree(user) < 4:
            continue
        hot_clicks = max(
            (
                clicks
                for item, clicks in graph.user_neighbors(user).items()
                if graph.item_total_clicks(item) >= t_hot
            ),
            default=0,
        )
        if hot_clicks > best_clicks:
            best_user, best_clicks = user, hot_clicks
    return best_user if best_user is not None else next(iter(graph.users()))


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce Tables III and IV on the default scenario."""
    scenario = default_scenario(seed)
    graph = scenario.graph
    t_hot = pareto_hot_threshold(graph)

    worker = _pick_representative_worker(scenario)
    normal = _pick_normal_heavy_user(scenario, t_hot)
    headers = ["ID", "Click", "Total_click", "Hot"]
    suspect_rows = _record_rows(graph, worker, t_hot)
    normal_rows = _record_rows(graph, normal, t_hot)

    text = "\n\n".join(
        [
            render_table(
                headers,
                suspect_rows,
                title="Table III — click record of a suspect (injected worker)",
            ),
            render_table(
                headers,
                normal_rows,
                title="Table IV — click record of an ordinary user",
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="table3_4",
        title="Suspect vs ordinary click records (Tables III & IV)",
        data={
            "worker": worker,
            "normal_user": normal,
            "t_hot": t_hot,
            "suspect_rows": suspect_rows,
            "normal_rows": normal_rows,
        },
        text=text,
    )
