"""Fig. 10: the production case study, end to end.

The paper narrates one detected group (2 hot items, 11 targets, 28
accounts) through a marketing campaign: fake traffic rises before the
campaign, organic traffic follows via the inflated I2I scores, RICD
detects on day 9, cleanup restores normal levels, sellers delist on day
13.  This experiment reproduces the *whole mechanism*:

1. build a marketplace and inject one case-study-shaped group;
2. measure the group's effect on the recommender (I2I lift / top-k
   exposure) before and after the attack, and again after cleanup;
3. run RICD on the attacked graph and verify the group is caught;
4. render the day-by-day traffic timeline.
"""

from __future__ import annotations

from ..config import RICDParams
from ..core.framework import RICDDetector
from ..datagen.attacks import AttackConfig
from ..datagen.marketplace import MarketplaceConfig
from ..datagen.scenario import generate_scenario
from ..eval.reporting import render_table, render_timeline
from ..recsys.impact import attack_impact, remove_fake_clicks
from ..recsys.traffic import TrafficModel, simulate_case_study
from .base import ExperimentReport

__all__ = ["run", "case_study_scenario"]


def case_study_scenario(seed: int = 0):
    """One injected group shaped like the paper's case study (28 accounts,
    2 hot items, 11 targets).

    The case-study group is *not* scaled down with the 1/1000 marketplace
    (its sizes are the paper's absolute numbers), so the marketplace here
    omits the swarm/superfan overlays — at this scale a 28-account
    campaign's click volume would otherwise straddle the Pareto-derived
    hot boundary — and the detection run below raises the group-size cap
    accordingly.
    """
    marketplace = MarketplaceConfig(n_swarms=0, n_superfans=0, seed=seed)
    attacks = AttackConfig(
        n_groups=1,
        workers_per_group=(28, 28),
        targets_per_group=(11, 11),
        hot_items_per_group=(2, 2),
        target_clicks=(12, 13),
        sloppy_fraction=0.0,
        density=1.0,
        hijacked_user_fraction=0.0,
        worker_reuse_fraction=0.0,
        seed=seed + 1,
    )
    return generate_scenario(marketplace, attacks)


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce the Fig. 10 case study."""
    scenario = case_study_scenario(seed)
    group = scenario.truth.groups[0]
    clean = remove_fake_clicks(scenario.graph, [group])
    impact = attack_impact(clean, scenario.graph, group)

    detector = RICDDetector(params=RICDParams(k1=10, k2=10), max_group_users=30)
    result = detector.detect(scenario.graph)
    caught_workers = len(set(group.workers) & result.suspicious_users)
    caught_targets = len(set(group.target_items) & result.suspicious_items)

    timeline = simulate_case_study(TrafficModel(seed=seed))
    impact_table = render_table(
        ["metric", "before attack", "after attack", "after cleanup"],
        [
            [
                "mean I2I score (hot -> target)",
                f"{impact.mean_score_before:.5f}",
                f"{impact.mean_score_after:.5f}",
                f"{impact.mean_score_before:.5f}",
            ],
            [
                f"(hot, target) pairs in top-{impact.k}",
                impact.targets_in_top_k_before,
                impact.targets_in_top_k_after,
                impact.targets_in_top_k_before,
            ],
        ],
        title="Attack impact on the recommender",
    )
    detection_line = (
        f"RICD detection: {caught_workers}/{len(group.workers)} accounts, "
        f"{caught_targets}/{len(group.target_items)} target items caught "
        f"in {len(result.groups)} group(s)"
    )
    timeline_table = render_timeline(
        timeline.days,
        {"fake": timeline.fake_traffic, "organic": timeline.organic_traffic},
        timeline.events,
        title="Fig. 10 — target items' daily traffic",
    )
    return ExperimentReport(
        experiment_id="fig10",
        title="Case study (Fig. 10)",
        text=f"{impact_table}\n\n{detection_line}\n\n{timeline_table}",
        data={
            "impact": impact,
            "caught_workers": caught_workers,
            "caught_targets": caught_targets,
            "group_size": (len(group.workers), len(group.target_items)),
            "timeline": timeline,
        },
    )
