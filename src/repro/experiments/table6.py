"""Table VI: the screening-module ablation (RICD-UI / RICD-I / RICD).

The paper's numbers (against its partial labels): RICD-UI 0.03/0.82/0.06,
RICD-I 0.14/0.78/0.23, RICD 0.81/0.51/0.63 — precision rises monotonically
as the two screening steps are added, recall falls, F1 peaks at the full
framework.  The same monotone pattern must hold here.
"""

from __future__ import annotations

from ..core.framework import (
    VARIANT_FULL,
    VARIANT_NO_ITEM,
    VARIANT_NO_SCREEN,
    RICDDetector,
)
from ..eval.groundtruth import simulate_known_labels
from ..eval.harness import evaluate_detector
from ..eval.reporting import format_float, render_table
from .base import ExperimentReport, default_scenario

__all__ = ["run"]

#: Paper Table VI rows, for side-by-side display.
PAPER_ROWS = {
    "RICD-UI": (0.03, 0.82, 0.06),
    "RICD-I": (0.14, 0.78, 0.23),
    "RICD": (0.81, 0.51, 0.63),
}


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce Table VI on the default scenario."""
    scenario = default_scenario(seed)
    known = simulate_known_labels(scenario.graph, scenario.truth, seed=seed)
    rows = []
    data = {}
    for variant in (VARIANT_NO_SCREEN, VARIANT_NO_ITEM, VARIANT_FULL):
        detector = RICDDetector(variant=variant)
        run_ = evaluate_detector(detector, scenario, known)
        paper = PAPER_ROWS[detector.name]
        rows.append(
            [
                detector.name,
                format_float(run_.known.precision if run_.known else None),
                format_float(run_.known.recall if run_.known else None),
                format_float(run_.known.f1 if run_.known else None),
                format_float(run_.exact.precision),
                format_float(run_.exact.recall),
                format_float(run_.exact.f1),
                "/".join(format_float(v, 2) for v in paper),
            ]
        )
        data[detector.name] = {"exact": run_.exact, "known": run_.known}
    text = render_table(
        ["variant", "P(known)", "R(known)", "F1(known)", "P(exact)", "R(exact)", "F1(exact)", "paper P/R/F1"],
        rows,
        title="Table VI — effectiveness of suspicious group screening",
    )
    return ExperimentReport(
        experiment_id="table6",
        title="Screening ablation (Table VI)",
        text=text,
        data=data,
    )
