"""Fig. 2: the heavy-tailed click distributions (items = 2a, users = 2b).

Rendered as log-binned histograms; a heavy tail shows as counts spanning
several orders of magnitude with most mass in the first bins.  The report
also prints the Pareto share — the fraction of nodes covering 80% of
clicks — which the paper's analysis leans on.
"""

from __future__ import annotations

import numpy as np

from ..datagen.distributions import pareto_share
from ..eval.reporting import render_table
from ..graph.stats import click_histogram
from .base import ExperimentReport, default_scenario

__all__ = ["run"]


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce the Fig. 2 distributions on the default scenario."""
    scenario = default_scenario(seed)
    graph = scenario.graph
    sections: list[str] = []
    data: dict[str, object] = {}
    for side, figure in (("item", "2a"), ("user", "2b")):
        bins = click_histogram(graph, side)
        rows = [[f"[{low}, {high})", count] for low, high, count in bins]
        sections.append(
            render_table(
                ["total clicks", "nodes"],
                rows,
                title=f"Fig. {figure} — distribution of {side}s' clicks (log-binned)",
            )
        )
        if side == "item":
            totals = np.array([graph.item_total_clicks(i) for i in graph.items()])
        else:
            totals = np.array([graph.user_total_clicks(u) for u in graph.users()])
        share = pareto_share(totals)
        sections.append(
            f"{side}s covering 80% of clicks: {share * 100:.1f}% (heavy tail)"
        )
        data[f"{side}_bins"] = bins
        data[f"{side}_pareto_share"] = share
    return ExperimentReport(
        experiment_id="fig2",
        title="Click distributions (Fig. 2a/2b)",
        text="\n\n".join(sections),
        data=data,
    )
