"""Experiment registry: paper artifact id -> runner function."""

from __future__ import annotations

from typing import Callable

from ..errors import ExperimentError
from . import eq3, fig2, fig8, fig9, fig10, robustness, table1_2, table3_4, table5, table6
from .base import ExperimentReport

__all__ = ["EXPERIMENT_IDS", "get_experiment", "run_experiment", "ExperimentReport"]

_REGISTRY: dict[str, Callable[..., ExperimentReport]] = {
    "table1_2": table1_2.run,
    "fig2": fig2.run,
    "table3_4": table3_4.run,
    "table5": table5.run,
    "fig8": fig8.run,
    "table6": table6.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "eq3": eq3.run,
    "robustness": robustness.run,
}

#: All registered experiment ids, in paper order.
EXPERIMENT_IDS = tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """The runner for ``experiment_id``; raises :class:`ExperimentError` if unknown."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(EXPERIMENT_IDS)}"
        ) from None


def run_experiment(experiment_id: str, **kwargs) -> ExperimentReport:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
