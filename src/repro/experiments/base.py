"""Shared experiment plumbing: the report type and the default scenario."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from ..datagen.scenario import Scenario, paper_scenario

__all__ = ["ExperimentReport", "default_scenario"]


@dataclass
class ExperimentReport:
    """The outcome of one reproduced table/figure.

    Attributes
    ----------
    experiment_id:
        The paper artifact id (``"table1"``, ``"fig8a"``, ...).
    title:
        Human-readable headline.
    text:
        The rendered table/series, ready to print.
    data:
        Structured values for programmatic assertions (tests, the
        EXPERIMENTS.md generator).
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


@lru_cache(maxsize=4)
def default_scenario(seed: int = 0) -> Scenario:
    """The shared paper-scale scenario, cached per seed.

    Experiments reuse one generated environment so a full
    ``python -m repro all`` run pays the ~2 s generation cost once.
    """
    return paper_scenario(seed=seed)
