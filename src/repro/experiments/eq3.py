"""Eq. 2-3: the attacker's optimal click allocation, verified numerically.

Not a figure in the paper, but the analytical backbone of the attack model
(and of this repository's attack injector): given a click budget, the
I2I score of the target is maximised by clicking the hot item once and
spending everything else on the target.  The report sweeps all feasible
allocations for a budget and shows the maximum sits at ``C' = C = C_b - 2``.
"""

from __future__ import annotations

from ..core.i2i import attacked_i2i_score, optimal_attack_allocation
from ..eval.reporting import format_float, render_table
from .base import ExperimentReport

__all__ = ["run"]


def run(click_budget: int = 12, existing_co_clicks: int = 500) -> ExperimentReport:
    """Sweep attack allocations for one budget and locate the optimum.

    Parameters
    ----------
    click_budget:
        Total clicks available to the worker (``C_b``).
    existing_co_clicks:
        Pre-existing co-click volume around the hot item
        (``C_1 + ... + C_n``).
    """
    if click_budget < 2:
        raise ValueError("click_budget must be >= 2")
    spendable = click_budget - 2  # two clicks establish the hot-target link
    rows = []
    best_score, best_allocation = -1.0, (0, 0)
    for total_extra in range(spendable + 1):
        for on_target in range(total_extra + 1):
            score = attacked_i2i_score(
                existing_co_clicks,
                target_initial=1,
                extra_target_clicks=on_target,
                extra_other_clicks=total_extra - on_target,
            )
            if score > best_score:
                best_score = score
                best_allocation = (on_target, total_extra)
    # Show the diagonal (all budget on target) versus the worst split.
    for total_extra in range(spendable + 1):
        concentrated = attacked_i2i_score(
            existing_co_clicks, 1, total_extra, 0
        )
        spread = attacked_i2i_score(existing_co_clicks, 1, 0, total_extra)
        rows.append(
            [
                total_extra,
                format_float(concentrated, 5),
                format_float(spread, 5),
            ]
        )
    hot_clicks, target_clicks = optimal_attack_allocation(click_budget)
    text = render_table(
        ["extra clicks C", "all on target (C'=C)", "all on others (C'=0)"],
        rows,
        title=(
            f"Eq. 2 sweep, budget C_b={click_budget}, existing co-clicks="
            f"{existing_co_clicks}; optimum at C'=C={spendable} "
            f"(allocation: hot x{hot_clicks}, target x{target_clicks})"
        ),
    )
    return ExperimentReport(
        experiment_id="eq3",
        title="Attacker optimal strategy (Eq. 2-3)",
        text=text,
        data={
            "best_score": best_score,
            "best_allocation": best_allocation,
            "expected_allocation": (spendable, spendable),
        },
    )
