"""Tables I & II: data scale and click statistics of the synthetic table.

The paper's absolute numbers come from the proprietary 20M-user Taobao
extract; our scenario reproduces them at 1/1000 scale.  The report prints
both side by side, plus the scale-invariant ratios (mean clicks per user,
per item) that should — and do — match.
"""

from __future__ import annotations

from ..eval.reporting import format_float, render_table
from ..graph.stats import graph_scale, side_stats
from .base import ExperimentReport, default_scenario

__all__ = ["run"]

#: Published values (Tables I & II of the paper).
PAPER_SCALE = {"users": 20_000_000, "items": 4_000_000, "edges": 90_000_000, "clicks": 200_000_000}
PAPER_USER_STATS = {"avg_clk": 11.35, "avg_cnt": 4.32, "stdev": 33.34}
PAPER_ITEM_STATS = {"avg_clk": 54.94, "avg_cnt": 20.49, "stdev": 992.78}


def run(seed: int = 0) -> ExperimentReport:
    """Reproduce Tables I and II on the default scenario."""
    scenario = default_scenario(seed)
    scale = graph_scale(scenario.graph)
    users = side_stats(scenario.graph, "user")
    items = side_stats(scenario.graph, "item")

    scale_table = render_table(
        ["", "User", "Item", "Edge", "Total_click"],
        [
            ["paper", *(f"{v:,}" for v in PAPER_SCALE.values())],
            ["ours", f"{scale.users:,}", f"{scale.items:,}", f"{scale.edges:,}", f"{scale.total_clicks:,}"],
        ],
        title="Table I — data scale (paper at 1x, ours at ~1/1000)",
    )
    stats_table = render_table(
        ["side", "source", "Avg_clk", "Avg_cnt", "Stdev"],
        [
            ["User", "paper", *(format_float(v, 2) for v in PAPER_USER_STATS.values())],
            ["User", "ours", format_float(users.avg_clk, 2), format_float(users.avg_cnt, 2), format_float(users.stdev, 2)],
            ["Item", "paper", *(format_float(v, 2) for v in PAPER_ITEM_STATS.values())],
            ["Item", "ours", format_float(items.avg_clk, 2), format_float(items.avg_cnt, 2), format_float(items.stdev, 2)],
        ],
        title="Table II — click statistics",
    )
    return ExperimentReport(
        experiment_id="table1_2",
        title="Data scale and statistics (Tables I & II)",
        text=f"{scale_table}\n\n{stats_table}",
        data={
            "scale": scale.as_row(),
            "user_stats": (users.avg_clk, users.avg_cnt, users.stdev),
            "item_stats": (items.avg_clk, items.avg_cnt, items.stdev),
        },
    )
