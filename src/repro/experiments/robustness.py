"""Adversarial robustness report (beyond the paper's grid; see DESIGN.md §5).

Three studies grounded in the paper's own claims:

* desired property (2)/(3): camouflage cannot hide the attack structure;
* Section V-C's Zarankiewicz argument: the fully-informed invisible
  attacker forfeits most of the I2I lift;
* seed stability: the headline metrics are not generator artefacts.
"""

from __future__ import annotations

from ..config import RICDParams
from ..core.framework import RICDDetector
from ..datagen import MarketplaceConfig, generate_marketplace, small_scenario
from ..eval.reporting import format_float, render_table
from ..eval.robustness import camouflage_sweep, evaluate_across_seeds, evasion_economics
from .base import ExperimentReport, default_scenario

__all__ = ["run"]


def run(seed: int = 0) -> ExperimentReport:
    """Run the camouflage, evasion and multi-seed studies."""
    sections: list[str] = []
    data: dict[str, object] = {}

    # --- camouflage sweep on the shared paper-scale scenario
    points = camouflage_sweep(
        default_scenario(seed),
        lambda: RICDDetector(),
        levels=((0, 0), (3, 10), (12, 25)),
    )
    sections.append(
        render_table(
            ["camouflage items/worker", "P", "R", "F1"],
            [
                [
                    f"{p.camouflage_items[0]}-{p.camouflage_items[1]}",
                    format_float(p.metrics.precision),
                    format_float(p.metrics.recall),
                    format_float(p.metrics.f1),
                ]
                for p in points
            ],
            title="Camouflage sweep — disguise never helps the attacker",
        )
    )
    data["camouflage"] = points

    # --- evasion economics on an overlay-free marketplace
    clean = generate_marketplace(
        MarketplaceConfig(n_swarms=0, n_superfans=0, seed=seed + 21)
    )
    report = evasion_economics(
        clean, RICDParams(k1=10, k2=10), n_workers=25, n_targets=12, seed=seed + 3
    )
    sections.append(
        render_table(
            ["campaign", "detection rate", "mean target I2I"],
            [
                [
                    "overt (Eq. 3 optimum)",
                    format_float(report.overt_detection_rate, 2),
                    format_float(report.overt_mean_lift, 5),
                ],
                [
                    "invisible (K-free)",
                    format_float(report.evasive_detection_rate, 2),
                    format_float(report.evasive_mean_lift, 5),
                ],
            ],
            title=(
                "Evasion economics — invisible-click bound "
                f"{report.invisible_click_bound}, campaign placed "
                f"{report.evasive_fake_edges} target edges"
            ),
        )
    )
    data["evasion"] = report

    # --- multi-seed stability at integration scale
    summary = evaluate_across_seeds(
        lambda: RICDDetector(params=RICDParams(k1=5, k2=5)),
        lambda s: small_scenario(seed=s),
        seeds=tuple(range(seed, seed + 3)),
    )
    sections.append(
        render_table(
            ["seeds", "mean P", "mean R", "mean F1", "min F1", "max F1"],
            [
                [
                    summary.n_seeds,
                    format_float(summary.mean_precision),
                    format_float(summary.mean_recall),
                    format_float(summary.mean_f1),
                    format_float(summary.min_f1),
                    format_float(summary.max_f1),
                ]
            ],
            title="Multi-seed stability (integration scale)",
        )
    )
    data["seeds"] = summary

    return ExperimentReport(
        experiment_id="robustness",
        title="Adversarial robustness (camouflage / evasion / seeds)",
        text="\n\n".join(sections),
        data=data,
    )
