"""Fig. 9: sensitivity analysis over the five framework parameters.

The paper's grids (defaults k1 = k2 = 10, alpha = 1.0, T_click = 12,
T_hot = 2,000):

* 9a  k1 ∈ {5, 10, 15, 20}
* 9b  k2 ∈ {5, 10, 15, 20}
* 9c  alpha ∈ {0.7, 0.8, 0.9, 1.0}
* 9d  T_click ∈ {10, 12, 14, 16}
* 9e  T_hot ∈ {1000, 2000, 3000, 4000}

T_hot values are specified as *fractions of the derived threshold* here
(0.5x ... 2x), because absolute click counts do not transfer across the
1/1000 data scale; T_click transfers directly (it is a per-user quantity).
"""

from __future__ import annotations

from ..config import RICDParams
from ..core.thresholds import pareto_hot_threshold, t_click_from_graph
from ..eval.groundtruth import simulate_known_labels
from ..eval.reporting import render_series
from ..eval.sweeps import sensitivity_sweep
from .base import ExperimentReport, default_scenario

__all__ = ["run", "sweep_grid"]


def sweep_grid(t_hot_base: float) -> dict[str, list[float]]:
    """The Fig. 9 value grids, with T_hot scaled off the derived base."""
    return {
        "k1": [5, 10, 15, 20],
        "k2": [5, 10, 15, 20],
        "alpha": [0.7, 0.8, 0.9, 1.0],
        "t_click": [10, 12, 14, 16],
        "t_hot": [0.5 * t_hot_base, 1.0 * t_hot_base, 1.5 * t_hot_base, 2.0 * t_hot_base],
    }


def run(seed: int = 0, jobs: int = 1) -> ExperimentReport:
    """Reproduce the five Fig. 9 sweeps on the default scenario.

    ``jobs > 1`` fans each sweep's values out over a process pool; the
    reported metrics are identical to the serial run.
    """
    scenario = default_scenario(seed)
    known = simulate_known_labels(scenario.graph, scenario.truth, seed=seed)
    t_hot_base = float(pareto_hot_threshold(scenario.graph))
    t_click_base = float(t_click_from_graph(scenario.graph))
    base = RICDParams(t_hot=t_hot_base, t_click=t_click_base)

    sections: list[str] = []
    data: dict[str, list] = {}
    labels = {"k1": "9a", "k2": "9b", "alpha": "9c", "t_click": "9d", "t_hot": "9e"}
    for parameter, values in sweep_grid(t_hot_base).items():
        points = sensitivity_sweep(
            scenario, parameter, values, base_params=base, known=known, jobs=jobs
        )
        sections.append(
            render_series(
                parameter,
                [p.value for p in points],
                {
                    "precision": [p.exact.precision for p in points],
                    "recall": [p.exact.recall for p in points],
                    "F1": [p.exact.f1 for p in points],
                },
                title=f"Fig. {labels[parameter]} — sensitivity to {parameter} (exact truth)",
            )
        )
        data[parameter] = points
    return ExperimentReport(
        experiment_id="fig9",
        title="Parameter sensitivity (Fig. 9a-9e)",
        text="\n\n".join(sections),
        data=data,
    )
