"""Evaluation harness: metrics (Eq. 5-6), the paper's partial-label
protocol, detector runners, sensitivity sweeps and text reporting."""

from .groundtruth import KnownLabels, simulate_known_labels
from .harness import DetectorRun, default_detector_suite, evaluate_detector, run_suite
from .metrics import Metrics, confusion_counts, node_metrics
from .reporting import (
    format_float,
    render_series,
    render_table,
    render_timeline,
    render_trace,
)
from .robustness import (
    CamouflagePoint,
    EvasionReport,
    FrontierPoint,
    RedTeamReport,
    SeedSummary,
    camouflage_sweep,
    evaluate_across_seeds,
    evasion_economics,
    red_team,
)
from .parallel import run_suite_parallel, sensitivity_sweep_parallel
from .sweeps import SweepPoint, evaluate_sweep_point, sensitivity_sweep
from .tuning import GridPoint, TuningResult, grid_search

__all__ = [
    "Metrics",
    "node_metrics",
    "confusion_counts",
    "KnownLabels",
    "simulate_known_labels",
    "DetectorRun",
    "evaluate_detector",
    "run_suite",
    "default_detector_suite",
    "SweepPoint",
    "sensitivity_sweep",
    "evaluate_sweep_point",
    "run_suite_parallel",
    "sensitivity_sweep_parallel",
    "render_table",
    "render_series",
    "render_timeline",
    "render_trace",
    "format_float",
    "CamouflagePoint",
    "camouflage_sweep",
    "EvasionReport",
    "evasion_economics",
    "SeedSummary",
    "evaluate_across_seeds",
    "FrontierPoint",
    "RedTeamReport",
    "red_team",
    "GridPoint",
    "TuningResult",
    "grid_search",
]
