"""Detection metrics — Eq. 5 and Eq. 6 of the paper.

.. math::

    precision = \\frac{|detected \\cap known|}{|detected|}
    \\qquad
    recall = \\frac{|detected \\cap known|}{|known|}

The "known" set can be the *exact* injected ground truth (available here
because attacks are synthetic) or the paper's *partial* expert-labelled
subset (see :mod:`repro.eval.groundtruth`); the paper computes against the
latter and notes its precision "will be lower than the true precision
rate, but it is fair for all the algorithms".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["Metrics", "node_metrics", "confusion_counts"]

Node = Hashable


@dataclass(frozen=True)
class Metrics:
    """Precision / recall / F1 plus the raw counts they came from."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    output_size: int
    known_size: int

    def as_row(self) -> tuple[float, float, float]:
        """The (precision, recall, F1) triple, as reported in the paper's tables."""
        return (self.precision, self.recall, self.f1)


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def confusion_counts(
    detected: set[Node], known: set[Node]
) -> tuple[int, int, int]:
    """``(true_positives, false_positives, false_negatives)`` vs the known set."""
    true_positives = len(detected & known)
    return (
        true_positives,
        len(detected) - true_positives,
        len(known) - true_positives,
    )


def node_metrics(
    detected_users: set[Node],
    detected_items: set[Node],
    known_users: set[Node],
    known_items: set[Node],
) -> Metrics:
    """Joint node-level metrics over both partitions (the paper's headline numbers).

    Users and items are counted together, exactly as Eq. 5/6 treat
    "abnormal nodes".  The two partitions are intersected separately (a
    user id can never match an item id) and then summed.

    >>> m = node_metrics({"w1", "u9"}, {"t1"}, {"w1", "w2"}, {"t1", "t2"})
    >>> (m.true_positives, m.output_size, m.known_size)
    (2, 3, 4)
    >>> round(m.precision, 3), round(m.recall, 3)
    (0.667, 0.5)
    """
    true_positives = len(detected_users & known_users) + len(
        detected_items & known_items
    )
    output_size = len(detected_users) + len(detected_items)
    known_size = len(known_users) + len(known_items)
    precision = true_positives / output_size if output_size else 0.0
    recall = true_positives / known_size if known_size else 0.0
    return Metrics(
        precision=precision,
        recall=recall,
        f1=_f1(precision, recall),
        true_positives=true_positives,
        output_size=output_size,
        known_size=known_size,
    )
