"""Process-pool fan-out for the evaluation harness.

The Fig. 8 suite evaluates seven detectors and the Fig. 9 sweeps evaluate
five values per parameter, all embarrassingly parallel: every run reads
one shared scenario and writes an independent result.  This module fans
those runs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
with three invariants:

* **one scenario transfer per worker** — the (snapshot-stripped) scenario
  is pickled into each worker once through the pool initializer, not with
  every task; tasks carry only a detector or a parameter value;
* **deterministic results** — tasks are indexed and reassembled in input
  order, and workers are forked so they inherit the parent's hash seed;
  the parallel output is byte-identical to the serial path (pinned by
  ``tests/eval/test_parallel.py`` and the differential suite);
* **no lost runs** — a worker that dies mid-task (OOM kill, hard crash)
  breaks the whole pool, which used to surface as a bare
  :class:`~concurrent.futures.process.BrokenProcessPool`.  Now every task
  whose future the broken pool swallowed is re-run serially in the
  parent; recovered runs are marked ``degraded=True`` (their wall-clock
  is not pool-comparable) and the degradation is counted on the active
  :mod:`repro.obs` recorder.

Observability: when the caller has a recorder active (``--trace``), each
worker records into its own :class:`~repro.obs.Recorder` and ships the
exported dict back with its result; the parent merges them (spans and
counters add) and keeps per-worker task counts under
``parallel.worker<N>.tasks``, with worker slots numbered by order of
first result so traces are stable run to run.

The same machinery also fans out *one* detection: the pipeline layer's
sharded execution strategy
(:class:`~repro.pipeline.execution.ShardedExecution`) submits one task
per shard subgraph through :func:`run_shards_parallel`, with the
detector and its globally resolved thresholds shipped once via the pool
initializer.

Entry points are not called directly: pass ``jobs=`` to
:func:`repro.eval.harness.run_suite` or
:func:`repro.eval.sweeps.sensitivity_sweep` (or ``--jobs`` on the CLI),
which delegate here when ``jobs > 1`` and keep the serial fallback
otherwise; sharded detection delegates via ``RICDDetector(shards=...,
shard_jobs=...)``.  Wall-clock wins require actual cores; on a single-CPU host
the fork/pickle overhead makes ``jobs=1`` the right setting, which is why
it stays the default.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Sequence

from .. import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines import Detector
    from ..config import RICDParams, ScreeningParams
    from ..core.framework import RICDDetector
    from ..core.groups import SuspiciousGroup
    from ..datagen.scenario import Scenario
    from ..graph.bipartite import BipartiteGraph
    from .groundtruth import KnownLabels
    from .harness import DetectorRun
    from .sweeps import SweepPoint

__all__ = ["run_suite_parallel", "sensitivity_sweep_parallel", "run_shards_parallel"]

#: Per-worker shared state, installed once by the pool initializer.
_WORKER_STATE: dict = {}


def _pool(jobs: int, initializer, initargs) -> ProcessPoolExecutor:
    """A process pool that prefers ``fork`` (inherits the hash seed)."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    )


def _run_traced(task: Callable[[], object]) -> tuple[object, dict | None, int]:
    """Run ``task`` in a worker, recording when the parent asked for a trace.

    Returns ``(result, trace_dict_or_None, worker_pid)`` — the shape every
    worker task ships back to the parent.
    """
    if not _WORKER_STATE.get("trace"):
        return task(), None, os.getpid()
    recorder = obs.Recorder()
    with obs.recording(recorder):
        result = task()
    recorder.count("parallel.tasks")
    return result, recorder.report().to_dict(), os.getpid()


class _TraceMerger:
    """Folds worker traces into the parent recorder with stable worker slots."""

    def __init__(self) -> None:
        self._recorder = obs.current()
        self._slots: dict[int, int] = {}

    @property
    def tracing(self) -> bool:
        return self._recorder is not None

    def absorb(self, trace: dict | None, pid: int) -> None:
        if self._recorder is None or trace is None:
            return
        slot = self._slots.setdefault(pid, len(self._slots))
        self._recorder.merge(trace)
        self._recorder.count(f"parallel.worker{slot}.tasks")

    def finish(self) -> None:
        if self._recorder is not None:
            self._recorder.gauge("parallel.workers_used", len(self._slots))


def _fan_out(
    tasks: Sequence,
    worker_fn,
    initializer,
    initargs: tuple,
    jobs: int,
    serial_fallback,
) -> list:
    """Common scatter/gather: submit every task, survive a broken pool.

    ``worker_fn`` receives ``(index, task)`` and returns
    ``(index, result, trace, pid)``.  Any task whose future raises
    :class:`BrokenProcessPool` is recovered by calling
    ``serial_fallback(task)`` in the parent (recorded as degraded by the
    caller); genuine exceptions from the task body still propagate.
    """
    merger = _TraceMerger()
    results: list = [None] * len(tasks)
    lost: list[int] = []
    workers = max(1, min(jobs, len(tasks)))
    with _pool(workers, initializer, initargs) as pool:
        futures = [
            pool.submit(worker_fn, (index, task)) for index, task in enumerate(tasks)
        ]
        for index, future in enumerate(futures):
            try:
                task_index, result, trace, pid = future.result()
                results[task_index] = result
                merger.absorb(trace, pid)
            except BrokenProcessPool:
                lost.append(index)
    for index in lost:
        obs.count("parallel.broken_pool_recoveries")
        results[index] = serial_fallback(tasks[index])
    if lost and merger.tracing:
        obs.gauge("parallel.degraded", True)
    merger.finish()
    return results


# ----------------------------------------------------------------------
# run_suite fan-out: one worker task per detector
# ----------------------------------------------------------------------
def _init_suite_worker(
    scenario: "Scenario", known: "KnownLabels | None", trace: bool
) -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["known"] = known
    _WORKER_STATE["trace"] = trace


def _evaluate_one_detector(
    payload: tuple[int, "Detector"],
) -> tuple[int, "DetectorRun", dict | None, int]:
    from .harness import evaluate_detector

    index, detector = payload
    run, trace, pid = _run_traced(
        lambda: evaluate_detector(
            detector, _WORKER_STATE["scenario"], _WORKER_STATE["known"]
        )
    )
    return index, run, trace, pid


def run_suite_parallel(
    detectors: "list[Detector]",
    scenario: "Scenario",
    known: "KnownLabels | None",
    jobs: int,
) -> "list[DetectorRun]":
    """Evaluate ``detectors`` on ``scenario`` across ``jobs`` processes.

    Labels are resolved by the caller (:func:`repro.eval.harness.run_suite`)
    so the simulation seed is consumed exactly once, identically to the
    serial path.  Results come back in input order.  A detector whose
    worker died is re-evaluated serially and its run marked
    ``degraded=True``; the detection output is identical either way.
    """
    from .harness import evaluate_detector

    def recover(detector: "Detector") -> "DetectorRun":
        run = evaluate_detector(detector, scenario, known)
        run.degraded = True
        return run

    return _fan_out(
        detectors,
        _evaluate_one_detector,
        _init_suite_worker,
        (scenario, known, obs.current() is not None),
        jobs,
        recover,
    )


# ----------------------------------------------------------------------
# sharded detection fan-out: one worker task per shard subgraph
# ----------------------------------------------------------------------
def _init_shard_worker(
    detector: "RICDDetector",
    params: "RICDParams",
    screening: "ScreeningParams",
    trace: bool,
) -> None:
    _WORKER_STATE["detector"] = detector
    _WORKER_STATE["params"] = params
    _WORKER_STATE["screening"] = screening
    _WORKER_STATE["trace"] = trace


def _run_one_shard(
    payload: tuple[int, tuple[int, "BipartiteGraph"]],
) -> tuple[int, "list[SuspiciousGroup]", dict | None, int]:
    from .._util import Stopwatch

    index, (shard_index, shard_graph) = payload

    def task() -> "list[SuspiciousGroup]":
        # The span prefixes everything the shard records (extraction,
        # screening, counters via merge) under shard.<i>, so a merged
        # trace reads like the serial sharded run's.
        with obs.span(f"shard.{shard_index}"):
            return _WORKER_STATE["detector"]._run_modules(
                shard_graph,
                _WORKER_STATE["params"],
                _WORKER_STATE["screening"],
                Stopwatch(),
            )

    groups, trace, pid = _run_traced(task)
    return index, groups, trace, pid


def run_shards_parallel(
    detector: "RICDDetector",
    shard_graphs: "list[BipartiteGraph]",
    params: "RICDParams",
    screening: "ScreeningParams",
    jobs: int,
) -> "list[list[SuspiciousGroup]]":
    """Run modules 1 + 2 over every shard across ``jobs`` processes.

    The detector (with its *resolved* global parameters — thresholds are
    never re-derived in a worker) ships once through the pool
    initializer; tasks carry only their shard subgraph.  Per-shard group
    lists come back in shard order.  A shard whose worker died is re-run
    serially in the parent, exactly like a lost suite detector.
    """

    def recover(pair: tuple[int, "BipartiteGraph"]) -> "list[SuspiciousGroup]":
        from .._util import Stopwatch

        shard_index, shard_graph = pair
        with obs.span(f"shard.{shard_index}"):
            return detector._run_modules(shard_graph, params, screening, Stopwatch())

    return _fan_out(
        list(enumerate(shard_graphs)),
        _run_one_shard,
        _init_shard_worker,
        (detector, params, screening, obs.current() is not None),
        jobs,
        recover,
    )


# ----------------------------------------------------------------------
# sensitivity_sweep fan-out: one worker task per parameter value
# ----------------------------------------------------------------------
def _init_sweep_worker(
    scenario: "Scenario",
    parameter: str,
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
    trace: bool,
) -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["parameter"] = parameter
    _WORKER_STATE["base_params"] = base_params
    _WORKER_STATE["screening"] = screening
    _WORKER_STATE["known"] = known
    _WORKER_STATE["trace"] = trace


def _evaluate_one_value(
    payload: tuple[int, float],
) -> tuple[int, "SweepPoint", dict | None, int]:
    from .sweeps import evaluate_sweep_point

    index, value = payload
    point, trace, pid = _run_traced(
        lambda: evaluate_sweep_point(
            _WORKER_STATE["scenario"],
            _WORKER_STATE["parameter"],
            value,
            _WORKER_STATE["base_params"],
            _WORKER_STATE["screening"],
            _WORKER_STATE["known"],
        )
    )
    return index, point, trace, pid


def sensitivity_sweep_parallel(
    scenario: "Scenario",
    parameter: str,
    values: Sequence[float],
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
    jobs: int,
) -> "list[SweepPoint]":
    """Evaluate one Fig. 9 sweep across ``jobs`` processes, in value order.

    Like :func:`run_suite_parallel`, a value whose worker died is
    recovered serially in the parent instead of surfacing a bare
    :class:`BrokenProcessPool`.
    """
    from .sweeps import evaluate_sweep_point

    def recover(value: float) -> "SweepPoint":
        return evaluate_sweep_point(
            scenario, parameter, value, base_params, screening, known
        )

    return _fan_out(
        list(values),
        _evaluate_one_value,
        _init_sweep_worker,
        (scenario, parameter, base_params, screening, known, obs.current() is not None),
        jobs,
        recover,
    )
