"""Process-pool fan-out for the evaluation harness.

The Fig. 8 suite evaluates seven detectors and the Fig. 9 sweeps evaluate
five values per parameter, all embarrassingly parallel: every run reads
one shared scenario and writes an independent result.  This module fans
those runs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
with two invariants:

* **one scenario transfer per worker** — the (snapshot-stripped) scenario
  is pickled into each worker once through the pool initializer, not with
  every task; tasks carry only a detector or a parameter value;
* **deterministic results** — tasks are indexed and reassembled in input
  order, and workers are forked so they inherit the parent's hash seed;
  the parallel output is byte-identical to the serial path (pinned by
  ``tests/eval/test_parallel.py``).

Entry points are not called directly: pass ``jobs=`` to
:func:`repro.eval.harness.run_suite` or
:func:`repro.eval.sweeps.sensitivity_sweep` (or ``--jobs`` on the CLI),
which delegate here when ``jobs > 1`` and keep the serial fallback
otherwise.  Wall-clock wins require actual cores; on a single-CPU host
the fork/pickle overhead makes ``jobs=1`` the right setting, which is why
it stays the default.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines import Detector
    from ..config import RICDParams, ScreeningParams
    from ..datagen.scenario import Scenario
    from .groundtruth import KnownLabels
    from .harness import DetectorRun
    from .sweeps import SweepPoint

__all__ = ["run_suite_parallel", "sensitivity_sweep_parallel"]

#: Per-worker shared state, installed once by the pool initializer.
_WORKER_STATE: dict = {}


def _pool(jobs: int, initializer, initargs) -> ProcessPoolExecutor:
    """A process pool that prefers ``fork`` (inherits the hash seed)."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    )


# ----------------------------------------------------------------------
# run_suite fan-out: one worker task per detector
# ----------------------------------------------------------------------
def _init_suite_worker(scenario: "Scenario", known: "KnownLabels | None") -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["known"] = known


def _evaluate_one_detector(payload: tuple[int, "Detector"]) -> tuple[int, "DetectorRun"]:
    from .harness import evaluate_detector

    index, detector = payload
    run = evaluate_detector(detector, _WORKER_STATE["scenario"], _WORKER_STATE["known"])
    return index, run


def run_suite_parallel(
    detectors: "list[Detector]",
    scenario: "Scenario",
    known: "KnownLabels | None",
    jobs: int,
) -> "list[DetectorRun]":
    """Evaluate ``detectors`` on ``scenario`` across ``jobs`` processes.

    Labels are resolved by the caller (:func:`repro.eval.harness.run_suite`)
    so the simulation seed is consumed exactly once, identically to the
    serial path.  Results come back in input order.
    """
    workers = max(1, min(jobs, len(detectors)))
    with _pool(workers, _init_suite_worker, (scenario, known)) as pool:
        indexed = list(pool.map(_evaluate_one_detector, enumerate(detectors), chunksize=1))
    runs: list["DetectorRun | None"] = [None] * len(detectors)
    for index, run in indexed:
        runs[index] = run
    return runs  # type: ignore[return-value]


# ----------------------------------------------------------------------
# sensitivity_sweep fan-out: one worker task per parameter value
# ----------------------------------------------------------------------
def _init_sweep_worker(
    scenario: "Scenario",
    parameter: str,
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
) -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["parameter"] = parameter
    _WORKER_STATE["base_params"] = base_params
    _WORKER_STATE["screening"] = screening
    _WORKER_STATE["known"] = known


def _evaluate_one_value(payload: tuple[int, float]) -> tuple[int, "SweepPoint"]:
    from .sweeps import evaluate_sweep_point

    index, value = payload
    point = evaluate_sweep_point(
        _WORKER_STATE["scenario"],
        _WORKER_STATE["parameter"],
        value,
        _WORKER_STATE["base_params"],
        _WORKER_STATE["screening"],
        _WORKER_STATE["known"],
    )
    return index, point


def sensitivity_sweep_parallel(
    scenario: "Scenario",
    parameter: str,
    values: Sequence[float],
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
    jobs: int,
) -> "list[SweepPoint]":
    """Evaluate one Fig. 9 sweep across ``jobs`` processes, in value order."""
    workers = max(1, min(jobs, len(values)))
    initargs = (scenario, parameter, base_params, screening, known)
    with _pool(workers, _init_sweep_worker, initargs) as pool:
        indexed = list(pool.map(_evaluate_one_value, enumerate(values), chunksize=1))
    points: list["SweepPoint | None"] = [None] * len(values)
    for index, point in indexed:
        points[index] = point
    return points  # type: ignore[return-value]
