"""Process-pool fan-out for the evaluation harness.

The Fig. 8 suite evaluates seven detectors and the Fig. 9 sweeps evaluate
five values per parameter, all embarrassingly parallel: every run reads
one shared scenario and writes an independent result.  This module fans
those runs out over a :class:`~concurrent.futures.ProcessPoolExecutor`
with three invariants:

* **one scenario transfer per worker** — the (snapshot-stripped) scenario
  is pickled into each worker once through the pool initializer, not with
  every task; tasks carry only a detector or a parameter value;
* **deterministic results** — tasks are indexed and reassembled in input
  order, and workers are forked so they inherit the parent's hash seed;
  the parallel output is byte-identical to the serial path (pinned by
  ``tests/eval/test_parallel.py`` and the differential suite);
* **no lost runs** — a worker that dies mid-task (OOM kill, hard crash)
  breaks the whole pool, which used to surface as a bare
  :class:`~concurrent.futures.process.BrokenProcessPool`.  Lost tasks
  are now retried on a *fresh* pool per the caller's
  :class:`~repro.resilience.RetryPolicy` (bounded attempts, exponential
  backoff with deterministic jitter); tasks still failing after the
  retry budget — and every task once a
  :class:`~repro.resilience.Deadline` expires — are re-run serially in
  the parent.  Recovered runs are marked ``degraded=True`` (their
  wall-clock is not pool-comparable) and every retry, deadline hit and
  fallback is counted on the active :mod:`repro.obs` recorder under
  ``resilience.*``.

Observability: when the caller has a recorder active (``--trace``), each
worker records into its own :class:`~repro.obs.Recorder` and ships the
exported dict back with its result; the parent merges them (spans and
counters add) and keeps per-worker task counts under
``parallel.worker<N>.tasks``, with worker slots numbered by order of
first result so traces are stable run to run.

The same machinery also fans out *one* detection: the pipeline layer's
sharded execution strategy
(:class:`~repro.pipeline.execution.ShardedExecution`) submits one task
per shard subgraph through :func:`run_shards_parallel`, with the
detector and its globally resolved thresholds shipped once via the pool
initializer.

Entry points are not called directly: pass ``jobs=`` to
:func:`repro.eval.harness.run_suite` or
:func:`repro.eval.sweeps.sensitivity_sweep` (or ``--jobs`` on the CLI),
which delegate here when ``jobs > 1`` and keep the serial fallback
otherwise; sharded detection delegates via ``RICDDetector(shards=...,
shard_jobs=...)``.  Wall-clock wins require actual cores; on a single-CPU host
the fork/pickle overhead makes ``jobs=1`` the right setting, which is why
it stays the default.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from .. import obs
from ..errors import TransientWorkerError
from ..resilience import Deadline, RetryPolicy
from ..resilience.faults import inject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines import Detector
    from ..config import RICDParams, ScreeningParams
    from ..core.framework import RICDDetector
    from ..core.groups import SuspiciousGroup
    from ..datagen.scenario import Scenario
    from ..graph.bipartite import BipartiteGraph
    from .groundtruth import KnownLabels
    from .harness import DetectorRun
    from .sweeps import SweepPoint

__all__ = [
    "run_suite_parallel",
    "sensitivity_sweep_parallel",
    "run_shards_parallel",
    "TaskFailure",
]

#: Per-worker shared state, installed once by the pool initializer.
_WORKER_STATE: dict = {}

#: Environment override for the pool start method (``fork`` / ``spawn``);
#: used by the CI spawn-context job and the spawn determinism tests.
MP_CONTEXT_ENV = "RICD_MP_CONTEXT"


@dataclass
class TaskFailure:
    """Sentinel result for a task that failed even its serial fallback.

    Only produced when the caller opts in with ``capture_failures=True``
    (the sharded execution strategy, which degrades to a full-graph pass
    on shard failure); every other caller sees the exception propagate.
    """

    index: int
    error: Exception


def _context_name() -> str:
    """The pool start method: forced by env, else fork where available."""
    forced = os.environ.get(MP_CONTEXT_ENV)
    if forced:
        return forced
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"  # pragma: no cover - non-POSIX platforms


def _init_worker(hash_seed: str | None, initializer, initargs) -> None:
    """Pool initializer shim: records the pinned hash seed, then delegates."""
    _WORKER_STATE["hash_seed"] = hash_seed
    initializer(*initargs)


def _pool(jobs: int, initializer, initargs) -> ProcessPoolExecutor:
    """A process pool that prefers ``fork``, falling back to ``spawn``.

    Forked workers inherit the parent's str-hash seed with the rest of
    the process image.  Spawned workers start a fresh interpreter that
    re-randomizes hashing, so the seed is shipped explicitly: it is
    pinned in the environment *before* the first worker starts (spawn
    children read ``PYTHONHASHSEED`` at interpreter startup — an
    initializer would run too late) and echoed through the initializer
    for verification.  Detection output is hash-order independent either
    way (canonical sorts everywhere), which the spawn determinism tests
    pin.
    """
    name = _context_name()
    hash_seed = os.environ.get("PYTHONHASHSEED")
    if name != "fork":
        if hash_seed is None:
            hash_seed = "0"
            os.environ["PYTHONHASHSEED"] = hash_seed
    context = multiprocessing.get_context(name)
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=context,
        initializer=_init_worker,
        initargs=(hash_seed, initializer, initargs),
    )


def _run_traced(task: Callable[[], object]) -> tuple[object, dict | None, int]:
    """Run ``task`` in a worker, recording when the parent asked for a trace.

    Returns ``(result, trace_dict_or_None, worker_pid)`` — the shape every
    worker task ships back to the parent.  The ``worker`` fault-injection
    site fires first, so the resilience suite can crash/hang/fail a task
    exactly where a real worker death would occur.
    """
    inject("worker")
    if not _WORKER_STATE.get("trace"):
        return task(), None, os.getpid()
    recorder = obs.Recorder()
    with obs.recording(recorder):
        result = task()
    recorder.count("parallel.tasks")
    return result, recorder.report().to_dict(), os.getpid()


class _TraceMerger:
    """Folds worker traces into the parent recorder with stable worker slots."""

    def __init__(self) -> None:
        self._recorder = obs.current()
        self._slots: dict[int, int] = {}

    @property
    def tracing(self) -> bool:
        return self._recorder is not None

    def absorb(self, trace: dict | None, pid: int) -> None:
        if self._recorder is None or trace is None:
            return
        slot = self._slots.setdefault(pid, len(self._slots))
        self._recorder.merge(trace)
        self._recorder.count(f"parallel.worker{slot}.tasks")

    def finish(self) -> None:
        if self._recorder is not None:
            self._recorder.gauge("parallel.workers_used", len(self._slots))


def _fan_out(
    tasks: Sequence,
    worker_fn,
    initializer,
    initargs: tuple,
    jobs: int,
    serial_fallback,
    retry: "RetryPolicy | None" = None,
    deadline: "Deadline | None" = None,
    capture_failures: bool = False,
) -> list:
    """Common scatter/gather: submit every task, survive a broken pool.

    ``worker_fn`` receives ``(index, task)`` and returns
    ``(index, result, trace, pid)``.  Failure handling, in order:

    1. A task lost to a :class:`BrokenProcessPool` or raising a
       :class:`TransientWorkerError` is re-submitted to a *fresh* pool,
       up to ``retry.max_retries`` times with the policy's backoff
       (``resilience.retries`` counts each re-submission).  The default
       policy performs no retries — the pre-resilience behaviour.
    2. When ``deadline`` expires, in-flight stragglers are abandoned
       (``resilience.deadline_hits``) and every unfinished task joins
       the serial fallback; no retries are attempted past the deadline.
    3. Tasks still unfinished after 1–2 are recovered by calling
       ``serial_fallback(task)`` in the parent
       (``resilience.fallbacks``); a fallback that *also* raises either
       propagates or — with ``capture_failures=True`` — becomes a
       :class:`TaskFailure` sentinel in the result list, so callers with
       their own degradation story (the sharded strategy) see exactly
       which tasks died.

    Genuine (non-transient) exceptions from the task body always
    propagate: retrying a deterministic failure cannot fix it.
    """
    merger = _TraceMerger()
    results: list = [None] * len(tasks)
    policy = retry if retry is not None else RetryPolicy()
    workers = max(1, min(jobs, len(tasks)))

    def pool_round(indices: "list[int]") -> "tuple[list[int], list[int]]":
        """One pool generation: submit ``indices``, classify the losses."""
        broken: list[int] = []
        timed_out: list[int] = []
        abandoned = False
        pool = _pool(workers, initializer, initargs)
        try:
            futures = [
                (index, pool.submit(worker_fn, (index, tasks[index])))
                for index in indices
            ]
            for index, future in futures:
                if abandoned:
                    timed_out.append(index)
                    continue
                try:
                    timeout = deadline.remaining() if deadline is not None else None
                    task_index, result, trace, pid = future.result(timeout=timeout)
                    results[task_index] = result
                    merger.absorb(trace, pid)
                except FuturesTimeoutError:
                    obs.count("resilience.deadline_hits")
                    abandoned = True
                    timed_out.append(index)
                except BrokenProcessPool:
                    broken.append(index)
                except TransientWorkerError:
                    broken.append(index)
        finally:
            # On deadline abandonment, don't wait for hung stragglers —
            # cancel what never started and let orphans finish unobserved.
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        return broken, timed_out

    pending = list(range(len(tasks)))
    lost_broken: list[int] = []
    lost_timed_out: list[int] = []
    attempt = 0
    while pending:
        lost_broken, timed_out = pool_round(pending)
        lost_timed_out.extend(timed_out)
        if not lost_broken:
            break
        if timed_out or attempt >= policy.max_retries:
            break
        if deadline is not None and deadline.expired:
            break
        attempt += 1
        obs.count("resilience.retries", len(lost_broken))
        policy.sleep(attempt)
        pending = lost_broken
        lost_broken = []

    lost = sorted(lost_broken + lost_timed_out)
    for index in lost:
        if index not in lost_timed_out:
            obs.count("parallel.broken_pool_recoveries")
        obs.count("resilience.fallbacks")
        try:
            results[index] = serial_fallback(tasks[index])
        except TransientWorkerError as error:
            if not capture_failures:
                raise
            results[index] = TaskFailure(index, error)
    if lost and merger.tracing:
        obs.gauge("parallel.degraded", True)
    merger.finish()
    return results


# ----------------------------------------------------------------------
# run_suite fan-out: one worker task per detector
# ----------------------------------------------------------------------
def _init_suite_worker(
    scenario: "Scenario", known: "KnownLabels | None", trace: bool
) -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["known"] = known
    _WORKER_STATE["trace"] = trace


def _evaluate_one_detector(
    payload: tuple[int, "Detector"],
) -> tuple[int, "DetectorRun", dict | None, int]:
    from .harness import evaluate_detector

    index, detector = payload
    run, trace, pid = _run_traced(
        lambda: evaluate_detector(
            detector, _WORKER_STATE["scenario"], _WORKER_STATE["known"]
        )
    )
    return index, run, trace, pid


def run_suite_parallel(
    detectors: "list[Detector]",
    scenario: "Scenario",
    known: "KnownLabels | None",
    jobs: int,
    retry: "RetryPolicy | None" = None,
    deadline: "Deadline | None" = None,
) -> "list[DetectorRun]":
    """Evaluate ``detectors`` on ``scenario`` across ``jobs`` processes.

    Labels are resolved by the caller (:func:`repro.eval.harness.run_suite`)
    so the simulation seed is consumed exactly once, identically to the
    serial path.  Results come back in input order.  A detector whose
    worker died is retried per ``retry`` (none by default), then
    re-evaluated serially and its run marked ``degraded=True``; the
    detection output is identical either way.
    """
    from .harness import evaluate_detector

    def recover(detector: "Detector") -> "DetectorRun":
        run = evaluate_detector(detector, scenario, known)
        run.degraded = True
        return run

    return _fan_out(
        detectors,
        _evaluate_one_detector,
        _init_suite_worker,
        (scenario, known, obs.current() is not None),
        jobs,
        recover,
        retry=retry,
        deadline=deadline,
    )


# ----------------------------------------------------------------------
# sharded detection fan-out: one worker task per shard subgraph
# ----------------------------------------------------------------------
def _init_shard_worker(
    detector: "RICDDetector",
    params: "RICDParams",
    screening: "ScreeningParams",
    trace: bool,
) -> None:
    _WORKER_STATE["detector"] = detector
    _WORKER_STATE["params"] = params
    _WORKER_STATE["screening"] = screening
    _WORKER_STATE["trace"] = trace


def _run_one_shard(
    payload: tuple[int, tuple[int, "BipartiteGraph"]],
) -> tuple[int, "list[SuspiciousGroup]", dict | None, int]:
    from .._util import Stopwatch

    index, (shard_index, shard_graph) = payload

    def task() -> "list[SuspiciousGroup]":
        # The span prefixes everything the shard records (extraction,
        # screening, counters via merge) under shard.<i>, so a merged
        # trace reads like the serial sharded run's.
        with obs.span(f"shard.{shard_index}"):
            return _WORKER_STATE["detector"]._run_modules(
                shard_graph,
                _WORKER_STATE["params"],
                _WORKER_STATE["screening"],
                Stopwatch(),
            )

    groups, trace, pid = _run_traced(task)
    return index, groups, trace, pid


def run_shards_parallel(
    detector: "RICDDetector",
    shard_graphs: "list[BipartiteGraph]",
    params: "RICDParams",
    screening: "ScreeningParams",
    jobs: int,
    retry: "RetryPolicy | None" = None,
    deadline: "Deadline | None" = None,
    capture_failures: bool = False,
) -> "list[list[SuspiciousGroup] | TaskFailure]":
    """Run modules 1 + 2 over every shard across ``jobs`` processes.

    The detector (with its *resolved* global parameters — thresholds are
    never re-derived in a worker) ships once through the pool
    initializer; tasks carry only their shard subgraph.  Per-shard group
    lists come back in shard order.  A shard whose worker died is
    retried per ``retry``, then re-run serially in the parent; with
    ``capture_failures=True`` a shard that fails even the serial re-run
    comes back as a :class:`TaskFailure` (the sharded strategy's cue to
    degrade to a full-graph pass) instead of aborting the fan-out.
    """

    def recover(pair: tuple[int, "BipartiteGraph"]) -> "list[SuspiciousGroup]":
        from .._util import Stopwatch

        shard_index, shard_graph = pair
        with obs.span(f"shard.{shard_index}"):
            return detector._run_modules(shard_graph, params, screening, Stopwatch())

    return _fan_out(
        list(enumerate(shard_graphs)),
        _run_one_shard,
        _init_shard_worker,
        (detector, params, screening, obs.current() is not None),
        jobs,
        recover,
        retry=retry,
        deadline=deadline,
        capture_failures=capture_failures,
    )


# ----------------------------------------------------------------------
# sensitivity_sweep fan-out: one worker task per parameter value
# ----------------------------------------------------------------------
def _init_sweep_worker(
    scenario: "Scenario",
    parameter: str,
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
    trace: bool,
) -> None:
    _WORKER_STATE["scenario"] = scenario
    _WORKER_STATE["parameter"] = parameter
    _WORKER_STATE["base_params"] = base_params
    _WORKER_STATE["screening"] = screening
    _WORKER_STATE["known"] = known
    _WORKER_STATE["trace"] = trace


def _evaluate_one_value(
    payload: tuple[int, float],
) -> tuple[int, "SweepPoint", dict | None, int]:
    from .sweeps import evaluate_sweep_point

    index, value = payload
    point, trace, pid = _run_traced(
        lambda: evaluate_sweep_point(
            _WORKER_STATE["scenario"],
            _WORKER_STATE["parameter"],
            value,
            _WORKER_STATE["base_params"],
            _WORKER_STATE["screening"],
            _WORKER_STATE["known"],
        )
    )
    return index, point, trace, pid


def sensitivity_sweep_parallel(
    scenario: "Scenario",
    parameter: str,
    values: Sequence[float],
    base_params: "RICDParams",
    screening: "ScreeningParams",
    known: "KnownLabels | None",
    jobs: int,
    retry: "RetryPolicy | None" = None,
    deadline: "Deadline | None" = None,
) -> "list[SweepPoint]":
    """Evaluate one Fig. 9 sweep across ``jobs`` processes, in value order.

    Like :func:`run_suite_parallel`, a value whose worker died is
    retried per ``retry`` and finally recovered serially in the parent
    instead of surfacing a bare :class:`BrokenProcessPool`.
    """
    from .sweeps import evaluate_sweep_point

    def recover(value: float) -> "SweepPoint":
        return evaluate_sweep_point(
            scenario, parameter, value, base_params, screening, known
        )

    return _fan_out(
        list(values),
        _evaluate_one_value,
        _init_sweep_worker,
        (scenario, parameter, base_params, screening, known, obs.current() is not None),
        jobs,
        recover,
        retry=retry,
        deadline=deadline,
    )
