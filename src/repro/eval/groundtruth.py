"""The paper's partial-knowledge labelling protocol, simulated.

Section VI-A: "To get the ground truth, we first sample 4,000 nodes from
the results of the naive algorithm and ask business experts to label them
as suspicious or normal.  Then, we intersect these suspicious nodes with
attackers already known in the dataset to produce a list of about 2,000
known abnormal nodes."

We reproduce the process with the injected exact truth playing the role of
the (infallible) business expert and of the platform's pre-existing
attacker list:

1. run Algorithm 1 on the graph and sample ``sample_size`` nodes from its
   output;
2. "label" each sampled node against the exact truth (expert judgement);
3. union with a random ``known_attacker_fraction`` of the exact truth (the
   platform's independently known attackers).

The resulting :class:`KnownLabels` set is *incomplete* by construction,
so precision measured against it under-reports the true precision —
faithfully reproducing the measurement bias the paper declares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from ..core.naive import NaiveParams, naive_detect
from ..datagen.labels import GroundTruth
from ..graph.bipartite import BipartiteGraph

__all__ = ["KnownLabels", "simulate_known_labels"]

Node = Hashable


@dataclass(frozen=True)
class KnownLabels:
    """The simulated "known abnormal nodes" list.

    A strict subset of the exact ground truth, carrying the same
    incompleteness as the paper's ~2,000-node expert list.
    """

    users: frozenset[Node]
    items: frozenset[Node]

    @property
    def size(self) -> int:
        """Total known abnormal nodes."""
        return len(self.users) + len(self.items)


def simulate_known_labels(
    graph: BipartiteGraph,
    truth: GroundTruth,
    sample_size: int = 4_000,
    known_attacker_fraction: float = 0.4,
    seed: int = 0,
    naive_params: NaiveParams | None = None,
) -> KnownLabels:
    """Produce the partial label set per the paper's protocol.

    Parameters
    ----------
    graph:
        The (attacked) click graph.
    truth:
        Exact injected labels, standing in for expert judgement and the
        platform's prior attacker list.
    sample_size:
        Nodes sampled from the naive algorithm's output for expert review
        (paper: 4,000).
    known_attacker_fraction:
        Share of the exact truth independently known to the platform.
    seed:
        Sampling seed.
    naive_params:
        Optional override for the naive algorithm's parameters.
    """
    if sample_size < 0:
        raise ValueError(f"sample_size must be >= 0, got {sample_size}")
    if not 0.0 <= known_attacker_fraction <= 1.0:
        raise ValueError("known_attacker_fraction must lie in [0, 1]")
    rng = random.Random(seed)

    naive_result = naive_detect(graph, naive_params)
    candidate_users = sorted(naive_result.suspicious_users, key=str)
    candidate_items = sorted(naive_result.suspicious_items, key=str)
    pool = [("user", node) for node in candidate_users]
    pool += [("item", node) for node in candidate_items]
    sampled = rng.sample(pool, min(sample_size, len(pool)))

    # Expert labelling: exact truth decides suspicious vs normal.
    expert_users = {
        node for side, node in sampled if side == "user" and node in truth.abnormal_users
    }
    expert_items = {
        node for side, node in sampled if side == "item" and node in truth.abnormal_items
    }

    # Platform's independently known attackers: a random truth subset.
    prior_users = {
        node
        for node in sorted(truth.abnormal_users, key=str)
        if rng.random() < known_attacker_fraction
    }
    prior_items = {
        node
        for node in sorted(truth.abnormal_items, key=str)
        if rng.random() < known_attacker_fraction
    }

    return KnownLabels(
        users=frozenset(expert_users | prior_users),
        items=frozenset(expert_items | prior_items),
    )
