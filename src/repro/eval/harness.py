"""Detector runners: evaluate one detector or the paper's whole suite.

:func:`run_suite` reproduces the Fig. 8 comparison protocol: every
baseline is wrapped with the screening module ("+UI"), RICD runs as-is,
and each detector is scored against both the exact injected truth and the
simulated partial label set (the paper's measurement).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from .._util import stopwatch
from ..baselines import (
    CommonNeighborsDetector,
    CopyCatchDetector,
    Detector,
    FraudarDetector,
    LabelPropagationDetector,
    LouvainDetector,
    NaiveDetector,
    WithScreening,
)
from ..core.framework import RICDDetector
from ..core.groups import DetectionResult
from ..config import RICDParams, ScreeningParams
from ..datagen.scenario import Scenario
from .groundtruth import KnownLabels, simulate_known_labels
from .metrics import Metrics, node_metrics

__all__ = ["DetectorRun", "evaluate_detector", "run_suite", "default_detector_suite"]


@dataclass
class DetectorRun:
    """One detector's evaluated result on one scenario.

    Attributes
    ----------
    name:
        Detector display name.
    result:
        The raw detection output.
    exact:
        Metrics against the full injected truth.
    known:
        Metrics against the simulated partial labels (the paper's
        protocol); ``None`` when no label set was supplied.
    elapsed:
        End-to-end wall-clock seconds of the ``detect`` call.
    degraded:
        ``True`` when a parallel evaluation lost this run's worker (e.g.
        a crash took the process pool down) and the detector was re-run
        serially in the parent; the result is still exact, only the
        wall-clock is not comparable to the pooled runs.
    """

    name: str
    result: DetectionResult
    exact: Metrics
    known: Metrics | None
    elapsed: float
    degraded: bool = False


def evaluate_detector(
    detector: Detector, scenario: Scenario, known: KnownLabels | None = None
) -> DetectorRun:
    """Run ``detector`` on ``scenario`` and score it.

    The end-to-end elapsed time is measured around the ``detect`` call
    (Fig. 8b's quantity); per-phase splits remain available in
    ``result.timings``.
    """
    obs.count("eval.detectors_evaluated")
    with stopwatch() as timer:
        result = detector.detect(scenario.graph)
    exact = node_metrics(
        result.suspicious_users,
        result.suspicious_items,
        scenario.truth.abnormal_users,
        scenario.truth.abnormal_items,
    )
    known_metrics = None
    if known is not None:
        known_metrics = node_metrics(
            result.suspicious_users,
            result.suspicious_items,
            set(known.users),
            set(known.items),
        )
    return DetectorRun(
        name=detector.name,
        result=result,
        exact=exact,
        known=known_metrics,
        elapsed=timer[0],
    )


def default_detector_suite(
    params: RICDParams | None = None,
    screening: ScreeningParams | None = None,
    copycatch_deadline: float = 5.0,
    include_unscreened: bool = False,
) -> list[Detector]:
    """The paper's Fig. 8 line-up: RICD plus every baseline "+UI".

    Parameters
    ----------
    params:
        RICD extraction parameters; ``k1``/``k2`` also set the baselines'
        community-size floors ("consistent with the k1, k2 in RICD").
    screening:
        Screening parameters shared by RICD and the +UI wrappers.
    copycatch_deadline:
        COPYCATCH's wall-clock budget in seconds.
    include_unscreened:
        Also return the raw (un-wrapped) baselines, for ablations.
    """
    params = params or RICDParams()
    screening = screening or ScreeningParams()
    floors = {"min_users": params.k1, "min_items": params.k2}
    bases: list[Detector] = [
        LabelPropagationDetector(**floors),
        CommonNeighborsDetector(cn_threshold=params.k1, **floors),
        LouvainDetector(**floors),
        CopyCatchDetector(deadline_seconds=copycatch_deadline, **floors),
        FraudarDetector(),
        NaiveDetector(),
    ]
    suite: list[Detector] = [RICDDetector(params=params, screening=screening)]
    for base in bases:
        suite.append(
            WithScreening(
                base,
                screening=screening,
                t_hot=params.t_hot,
                t_click=params.t_click,
                **floors,
            )
        )
    if include_unscreened:
        suite.extend(bases)
    return suite


def run_suite(
    detectors: list[Detector],
    scenario: Scenario,
    simulate_labels: bool = True,
    label_seed: int = 0,
    jobs: int = 1,
) -> list[DetectorRun]:
    """Evaluate every detector on ``scenario``; returns runs in input order.

    ``jobs > 1`` fans the detectors out over a process pool (one worker
    task per detector, the scenario shipped to each worker once); metrics
    and groupings are identical to the serial path, only wall-clock
    changes.  ``jobs=1`` is the serial reference path.
    """
    known = (
        simulate_known_labels(scenario.graph, scenario.truth, seed=label_seed)
        if simulate_labels
        else None
    )
    if jobs > 1 and len(detectors) > 1:
        from .parallel import run_suite_parallel

        return run_suite_parallel(detectors, scenario, known, jobs)
    return [evaluate_detector(detector, scenario, known) for detector in detectors]
