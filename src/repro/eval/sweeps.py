"""Parameter sensitivity sweeps (Fig. 9).

The paper varies five parameters one at a time around the default
configuration and plots precision / recall / F1.  :func:`sensitivity_sweep`
does exactly that for any :class:`RICDParams` field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import RICDParams, ScreeningParams
from ..core.framework import RICDDetector
from ..datagen.scenario import Scenario
from .groundtruth import KnownLabels
from .harness import evaluate_detector
from .metrics import Metrics

__all__ = ["SweepPoint", "sensitivity_sweep", "evaluate_sweep_point", "SWEEPABLE_PARAMETERS"]

#: RICDParams fields Fig. 9 sweeps (a-e, in paper order).
SWEEPABLE_PARAMETERS = ("k1", "k2", "alpha", "t_click", "t_hot")


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity curve."""

    parameter: str
    value: float
    exact: Metrics
    known: Metrics | None
    elapsed: float


def evaluate_sweep_point(
    scenario: Scenario,
    parameter: str,
    value: float,
    base_params: RICDParams,
    screening: ScreeningParams,
    known: KnownLabels | None,
) -> SweepPoint:
    """Evaluate one value of one parameter (the unit of sweep parallelism)."""
    if parameter in ("k1", "k2"):
        params = base_params.replace(**{parameter: int(value)})
    else:
        params = base_params.replace(**{parameter: float(value)})
    detector = RICDDetector(params=params, screening=screening)
    run = evaluate_detector(detector, scenario, known)
    return SweepPoint(
        parameter=parameter,
        value=float(value),
        exact=run.exact,
        known=run.known,
        elapsed=run.elapsed,
    )


def sensitivity_sweep(
    scenario: Scenario,
    parameter: str,
    values: Sequence[float],
    base_params: RICDParams | None = None,
    screening: ScreeningParams | None = None,
    known: KnownLabels | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Vary one RICD parameter, keeping all others at the base configuration.

    Parameters
    ----------
    scenario:
        The evaluation environment.
    parameter:
        One of :data:`SWEEPABLE_PARAMETERS`.
    values:
        Values to evaluate, in the order they should be reported.
    base_params:
        Defaults for the fixed parameters (paper: k1 = k2 = 10,
        alpha = 1.0, t_click = 12, t_hot = 2000 for the Fig. 9 runs).
    screening:
        Screening parameters.
    known:
        Optional partial labels to score against as well.
    jobs:
        ``> 1`` evaluates the values over a process pool (one worker task
        per value, the scenario shipped once per worker); results are
        identical to the serial path and come back in value order.
    """
    if parameter not in SWEEPABLE_PARAMETERS:
        raise ValueError(
            f"parameter must be one of {SWEEPABLE_PARAMETERS}, got {parameter!r}"
        )
    base_params = base_params or RICDParams()
    screening = screening or ScreeningParams()
    if jobs > 1 and len(values) > 1:
        from .parallel import sensitivity_sweep_parallel

        return sensitivity_sweep_parallel(
            scenario, parameter, values, base_params, screening, known, jobs
        )
    return [
        evaluate_sweep_point(scenario, parameter, value, base_params, screening, known)
        for value in values
    ]
