"""Adversarial-robustness evaluation.

Two studies beyond the paper's main grid, both rooted in its text:

* **Camouflage sweep** — "experienced crowd workers will add arbitrary
  'camouflage' to disguise their fraud".  :func:`camouflage_sweep` regrows
  the scenario with increasing camouflage volume and evaluates a detector
  at each level; a camouflage-robust detector's metrics stay flat.

* **Evasion economics** — the strongest attacker stays ``K_{k1,k2}``-free
  (:mod:`repro.datagen.evasion`) and is invisible to extraction; the
  Zarankiewicz bound caps the fake clicks that buys.
  :func:`evasion_economics` quantifies the trade: detection rate and
  per-target I2I lift of an overt campaign vs the invisible one.

* **Multi-seed stability** — :func:`evaluate_across_seeds` reruns a
  detector over freshly generated scenarios and reports mean/min/max
  metrics, the repository's guard against seed-cherry-picking.

* **Red team** — :func:`red_team` runs every attack family of
  :mod:`repro.datagen.attacks` against the detector over a (family ×
  click budget × adaptivity) grid and reports the recall/precision
  frontier, with and without the Fig. 7 feedback loop.  This is the
  harness behind ``ricd redteam`` and the robustness-frontier docs.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..baselines.base import Detector
from ..config import RICDParams
from ..core.camouflage import undetected_campaign_bound
from ..core.framework import RICDDetector
from ..core.i2i import i2i_scores
from ..datagen.evasion import EvasionConfig, inject_evasive_campaign
from ..datagen.scenario import Scenario, generate_scenario
from .metrics import Metrics, node_metrics

__all__ = [
    "CamouflagePoint",
    "camouflage_sweep",
    "EvasionReport",
    "evasion_economics",
    "SeedSummary",
    "evaluate_across_seeds",
    "FrontierPoint",
    "RedTeamReport",
    "red_team",
]


@dataclass(frozen=True)
class CamouflagePoint:
    """One camouflage level's evaluation."""

    camouflage_items: tuple[int, int]
    metrics: Metrics


def camouflage_sweep(
    base_scenario: Scenario,
    detector_factory: Callable[[], Detector],
    levels: Sequence[tuple[int, int]] = ((0, 0), (1, 4), (5, 12), (12, 25)),
) -> list[CamouflagePoint]:
    """Evaluate a detector as attackers add more camouflage.

    The scenario is regenerated at each level with only
    ``camouflage_items`` changed (same seeds, same marketplace), so the
    curves isolate the camouflage effect.

    Parameters
    ----------
    base_scenario:
        Template scenario whose configs are reused.
    detector_factory:
        Builds a fresh detector per level (detectors may be stateful).
    levels:
        ``camouflage_items`` ranges to test, in reporting order.
    """
    points: list[CamouflagePoint] = []
    for level in levels:
        low, high = level
        attack_config = dataclasses.replace(
            base_scenario.attack_config,
            camouflage_items=(low, high),
            camouflage_clicks=(1, 2) if high else (0, 0),
        )
        scenario = generate_scenario(base_scenario.marketplace_config, attack_config)
        result = detector_factory().detect(scenario.graph)
        metrics = node_metrics(
            result.suspicious_users,
            result.suspicious_items,
            scenario.truth.abnormal_users,
            scenario.truth.abnormal_items,
        )
        points.append(CamouflagePoint(camouflage_items=level, metrics=metrics))
    return points


@dataclass(frozen=True)
class EvasionReport:
    """Overt vs invisible campaign, side by side.

    Attributes
    ----------
    overt_detection_rate, evasive_detection_rate:
        Share of campaign accounts the detector flags.
    overt_mean_lift, evasive_mean_lift:
        Mean I2I score of the targets against the ridden hot item.
    invisible_click_bound:
        The Zarankiewicz ceiling on the evasive campaign's fake edges.
    evasive_fake_edges:
        Fake edges the evasive campaign actually placed (must respect the
        bound on the target side).
    """

    overt_detection_rate: float
    evasive_detection_rate: float
    overt_mean_lift: float
    evasive_mean_lift: float
    invisible_click_bound: int
    evasive_fake_edges: int


def _mean_target_score(graph, hot_item, targets) -> float:
    scores = i2i_scores(graph, hot_item)
    if not targets:
        return 0.0
    return sum(scores.get(target, 0.0) for target in targets) / len(targets)


def evasion_economics(
    clean_graph,
    params: RICDParams,
    n_workers: int = 30,
    n_targets: int = 12,
    seed: int = 0,
) -> EvasionReport:
    """Quantify what ``K``-freeness costs the attacker.

    Injects, into two copies of ``clean_graph``, (a) an *overt* campaign
    (every worker clicks every target — the Eq. 3 optimum, detectable) and
    (b) the *invisible* campaign of :mod:`repro.datagen.evasion` with the
    same worker/target budget, then measures detection and I2I lift for
    both.
    """
    from ..datagen.attacks import AttackConfig, inject_attacks

    detector = RICDDetector(params=params, max_group_users=None)

    overt_graph = clean_graph.copy()
    overt_truth = inject_attacks(
        overt_graph,
        AttackConfig(
            n_groups=1,
            workers_per_group=(n_workers, n_workers),
            targets_per_group=(n_targets, n_targets),
            hot_items_per_group=(1, 1),
            target_clicks=(12, 13),
            density=1.0,
            sloppy_fraction=0.0,
            hijacked_user_fraction=0.0,
            worker_reuse_fraction=0.0,
            camouflage_items=(0, 0),
            organic_target_users=(0, 0),
            seed=seed,
        ),
    )
    overt_group = overt_truth.groups[0]
    overt_result = detector.detect(overt_graph)
    overt_rate = len(
        set(overt_group.workers) & overt_result.suspicious_users
    ) / len(overt_group.workers)
    overt_lift = _mean_target_score(
        overt_graph, overt_group.hot_items[0], overt_group.target_items
    )

    evasive_graph = clean_graph.copy()
    evasive_truth = inject_evasive_campaign(
        evasive_graph,
        EvasionConfig(
            params,
            n_workers=n_workers,
            n_targets=n_targets,
            hot_items=1,
            seed=seed + 1,
        ),
    )
    evasive_group = evasive_truth.groups[0]
    evasive_result = detector.detect(evasive_graph)
    evasive_rate = len(
        set(evasive_group.workers) & evasive_result.suspicious_users
    ) / len(evasive_group.workers)
    evasive_lift = (
        _mean_target_score(
            evasive_graph, evasive_group.hot_items[0], evasive_group.target_items
        )
        if evasive_group.hot_items
        else 0.0
    )
    target_edges = sum(
        1 for _u, item, _c in evasive_group.fake_edges if str(item).startswith("ev_t")
    )
    return EvasionReport(
        overt_detection_rate=overt_rate,
        evasive_detection_rate=evasive_rate,
        overt_mean_lift=overt_lift,
        evasive_mean_lift=evasive_lift,
        invisible_click_bound=undetected_campaign_bound(n_workers, n_targets, params),
        evasive_fake_edges=target_edges,
    )


@dataclass(frozen=True)
class FrontierPoint:
    """One (family × budget × adaptivity) cell of the red-team frontier.

    Attributes
    ----------
    family:
        Attack-family registry name.
    budget:
        Click budget the campaign spent (exactly, by the ledger).
    adaptive:
        Whether the attacker observed the resolved thresholds.
    metrics:
        Exact-truth metrics of the baseline detector run.
    feedback_metrics:
        Metrics of the same detection with the Fig. 7 feedback loop
        enabled (``None`` when the loop was not evaluated).
    feedback_rounds:
        Relaxation rounds the loop actually performed.
    n_workers, n_groups:
        Campaign size, for economics context in the report.
    """

    family: str
    budget: int
    adaptive: bool
    metrics: Metrics
    feedback_metrics: Metrics | None
    feedback_rounds: int
    n_workers: int
    n_groups: int

    @property
    def recall_recovered(self) -> float:
        """Recall the feedback loop added over the baseline run."""
        if self.feedback_metrics is None:
            return 0.0
        return self.feedback_metrics.recall - self.metrics.recall

    def to_row(self) -> dict:
        """JSON-serialisable flat record (the artifact row format)."""
        row = {
            "family": self.family,
            "budget": self.budget,
            "adaptive": self.adaptive,
            "n_workers": self.n_workers,
            "n_groups": self.n_groups,
            "precision": self.metrics.precision,
            "recall": self.metrics.recall,
            "f1": self.metrics.f1,
        }
        if self.feedback_metrics is not None:
            row["feedback"] = {
                "precision": self.feedback_metrics.precision,
                "recall": self.feedback_metrics.recall,
                "f1": self.feedback_metrics.f1,
                "rounds": self.feedback_rounds,
                "recall_recovered": self.recall_recovered,
            }
        return row


@dataclass(frozen=True)
class RedTeamReport:
    """The full recall/precision frontier of one red-team run."""

    seed: int
    points: list[FrontierPoint]

    def families(self) -> list[str]:
        """Families present, in first-appearance order."""
        seen: dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.family, None)
        return list(seen)

    def best_recall(self, family: str) -> float:
        """Best baseline recall over the family's cells (any budget)."""
        cells = [p.metrics.recall for p in self.points if p.family == family]
        return max(cells) if cells else 0.0

    def to_json(self) -> dict:
        """The ``ricd redteam`` artifact payload."""
        return {
            "schema": "ricd.redteam.frontier/v1",
            "seed": self.seed,
            "families": self.families(),
            "points": [point.to_row() for point in self.points],
        }


def _sized_feedback_policy(expectation: int, shrink_k: bool = True):
    from ..config import FeedbackPolicy

    return FeedbackPolicy(
        expectation=expectation, max_rounds=4, t_click_step=2.0,
        alpha_step=0.1, shrink_k=shrink_k, hot_cap_step=2.0,
    )


def red_team(
    clean_graph,
    families: Sequence[str] | None = None,
    budgets: Sequence[int] = (2_000, 5_000),
    adaptivity: Sequence[bool] = (False, True),
    params: RICDParams | None = None,
    seed: int = 0,
    with_feedback: bool = True,
) -> RedTeamReport:
    """Run the attack zoo against the detector and map the frontier.

    For every (family × budget × adaptivity) cell the harness plans a
    campaign on a *copy* of ``clean_graph`` (the registry's uniform
    ``plan_family``), applies it, and evaluates:

    1. the baseline :class:`~repro.core.framework.RICDDetector` with
       ``params``;
    2. (when ``with_feedback``) the same detector with a Fig. 7
       :class:`~repro.config.FeedbackPolicy` whose expectation is sized
       from the ground truth — the operator's "I know roughly how much
       fraud there is" knob the paper's feedback loop assumes.

    Campaign seeds are derived from ``seed`` per cell so cells are
    independent but the whole frontier is reproducible.
    """
    from ..datagen.attacks import family_names, plan_family

    chosen = list(families) if families is not None else family_names()
    effective = params if params is not None else RICDParams()
    points: list[FrontierPoint] = []
    for family_index, family in enumerate(chosen):
        for budget in budgets:
            for adaptive in adaptivity:
                graph = clean_graph.copy()
                cell_seed = seed + 1_000 * family_index + int(budget) + int(adaptive)
                plan = plan_family(
                    graph, family, budget=budget, seed=cell_seed, adaptive=adaptive
                )
                truth = plan.apply(graph)
                base_result = RICDDetector(params=effective).detect(graph)
                metrics = node_metrics(
                    base_result.suspicious_users,
                    base_result.suspicious_items,
                    truth.abnormal_users,
                    truth.abnormal_items,
                )
                feedback_metrics = None
                feedback_rounds = 0
                if with_feedback:
                    expectation = len(truth.abnormal_users) + len(truth.abnormal_items)
                    fed_result = RICDDetector(
                        params=effective,
                        feedback=_sized_feedback_policy(expectation),
                    ).detect(graph)
                    feedback_metrics = node_metrics(
                        fed_result.suspicious_users,
                        fed_result.suspicious_items,
                        truth.abnormal_users,
                        truth.abnormal_items,
                    )
                    feedback_rounds = fed_result.feedback_rounds
                points.append(
                    FrontierPoint(
                        family=family,
                        budget=int(budget),
                        adaptive=bool(adaptive),
                        metrics=metrics,
                        feedback_metrics=feedback_metrics,
                        feedback_rounds=feedback_rounds,
                        n_workers=sum(len(g.workers) for g in plan.groups),
                        n_groups=len(plan.groups),
                    )
                )
    return RedTeamReport(seed=seed, points=points)


@dataclass(frozen=True)
class SeedSummary:
    """Mean/min/max of a metric across seeds."""

    mean_precision: float
    mean_recall: float
    mean_f1: float
    min_f1: float
    max_f1: float
    n_seeds: int
    stdev_f1: float


def evaluate_across_seeds(
    detector_factory: Callable[[], Detector],
    scenario_factory: Callable[[int], Scenario],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedSummary:
    """Run ``detector_factory()`` on fresh scenarios for every seed.

    Returns aggregate exact-truth metrics; use to verify claims are not
    seed artefacts.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    rows: list[Metrics] = []
    for seed in seeds:
        scenario = scenario_factory(seed)
        result = detector_factory().detect(scenario.graph)
        rows.append(
            node_metrics(
                result.suspicious_users,
                result.suspicious_items,
                scenario.truth.abnormal_users,
                scenario.truth.abnormal_items,
            )
        )
    f1_values = [m.f1 for m in rows]
    mean_f1 = sum(f1_values) / len(f1_values)
    variance = sum((v - mean_f1) ** 2 for v in f1_values) / len(f1_values)
    return SeedSummary(
        mean_precision=sum(m.precision for m in rows) / len(rows),
        mean_recall=sum(m.recall for m in rows) / len(rows),
        mean_f1=mean_f1,
        min_f1=min(f1_values),
        max_f1=max(f1_values),
        n_seeds=len(seeds),
        stdev_f1=math.sqrt(variance),
    )
