"""Adversarial-robustness evaluation.

Two studies beyond the paper's main grid, both rooted in its text:

* **Camouflage sweep** — "experienced crowd workers will add arbitrary
  'camouflage' to disguise their fraud".  :func:`camouflage_sweep` regrows
  the scenario with increasing camouflage volume and evaluates a detector
  at each level; a camouflage-robust detector's metrics stay flat.

* **Evasion economics** — the strongest attacker stays ``K_{k1,k2}``-free
  (:mod:`repro.datagen.evasion`) and is invisible to extraction; the
  Zarankiewicz bound caps the fake clicks that buys.
  :func:`evasion_economics` quantifies the trade: detection rate and
  per-target I2I lift of an overt campaign vs the invisible one.

* **Multi-seed stability** — :func:`evaluate_across_seeds` reruns a
  detector over freshly generated scenarios and reports mean/min/max
  metrics, the repository's guard against seed-cherry-picking.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..baselines.base import Detector
from ..config import RICDParams
from ..core.camouflage import undetected_campaign_bound
from ..core.framework import RICDDetector
from ..core.i2i import i2i_scores
from ..datagen.evasion import EvasionConfig, inject_evasive_campaign
from ..datagen.scenario import Scenario, generate_scenario
from .metrics import Metrics, node_metrics

__all__ = [
    "CamouflagePoint",
    "camouflage_sweep",
    "EvasionReport",
    "evasion_economics",
    "SeedSummary",
    "evaluate_across_seeds",
]


@dataclass(frozen=True)
class CamouflagePoint:
    """One camouflage level's evaluation."""

    camouflage_items: tuple[int, int]
    metrics: Metrics


def camouflage_sweep(
    base_scenario: Scenario,
    detector_factory: Callable[[], Detector],
    levels: Sequence[tuple[int, int]] = ((0, 0), (1, 4), (5, 12), (12, 25)),
) -> list[CamouflagePoint]:
    """Evaluate a detector as attackers add more camouflage.

    The scenario is regenerated at each level with only
    ``camouflage_items`` changed (same seeds, same marketplace), so the
    curves isolate the camouflage effect.

    Parameters
    ----------
    base_scenario:
        Template scenario whose configs are reused.
    detector_factory:
        Builds a fresh detector per level (detectors may be stateful).
    levels:
        ``camouflage_items`` ranges to test, in reporting order.
    """
    points: list[CamouflagePoint] = []
    for level in levels:
        low, high = level
        attack_config = dataclasses.replace(
            base_scenario.attack_config,
            camouflage_items=(low, high),
            camouflage_clicks=(1, 2) if high else (0, 0),
        )
        scenario = generate_scenario(base_scenario.marketplace_config, attack_config)
        result = detector_factory().detect(scenario.graph)
        metrics = node_metrics(
            result.suspicious_users,
            result.suspicious_items,
            scenario.truth.abnormal_users,
            scenario.truth.abnormal_items,
        )
        points.append(CamouflagePoint(camouflage_items=level, metrics=metrics))
    return points


@dataclass(frozen=True)
class EvasionReport:
    """Overt vs invisible campaign, side by side.

    Attributes
    ----------
    overt_detection_rate, evasive_detection_rate:
        Share of campaign accounts the detector flags.
    overt_mean_lift, evasive_mean_lift:
        Mean I2I score of the targets against the ridden hot item.
    invisible_click_bound:
        The Zarankiewicz ceiling on the evasive campaign's fake edges.
    evasive_fake_edges:
        Fake edges the evasive campaign actually placed (must respect the
        bound on the target side).
    """

    overt_detection_rate: float
    evasive_detection_rate: float
    overt_mean_lift: float
    evasive_mean_lift: float
    invisible_click_bound: int
    evasive_fake_edges: int


def _mean_target_score(graph, hot_item, targets) -> float:
    scores = i2i_scores(graph, hot_item)
    if not targets:
        return 0.0
    return sum(scores.get(target, 0.0) for target in targets) / len(targets)


def evasion_economics(
    clean_graph,
    params: RICDParams,
    n_workers: int = 30,
    n_targets: int = 12,
    seed: int = 0,
) -> EvasionReport:
    """Quantify what ``K``-freeness costs the attacker.

    Injects, into two copies of ``clean_graph``, (a) an *overt* campaign
    (every worker clicks every target — the Eq. 3 optimum, detectable) and
    (b) the *invisible* campaign of :mod:`repro.datagen.evasion` with the
    same worker/target budget, then measures detection and I2I lift for
    both.
    """
    from ..datagen.attacks import AttackConfig, inject_attacks

    detector = RICDDetector(params=params, max_group_users=None)

    overt_graph = clean_graph.copy()
    overt_truth = inject_attacks(
        overt_graph,
        AttackConfig(
            n_groups=1,
            workers_per_group=(n_workers, n_workers),
            targets_per_group=(n_targets, n_targets),
            hot_items_per_group=(1, 1),
            target_clicks=(12, 13),
            density=1.0,
            sloppy_fraction=0.0,
            hijacked_user_fraction=0.0,
            worker_reuse_fraction=0.0,
            camouflage_items=(0, 0),
            organic_target_users=(0, 0),
            seed=seed,
        ),
    )
    overt_group = overt_truth.groups[0]
    overt_result = detector.detect(overt_graph)
    overt_rate = len(
        set(overt_group.workers) & overt_result.suspicious_users
    ) / len(overt_group.workers)
    overt_lift = _mean_target_score(
        overt_graph, overt_group.hot_items[0], overt_group.target_items
    )

    evasive_graph = clean_graph.copy()
    evasive_truth = inject_evasive_campaign(
        evasive_graph,
        EvasionConfig(
            params,
            n_workers=n_workers,
            n_targets=n_targets,
            hot_items=1,
            seed=seed + 1,
        ),
    )
    evasive_group = evasive_truth.groups[0]
    evasive_result = detector.detect(evasive_graph)
    evasive_rate = len(
        set(evasive_group.workers) & evasive_result.suspicious_users
    ) / len(evasive_group.workers)
    evasive_lift = (
        _mean_target_score(
            evasive_graph, evasive_group.hot_items[0], evasive_group.target_items
        )
        if evasive_group.hot_items
        else 0.0
    )
    target_edges = sum(
        1 for _u, item, _c in evasive_group.fake_edges if str(item).startswith("ev_t")
    )
    return EvasionReport(
        overt_detection_rate=overt_rate,
        evasive_detection_rate=evasive_rate,
        overt_mean_lift=overt_lift,
        evasive_mean_lift=evasive_lift,
        invisible_click_bound=undetected_campaign_bound(n_workers, n_targets, params),
        evasive_fake_edges=target_edges,
    )


@dataclass(frozen=True)
class SeedSummary:
    """Mean/min/max of a metric across seeds."""

    mean_precision: float
    mean_recall: float
    mean_f1: float
    min_f1: float
    max_f1: float
    n_seeds: int
    stdev_f1: float


def evaluate_across_seeds(
    detector_factory: Callable[[], Detector],
    scenario_factory: Callable[[int], Scenario],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedSummary:
    """Run ``detector_factory()`` on fresh scenarios for every seed.

    Returns aggregate exact-truth metrics; use to verify claims are not
    seed artefacts.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    rows: list[Metrics] = []
    for seed in seeds:
        scenario = scenario_factory(seed)
        result = detector_factory().detect(scenario.graph)
        rows.append(
            node_metrics(
                result.suspicious_users,
                result.suspicious_items,
                scenario.truth.abnormal_users,
                scenario.truth.abnormal_items,
            )
        )
    f1_values = [m.f1 for m in rows]
    mean_f1 = sum(f1_values) / len(f1_values)
    variance = sum((v - mean_f1) ** 2 for v in f1_values) / len(f1_values)
    return SeedSummary(
        mean_precision=sum(m.precision for m in rows) / len(rows),
        mean_recall=sum(m.recall for m in rows) / len(rows),
        mean_f1=mean_f1,
        min_f1=min(f1_values),
        max_f1=max(f1_values),
        n_seeds=len(seeds),
        stdev_f1=math.sqrt(variance),
    )
