"""Plain-text renderers for the reproduced tables and figures.

Everything the benchmark harness prints goes through these helpers so all
experiments share one visual format: fixed-width tables for the paper's
tables, aligned multi-series columns for its figures (a terminal-friendly
stand-in for line charts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import TraceReport

__all__ = [
    "format_float",
    "render_table",
    "render_series",
    "render_timeline",
    "render_trace",
]


def format_float(value: float | None, digits: int = 3) -> str:
    """Render a float (or ``None``) compactly for table cells.

    >>> format_float(0.8125)
    '0.812'
    >>> format_float(None)
    '-'
    >>> format_float(12.0, 1)
    '12.0'
    """
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width text table.

    Column widths auto-fit the content; numeric cells should be
    pre-formatted by the caller (e.g. with :func:`format_float`).

    >>> print(render_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    columns = len(headers)
    cells = [[str(cell) for cell in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but table has {columns} columns"
            )
    widths = [
        max(len(headers[index]), max((len(row[index]) for row in cells), default=0))
        for index in range(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Aligned columns for one figure: x values + one column per series.

    The terminal-friendly equivalent of the paper's line plots: each row
    is one x position, each named column one curve.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            if index < len(values):
                row.append(format_float(values[index], digits))
            else:
                row.append("-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_trace(report: "TraceReport", title: str | None = "trace") -> str:
    """Render a :class:`~repro.obs.TraceReport` in the experiments' table style.

    Three stacked tables — stage wall-clock, counters, gauges — so a
    ``--trace`` summary under an experiment report reads like the report
    itself.  Empty sections are omitted; an empty trace renders as a note.
    """
    sections: list[str] = []
    if report.spans:
        rows = [
            [path, format_float(stat.seconds * 1000, 1), stat.calls]
            for path, stat in sorted(report.spans.items())
        ]
        sections.append(render_table(["stage", "ms", "calls"], rows, title=title))
    if report.counters:
        rows = [[name, value] for name, value in sorted(report.counters.items())]
        sections.append(render_table(["counter", "value"], rows))
    if report.gauges:
        rows = [[name, value] for name, value in sorted(report.gauges.items())]
        sections.append(render_table(["gauge", "value"], rows))
    if not sections:
        return f"{title}: (empty)" if title else "(empty trace)"
    return "\n\n".join(sections)


def render_timeline(
    days: Sequence[int],
    series: Mapping[str, Sequence[float]],
    events: Mapping[int, str],
    title: str | None = None,
) -> str:
    """Fig. 10-style timeline: day rows, traffic columns, event markers."""
    headers = ["day", *series.keys(), "event"]
    rows = []
    for index, day in enumerate(days):
        row: list[object] = [day]
        for values in series.values():
            row.append(format_float(values[index], 1))
        row.append(events.get(day, ""))
        rows.append(row)
    return render_table(headers, rows, title=title)
