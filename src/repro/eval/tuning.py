"""Parameter tuning: grid search over the RICD parameter space.

The paper sets its parameters by expert judgement ("these parameters are
highly interpretable, we can quickly adjust [them] based on our
experience").  A platform adopting the framework with *some* labelled
incidents can do better: sweep the grid against those labels and pick the
configuration by F1 (or precision/recall, per the operating point).  The
Fig. 7 feedback loop then handles drift at run time.

:func:`grid_search` is deliberately exhaustive rather than clever — the
space is tiny (four or five interpretable knobs with a handful of sensible
values each) and exhaustive results double as a sensitivity map.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..config import RICDParams, ScreeningParams
from ..core.framework import RICDDetector
from ..datagen.scenario import Scenario
from .groundtruth import KnownLabels
from .harness import evaluate_detector
from .metrics import Metrics

__all__ = ["GridPoint", "TuningResult", "grid_search", "TUNABLE_FIELDS"]

#: RICDParams fields grid_search accepts.
TUNABLE_FIELDS = ("k1", "k2", "alpha", "t_hot", "t_click")

_OBJECTIVES = ("f1", "precision", "recall")


@dataclass(frozen=True)
class GridPoint:
    """One evaluated configuration."""

    params: RICDParams
    metrics: Metrics
    elapsed: float

    def objective_value(self, objective: str) -> float:
        """The scalar used for ranking."""
        return getattr(self.metrics, objective)


@dataclass
class TuningResult:
    """Outcome of a grid search.

    Attributes
    ----------
    best:
        The winning grid point (ties broken toward smaller ``k1 + k2`` —
        looser structural floors generalise better to unseen group sizes
        at equal measured quality — then deterministically by repr).
    points:
        Every evaluated point, in evaluation order.
    objective:
        The metric that was optimised.
    """

    best: GridPoint
    points: list[GridPoint] = field(default_factory=list)
    objective: str = "f1"

    @property
    def best_params(self) -> RICDParams:
        """The winning parameters."""
        return self.best.params

    def top(self, k: int) -> list[GridPoint]:
        """The ``k`` best points, ranked like ``best``."""
        return sorted(
            self.points,
            key=lambda point: (
                -point.objective_value(self.objective),
                point.params.k1 + point.params.k2,
                repr(point.params),
            ),
        )[:k]


def grid_search(
    scenario: Scenario,
    grid: Mapping[str, Sequence],
    base_params: RICDParams | None = None,
    screening: ScreeningParams | None = None,
    objective: str = "f1",
    known: KnownLabels | None = None,
) -> TuningResult:
    """Exhaustively evaluate every grid combination on ``scenario``.

    Parameters
    ----------
    scenario:
        The labelled environment (exact truth is used unless ``known`` is
        given, in which case the paper's partial-label metric is optimised
        — the realistic situation).
    grid:
        ``{field: values}`` over :data:`TUNABLE_FIELDS`; fields absent
        from the grid stay at ``base_params``.
    base_params:
        Defaults for non-swept fields.
    objective:
        ``"f1"`` (default), ``"precision"`` or ``"recall"``.

    Returns
    -------
    TuningResult
        All evaluated points plus the winner.

    Raises
    ------
    ValueError
        On an empty grid, unknown field or unknown objective.
    """
    if not grid:
        raise ValueError("grid must contain at least one field")
    unknown = set(grid) - set(TUNABLE_FIELDS)
    if unknown:
        raise ValueError(f"unknown grid fields: {sorted(unknown)}")
    if objective not in _OBJECTIVES:
        raise ValueError(f"objective must be one of {_OBJECTIVES}, got {objective!r}")
    base_params = base_params or RICDParams()
    screening = screening or ScreeningParams()

    fields = sorted(grid)
    points: list[GridPoint] = []
    for combination in itertools.product(*(grid[name] for name in fields)):
        changes = dict(zip(fields, combination))
        for int_field in ("k1", "k2"):
            if int_field in changes:
                changes[int_field] = int(changes[int_field])
        params = base_params.replace(**changes)
        run = evaluate_detector(
            RICDDetector(params=params, screening=screening), scenario, known
        )
        metrics = run.known if known is not None and run.known else run.exact
        points.append(GridPoint(params=params, metrics=metrics, elapsed=run.elapsed))

    best = min(
        points,
        key=lambda point: (
            -point.objective_value(objective),
            point.params.k1 + point.params.k2,
            repr(point.params),
        ),
    )
    return TuningResult(best=best, points=points, objective=objective)
