"""repro — reproduction of "Large-scale Fake Click Detection for E-commerce
Recommendation Systems" (ICDE 2021).

The package implements the RICD ("Ride Item's Coattails" Detection)
framework and everything around it:

* :mod:`repro.graph` — the weighted user-item bipartite click graph;
* :mod:`repro.datagen` — the synthetic marketplace + attack injector that
  substitutes for the proprietary Taobao click table;
* :mod:`repro.core` — thresholds, the I2I score model, Algorithm 1,
  Algorithm 3, screening, identification, and the assembled
  :class:`~repro.core.framework.RICDDetector`;
* :mod:`repro.baselines` — LPA, CN, Louvain, COPYCATCH, FRAUDAR, Naive and
  the "+UI" screening wrapper;
* :mod:`repro.recsys` — a working I2I recommender to demonstrate the
  attack and its cleanup end to end;
* :mod:`repro.eval` — metrics, the paper's partial-label protocol, the
  comparison harness and sensitivity sweeps;
* :mod:`repro.experiments` — one runnable module per paper table/figure.

Quickstart
----------
>>> from repro import RICDDetector, paper_scenario
>>> scenario = paper_scenario()
>>> result = RICDDetector().detect(scenario.graph)
>>> result.suspicious_users & scenario.truth.abnormal_users  # doctest: +SKIP
{...}
"""

from .config import DEFAULT_PARAMS, FeedbackPolicy, RICDParams, ScreeningParams
from .core import (
    DetectionResult,
    RICDDetector,
    SuspiciousGroup,
    naive_detect,
)
from .datagen import (
    AttackConfig,
    GroundTruth,
    MarketplaceConfig,
    Scenario,
    generate_scenario,
    paper_scenario,
    small_scenario,
    tiny_scenario,
)
from .errors import ReproError
from .graph import BipartiteGraph, read_click_table, write_click_table
from .recsys import I2IRecommender

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RICDDetector",
    "DetectionResult",
    "SuspiciousGroup",
    "naive_detect",
    "RICDParams",
    "ScreeningParams",
    "FeedbackPolicy",
    "DEFAULT_PARAMS",
    "BipartiteGraph",
    "read_click_table",
    "write_click_table",
    "MarketplaceConfig",
    "AttackConfig",
    "Scenario",
    "GroundTruth",
    "generate_scenario",
    "paper_scenario",
    "small_scenario",
    "tiny_scenario",
    "I2IRecommender",
    "ReproError",
]
