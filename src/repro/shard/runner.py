"""The shard orchestrator: per-shard RICD pipelines, globally merged.

Why partition-and-merge preserves RICD's semantics
--------------------------------------------------
Two facts carry the whole argument:

1. **Bicliques are component-local.**  An ``(alpha, k1, k2)``-extension
   biclique is a connected subgraph, so it lies entirely inside one
   connected component of the click graph.  Algorithm 3's pruning is
   equally local: CorePruning and SquarePruning conditions read only a
   vertex's (two-hop) neighbourhood, and removals cascade only along
   edges — a deletion in one component can never change a degree, a
   common-neighbour count, or therefore a pruning decision, in another.
   Because the pruning fixpoint is the unique maximal subgraph satisfying
   both lemmas (the conditions are monotone under taking supergraphs),
   pruning a shard that is a union of whole components yields exactly the
   restriction of the global fixpoint to that shard.  Screening is
   likewise group-local: it reads only group members' neighbourhoods and
   per-item click totals, and a shard subgraph induced on whole
   components preserves *every* incident edge, so those totals equal
   their full-graph values.

2. **Thresholds are global marketplace statistics.**  ``T_hot`` (Pareto
   rule) and ``T_click`` (Eq. 4) are derived from the *whole* graph's
   click distribution — Section IV calls them properties of the
   marketplace, not of any subgraph.  A shard containing only cold items
   would derive a wildly lower local ``T_hot`` and misclassify its items,
   so the orchestrator resolves both thresholds on the unpartitioned
   graph *once* and passes the resolved values into every shard; shards
   never recompute them (pinned by the threshold-globality tests in
   ``tests/shard/``).

Together: running extraction + screening per shard with globally resolved
thresholds produces exactly the union of the unsharded pipeline's groups.
The merge is therefore a deterministic re-ordering — groups are sorted by
canonical key (size-descending, then sorted user/item ids) so the output
is byte-stable regardless of shard count, shard order, or whether shards
ran serially or across the process pool.  The Fig. 7 feedback loop stays
at the orchestrator: output-size expectations are global, so each
relaxation round re-runs *all* shards with the relaxed parameters, which
is precisely what the unsharded loop does to the whole graph.

Identification (risk scoring) also stays global, computed on the full
graph — equivalent by the same locality argument (a user's neighbours
all live in their own component), but keeping it in the parent makes the
equivalence true by construction rather than by proof.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from .. import obs
from .._util import Stopwatch
from ..core.groups import DetectionResult, SuspiciousGroup
from ..core.identification import adjust_parameters, assemble_result, output_size
from ..errors import FeedbackExhaustedError
from ..graph.bipartite import BipartiteGraph
from ..graph.builders import seed_expansion
from .partition import partition_graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import RICDParams, ScreeningParams
    from ..core.framework import RICDDetector

__all__ = ["detect_sharded", "merge_groups", "group_sort_key"]

Node = Hashable


def group_sort_key(group: SuspiciousGroup) -> tuple:
    """Total order over groups: size-descending, then sorted member ids.

    A *total* order (unlike the screening module's size/min-user key) is
    what makes the merged list independent of shard count and arrival
    order — two distinct groups can never compare equal.
    """
    return (
        -group.size,
        tuple(sorted(str(user) for user in group.users)),
        tuple(sorted(str(item) for item in group.items)),
        tuple(sorted(str(item) for item in group.hot_items)),
    )


def merge_groups(per_shard: Iterable[list[SuspiciousGroup]]) -> list[SuspiciousGroup]:
    """Fold per-shard group lists into one canonically ordered list.

    Groups from different shards live in disjoint components, so this is
    a pure concatenation + deterministic sort — no deduplication or
    conflict resolution is ever needed (and none is attempted: a
    duplicate here would mean the partitioner cut a component, which the
    tests treat as a hard bug, not something to paper over).
    """
    merged = [group for groups in per_shard for group in groups]
    merged.sort(key=group_sort_key)
    return merged


def _run_shards(
    detector: "RICDDetector",
    shard_graphs: list[BipartiteGraph],
    params: "RICDParams",
    screening: "ScreeningParams",
    timer: Stopwatch,
) -> list[SuspiciousGroup]:
    """One round of modules 1 + 2 over every shard, merged.

    ``shard_jobs > 1`` fans shards out over the evaluation harness's
    process pool (each worker ships its trace back under ``shard.<i>``,
    merged like the suite workers' traces); otherwise shards run in-line,
    sharing the caller's stopwatch so per-phase timings accumulate
    exactly as the unsharded path records them.
    """
    if detector.shard_jobs > 1 and len(shard_graphs) > 1:
        from ..eval.parallel import run_shards_parallel

        with timer.measure("detection"):
            per_shard = run_shards_parallel(
                detector, shard_graphs, params, screening, detector.shard_jobs
            )
    else:
        per_shard = []
        for index, shard_graph in enumerate(shard_graphs):
            with obs.span(f"shard.{index}"):
                per_shard.append(
                    detector._run_modules(shard_graph, params, screening, timer)
                )
    return merge_groups(per_shard)


def detect_sharded(
    detector: "RICDDetector",
    graph: BipartiteGraph,
    seed_users: Sequence[Node] = (),
    seed_items: Sequence[Node] = (),
) -> DetectionResult:
    """Run ``detector``'s full pipeline sharded over ``detector.shards``.

    Mirrors :meth:`RICDDetector._detect` step for step — global threshold
    resolution, optional seed expansion, modules 1 + 2 (per shard), the
    Fig. 7 feedback loop (orchestrator-level, all shards per round), and
    full-graph identification — so the output is identical to the
    unsharded path by the locality argument in the module docstring.
    ``detector.shards = 1`` is valid and exercises the partition + merge
    machinery on a single shard (the metamorphic suite's base case).
    """
    timer = Stopwatch()
    with obs.span("thresholds"):
        # Resolved on the UNPARTITIONED graph: T_hot / T_click are global
        # marketplace statistics (Section IV) and must not drift per shard.
        params = detector.resolve_thresholds(graph)

    with timer.measure("detection"):
        if seed_users or seed_items:
            with obs.span("seed_expansion"):
                working = seed_expansion(graph, seed_users, seed_items, hops=2)
        else:
            working = graph
        with obs.span("partition"):
            plan = partition_graph(working, detector.shards)
            shard_graphs = plan.subgraphs(working)
        obs.gauge("shard.effective", len(plan))

    screened = _run_shards(detector, shard_graphs, params, detector.screening, timer)
    rounds = 0

    if detector.feedback is not None:
        screening = detector.screening
        best = screened
        while (
            output_size(screened) < detector.feedback.expectation
            and rounds < detector.feedback.max_rounds
        ):
            params, screening = adjust_parameters(
                params, screening, detector.feedback
            )
            rounds += 1
            screened = _run_shards(detector, shard_graphs, params, screening, timer)
            if output_size(screened) > output_size(best):
                best = screened
        if output_size(screened) < detector.feedback.expectation:
            if detector.strict_feedback:
                raise FeedbackExhaustedError(
                    rounds, output_size(screened), detector.feedback.expectation
                )
            screened = best
        obs.count("detect.feedback_rounds", rounds)

    with timer.measure("identification"), obs.span("identification"):
        result = assemble_result(graph, screened)
    result.timings = dict(timer.durations)
    result.feedback_rounds = rounds
    return result
