"""The shard orchestrator: per-shard RICD pipelines, globally merged.

Why partition-and-merge preserves RICD's semantics
--------------------------------------------------
Two facts carry the whole argument:

1. **Bicliques are component-local.**  An ``(alpha, k1, k2)``-extension
   biclique is a connected subgraph, so it lies entirely inside one
   connected component of the click graph.  Algorithm 3's pruning is
   equally local: CorePruning and SquarePruning conditions read only a
   vertex's (two-hop) neighbourhood, and removals cascade only along
   edges — a deletion in one component can never change a degree, a
   common-neighbour count, or therefore a pruning decision, in another.
   Because the pruning fixpoint is the unique maximal subgraph satisfying
   both lemmas (the conditions are monotone under taking supergraphs),
   pruning a shard that is a union of whole components yields exactly the
   restriction of the global fixpoint to that shard.  Screening is
   likewise group-local: it reads only group members' neighbourhoods and
   per-item click totals, and a shard subgraph induced on whole
   components preserves *every* incident edge, so those totals equal
   their full-graph values.

2. **Thresholds are global marketplace statistics.**  ``T_hot`` (Pareto
   rule) and ``T_click`` (Eq. 4) are derived from the *whole* graph's
   click distribution — Section IV calls them properties of the
   marketplace, not of any subgraph.  A shard containing only cold items
   would derive a wildly lower local ``T_hot`` and misclassify its items,
   so the orchestrator resolves both thresholds on the unpartitioned
   graph *once* and passes the resolved values into every shard; shards
   never recompute them (pinned by the threshold-globality tests in
   ``tests/shard/``).

Together: running extraction + screening per shard with globally resolved
thresholds produces exactly the union of the unsharded pipeline's groups.
The merge is therefore a deterministic re-ordering — groups are sorted by
canonical key (size-descending, then sorted user/item ids) so the output
is byte-stable regardless of shard count, shard order, or whether shards
ran serially or across the process pool.  The Fig. 7 feedback loop stays
at the orchestrator: output-size expectations are global, so each
relaxation round re-runs *all* shards with the relaxed parameters, which
is precisely what the unsharded loop does to the whole graph.

Identification (risk scoring) also stays global, computed on the full
graph — equivalent by the same locality argument (a user's neighbours
all live in their own component), but keeping it in the parent makes the
equivalence true by construction rather than by proof.

Since the pipeline refactor this module no longer *implements* that
orchestration: the sequencing, the feedback loop and the per-shard
fan-out live in :mod:`repro.pipeline` (see
:class:`~repro.pipeline.execution.ShardedExecution`), the one place the
single-graph path uses too.  :func:`detect_sharded` just builds the
detector's plan with the sharded strategy forced on; the canonical merge
order is re-exported here for compatibility (the metamorphic suite and
external callers import it from this module).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

from ..pipeline.execution import group_sort_key, merge_groups

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.framework import RICDDetector
    from ..core.groups import DetectionResult
    from ..graph.bipartite import BipartiteGraph

__all__ = ["detect_sharded", "merge_groups", "group_sort_key"]

Node = Hashable


def detect_sharded(
    detector: "RICDDetector",
    graph: "BipartiteGraph",
    seed_users: Sequence[Node] = (),
    seed_items: Sequence[Node] = (),
) -> "DetectionResult":
    """Run ``detector``'s full pipeline sharded over ``detector.shards``.

    Builds the same :class:`~repro.pipeline.runner.DetectionPipeline` as
    :meth:`RICDDetector.detect` with the sharded execution strategy
    forced on — global threshold resolution, optional seed expansion,
    modules 1 + 2 per shard, the Fig. 7 feedback loop (orchestrator
    level, all shards per round), and full-graph identification — so the
    output is identical to the unsharded path by the locality argument in
    the module docstring.  ``detector.shards = 1`` is valid and exercises
    the partition + merge machinery on a single shard (the metamorphic
    suite's base case).
    """
    return detector.build_pipeline(sharded=True).run(
        graph,
        detector.params,
        detector.screening,
        tuple(seed_users),
        tuple(seed_items),
    )
