"""Component-sharded detection: partition the click graph, detect per shard.

``(alpha, k1, k2)``-extension bicliques are connected subgraphs, so they
can never span two connected components of the user-item click graph.
That makes partition-and-merge a *semantics-preserving* scaling layer for
the RICD pipeline: split the graph into shards that are unions of whole
components, run the full extraction → screening pipeline per shard with
**globally** resolved thresholds, and merge the per-shard groups.  The
formal argument lives in :mod:`repro.shard.runner`'s docstring; the
metamorphic test suite in ``tests/shard/`` pins it.

Public surface:

* :func:`repro.shard.partition.partition_graph` — component discovery plus
  greedy balanced bin-packing into a :class:`~repro.shard.partition.ShardPlan`;
* :func:`repro.shard.runner.detect_sharded` — the orchestrator
  :class:`~repro.core.framework.RICDDetector` delegates to when
  ``shards > 1`` (also reachable via ``ricd detect --shards N``);
* :class:`repro.shard.regions.RegionalStores` — the same
  global-thresholds + canonical-merge contract extended to one
  persistent :class:`~repro.store.DetectionStore` per region.
"""

from .partition import ShardPlan, graph_components, partition_graph
from .regions import RegionalStores, RegionReport, detect_regions
from .runner import detect_sharded, merge_groups

__all__ = [
    "ShardPlan",
    "graph_components",
    "partition_graph",
    "detect_sharded",
    "merge_groups",
    "RegionalStores",
    "RegionReport",
    "detect_regions",
]
