"""Multi-region detection over one persistent store per region.

Production marketplaces run regional deployments: each region ingests its
own click traffic and keeps its own durable state, but fake-click
thresholds are *marketplace* statistics — Section IV derives ``T_hot``
(Pareto rule) and ``T_click`` (Eq. 4) from the global click distribution,
and a cold region resolving them locally would misclassify its items
(the exact failure mode the shard layer's threshold-globality tests pin).
This module extends that contract from shards to stores:

* **one :class:`~repro.store.DetectionStore` per region** under a common
  root (``<root>/<region>/``), each with its own version history, warm
  resume and crash-safety guarantees;
* **global thresholds** — resolved once over the union of all region
  graphs, then pinned (as explicit ``t_hot``/``t_click``) into every
  region's detector, and persisted into every region's store so a
  region resumed in isolation still detects with marketplace-level
  thresholds;
* **canonical merge** — per-region groups fold through the shard
  layer's :func:`~repro.pipeline.execution.merge_groups` total order,
  so the merged result is byte-stable regardless of region count or
  iteration order.

The locality argument from :mod:`repro.shard.runner` carries over
unchanged *when regions partition the click graph component-wise* —
which regional deployments satisfy by construction (a user clicks in
their region).  Node ids shared across regions are merged
conservatively: suspicious anywhere means suspicious globally, and a
score is the maximum over regions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from .. import obs
from ..core.framework import RICDDetector
from ..core.groups import DetectionResult
from ..errors import StoreError
from ..graph.bipartite import BipartiteGraph
from ..pipeline.execution import merge_groups
from ..store import DetectionStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import RICDParams, ScreeningParams

__all__ = ["RegionalStores", "RegionReport", "detect_regions"]


@dataclass(frozen=True)
class RegionReport:
    """What one region contributed to a regional detection round."""

    region: str
    store_version: "int | None"
    users: int
    items: int
    edges: int
    groups: int
    suspicious_users: int
    suspicious_items: int


def _merge_results(per_region: "Mapping[str, DetectionResult]") -> DetectionResult:
    """Fold per-region results into one canonical global result.

    Groups merge through the shard layer's total order; suspicious sets
    union; a node scored in several regions keeps its maximum risk.
    Degradation provenance is namespaced ``<region>:<event>`` so a
    degraded region stays attributable in the merged result.
    """
    merged = DetectionResult(
        groups=merge_groups(result.groups for result in per_region.values())
    )
    for region in sorted(per_region):
        result = per_region[region]
        merged.suspicious_users |= result.suspicious_users
        merged.suspicious_items |= result.suspicious_items
        for node, score in result.user_scores.items():
            merged.user_scores[node] = max(merged.user_scores.get(node, 0.0), score)
        for node, score in result.item_scores.items():
            merged.item_scores[node] = max(merged.item_scores.get(node, 0.0), score)
        for phase, seconds in result.timings.items():
            merged.timings[phase] = merged.timings.get(phase, 0.0) + seconds
        merged.feedback_rounds = max(merged.feedback_rounds, result.feedback_rounds)
        if result.degraded:
            merged.degraded = True
        merged.degradations += tuple(
            f"{region}:{event}" for event in result.degradations
        )
        if result.stale:
            merged.stale = True
    return merged


def detect_regions(
    region_graphs: "Mapping[str, BipartiteGraph]",
    params: "RICDParams | None" = None,
    screening: "ScreeningParams | None" = None,
    engine: str = "auto",
    max_group_users: int | None = 18,
) -> "tuple[DetectionResult, dict[str, DetectionResult]]":
    """Detect over each region with *globally* resolved thresholds.

    Resolves ``T_hot``/``T_click`` once on the union of all region
    graphs, pins them into each region's detector, and returns the
    canonical merge plus the per-region results (for persistence).
    """
    if not region_graphs:
        raise StoreError("detect_regions needs at least one region graph")
    probe = RICDDetector(
        params=params, screening=screening, engine=engine, max_group_users=max_group_users
    )
    union = BipartiteGraph()
    for graph in region_graphs.values():
        for user, item, clicks in graph.edges():
            union.add_click(user, item, clicks)
    resolved = probe.resolve_thresholds(union)
    pinned = replace(probe.params, t_hot=resolved.t_hot, t_click=resolved.t_click)
    per_region: dict[str, DetectionResult] = {}
    for region in sorted(region_graphs):
        detector = RICDDetector(
            params=pinned,
            screening=screening,
            engine=engine,
            max_group_users=max_group_users,
        )
        with obs.span(f"region.{region}"):
            per_region[region] = detector.detect(region_graphs[region])
    return _merge_results(per_region), per_region


class RegionalStores:
    """One detection store per region under a shared root directory.

    Layout::

        <root>/
            eu/   <- a full DetectionStore (catalog.json, snapshots/, ...)
            na/
            apac/

    Regions are discovered from existing store directories on open and
    created lazily by :meth:`ingest`.  :meth:`checkpoint` runs the
    global-threshold regional detection and commits one new version per
    region atomically (each region's store keeps its own crash-safety
    contract); the merged result is recomputed from region heads by
    :meth:`merged_result`, so a restarted process serves the same global
    verdict without re-detecting.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self._stores: dict[str, DetectionStore] = {}
        if self.root.exists():
            for child in sorted(self.root.iterdir()):
                if (child / "catalog.json").is_file():
                    self._stores[child.name] = DetectionStore.open(child)

    @classmethod
    def open_or_create(cls, root: "str | Path") -> "RegionalStores":
        """Open the layout, creating the root directory if missing."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        return cls(root)

    def regions(self) -> "tuple[str, ...]":
        """Known region names, sorted."""
        return tuple(sorted(self._stores))

    def region_store(self, region: str) -> DetectionStore:
        """The region's store, created empty on first use."""
        if not region or "/" in region or region.startswith("."):
            raise StoreError(f"invalid region name {region!r}")
        if region not in self._stores:
            self._stores[region] = DetectionStore.open_or_create(self.root / region)
        return self._stores[region]

    def ingest(
        self, region: str, records: "Iterable[tuple[object, object, int]]"
    ) -> int:
        """Apply click records to one region and commit a new version.

        An empty region store bootstraps with a snapshot; a populated one
        commits the records as a delta on its head.  Returns the region's
        new store version.
        """
        store = self.region_store(region)
        records = [(str(user), str(item), int(clicks)) for user, item, clicks in records]
        if store.head is None:
            graph = BipartiteGraph()
            for user, item, clicks in records:
                graph.add_click(user, item, clicks)
            store.begin_version()
            store.put_snapshot(graph.indexed())
            return store.commit()
        store.begin_version()
        store.put_delta(records)
        return store.commit()

    def load_graphs(self) -> "dict[str, BipartiteGraph]":
        """Every region's head graph (empty regions load as empty graphs).

        Each graph loads lazily over its region's array snapshot, so a
        multi-region resume is O(regions), not O(edges): the union pass
        (``detect_regions``/``checkpoint``) streams ``edges()`` straight
        from the backing CSR without ever materializing dict adjacency.
        """
        graphs: dict[str, BipartiteGraph] = {}
        for region in self.regions():
            store = self._stores[region]
            graphs[region] = (
                store.load_graph() if store.head is not None else BipartiteGraph()
            )
        return graphs

    def checkpoint(
        self,
        params: "RICDParams | None" = None,
        screening: "ScreeningParams | None" = None,
        engine: str = "auto",
        max_group_users: int | None = 18,
    ) -> "tuple[DetectionResult, list[RegionReport]]":
        """Detect with global thresholds and persist per-region results.

        Each region commits one version carrying its detection result and
        the *globally* resolved thresholds (so the store records the
        thresholds the result was actually produced under).  Returns the
        canonically merged result and one report per region.
        """
        graphs = self.load_graphs()
        if not graphs:
            raise StoreError("no regions to checkpoint; ingest into one first")
        merged, per_region = detect_regions(
            graphs,
            params=params,
            screening=screening,
            engine=engine,
            max_group_users=max_group_users,
        )
        probe = RICDDetector(
            params=params,
            screening=screening,
            engine=engine,
            max_group_users=max_group_users,
        )
        union = BipartiteGraph()
        for graph in graphs.values():
            for user, item, clicks in graph.edges():
                union.add_click(user, item, clicks)
        resolved = probe.resolve_thresholds(union)
        pinned = replace(probe.params, t_hot=resolved.t_hot, t_click=resolved.t_click)
        reports: list[RegionReport] = []
        for region in self.regions():
            store = self._stores[region]
            graph = graphs[region]
            result = per_region[region]
            store.begin_version()
            store.put_snapshot(graph.indexed())
            store.put_thresholds(pinned, resolved, probe.screening)
            store.put_result(result)
            version = store.commit()
            reports.append(
                RegionReport(
                    region=region,
                    store_version=version,
                    users=graph.num_users,
                    items=graph.num_items,
                    edges=graph.num_edges,
                    groups=len(result.groups),
                    suspicious_users=len(result.suspicious_users),
                    suspicious_items=len(result.suspicious_items),
                )
            )
        return merged, reports

    def merged_result(self) -> DetectionResult:
        """The canonical global result from each region's persisted head.

        Pure store reads — no detection runs — so a restarted process
        reconstructs the same merged verdict the last :meth:`checkpoint`
        produced.  Regions whose head carries no result contribute
        nothing (they have not been checkpointed yet).
        """
        per_region: dict[str, DetectionResult] = {}
        for region in self.regions():
            store = self._stores[region]
            if store.head is None:
                continue
            result = store.load_result()
            if result is not None:
                per_region[region] = result
        return _merge_results(per_region) if per_region else DetectionResult()

    def __repr__(self) -> str:
        heads = {region: self._stores[region].head for region in self.regions()}
        return f"RegionalStores(root={str(self.root)!r}, heads={heads})"
