"""Connected-component discovery and balanced shard planning.

The partitioner never cuts an edge: a shard is always a union of *whole*
connected components of the bipartite click graph.  That is the invariant
the sharded pipeline's correctness rests on (see
:mod:`repro.shard.runner`), so "smarter" partitioners — hash-by-user,
METIS-style edge cuts — are deliberately out of scope: the adversarial
tests in ``tests/shard/`` construct attack groups that any node-level
split would cut in half.

Component discovery rides the :class:`~repro.graph.indexed.IndexedGraph`
snapshot when scipy is available (one ``csgraph.connected_components``
call over the block adjacency, memoized with the snapshot) and falls back
to the pure-dict BFS of :func:`repro.graph.views.connected_components`
otherwise — both produce the same partition of the node set.

Balancing is greedy bin-packing by component *edge count* (the quantity
that tracks extraction cost): components are placed largest-first into
the currently lightest shard.  A **mega component** — one holding at
least the per-shard edge target — can never be balanced without cutting
edges, so the fallback is to keep it whole: it seeds its own shard and
the remaining components pack around it.  The plan therefore degrades
gracefully on a single giant component (one heavy shard, no semantic
drift) instead of silently breaking detection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

from .. import obs
from ..graph.bipartite import BipartiteGraph
from ..graph.indexed import snapshot_or_none
from ..graph.views import connected_components

try:  # scipy is an optional accelerator, exactly as in the sparse engine
    from scipy import sparse
    from scipy.sparse import csgraph
except ImportError:  # pragma: no cover - exercised only without scipy
    sparse = None
    csgraph = None

__all__ = ["Component", "ShardPlan", "graph_components", "partition_graph"]

Node = Hashable


@dataclass(frozen=True)
class Component:
    """One connected component of the click graph, with its edge weight."""

    users: frozenset
    items: frozenset
    edges: int

    @property
    def nodes(self) -> int:
        """Total node count across both partitions."""
        return len(self.users) + len(self.items)

    def sort_key(self) -> tuple:
        """Canonical largest-first ordering (edges, nodes, smallest id)."""
        smallest = min(
            (str(node) for node in self.users | self.items), default=""
        )
        return (-self.edges, -self.nodes, smallest)


def _components_csgraph(graph: BipartiteGraph) -> "list[Component] | None":
    """Vectorized component labels via ``csgraph`` on the CSR snapshot.

    Returns ``None`` when numpy/scipy are unavailable, sending the caller
    to the dict BFS path.
    """
    if sparse is None:
        return None
    snapshot = snapshot_or_none(graph)
    if snapshot is None:
        return None
    import numpy as np

    n_users, n_items = snapshot.num_users, snapshot.num_items
    if n_users + n_items == 0:
        return []
    biadjacency = snapshot.biadjacency()
    # Square block adjacency over users (rows 0..U-1) then items.
    adjacency = sparse.bmat(
        [[None, biadjacency], [biadjacency.T, None]], format="csr"
    )
    _, labels = csgraph.connected_components(adjacency, directed=False)
    user_labels = labels[:n_users]
    item_labels = labels[n_users:]
    edge_counts = np.bincount(
        user_labels[snapshot.user_idx], minlength=int(labels.max()) + 1
    )
    users_by_label: dict[int, set] = {}
    for row, label in enumerate(user_labels):
        users_by_label.setdefault(int(label), set()).add(snapshot.users[row])
    items_by_label: dict[int, set] = {}
    for column, label in enumerate(item_labels):
        items_by_label.setdefault(int(label), set()).add(snapshot.items[column])
    return [
        Component(
            users=frozenset(users_by_label.get(label, ())),
            items=frozenset(items_by_label.get(label, ())),
            edges=int(edge_counts[label]) if label < len(edge_counts) else 0,
        )
        for label in sorted(set(users_by_label) | set(items_by_label))
    ]


def graph_components(graph: BipartiteGraph) -> list[Component]:
    """Connected components with edge counts, in canonical order.

    Canonical order is largest-first by edge count, then node count, then
    smallest node id — the deterministic input the greedy packer needs so
    plans are identical run to run and across the csgraph/BFS paths.
    """
    components = _components_csgraph(graph)
    if components is None:
        components = [
            Component(
                users=frozenset(users),
                items=frozenset(items),
                edges=sum(graph.user_degree(user) for user in users),
            )
            for users, items in connected_components(graph)
        ]
    components.sort(key=Component.sort_key)
    return components


@dataclass
class ShardPlan:
    """An edge-balanced assignment of whole components to shards.

    Attributes
    ----------
    shards:
        Per-shard component lists (never empty lists: shards that would
        receive no component are dropped, so ``len(plan)`` may be below
        the requested count on component-poor graphs).
    requested:
        The shard count the caller asked for.
    mega_components:
        Indices (into the concatenated component order) of components at
        or above the per-shard edge target — the ones the balancer kept
        whole instead of attempting to split.
    """

    shards: list[list[Component]] = field(default_factory=list)
    requested: int = 1
    mega_components: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.shards)

    def shard_edges(self, index: int) -> int:
        """Total edge count assigned to shard ``index``."""
        return sum(component.edges for component in self.shards[index])

    def shard_users(self, index: int) -> set:
        """Union of user sets assigned to shard ``index``."""
        users: set = set()
        for component in self.shards[index]:
            users |= component.users
        return users

    def shard_items(self, index: int) -> set:
        """Union of item sets assigned to shard ``index``."""
        items: set = set()
        for component in self.shards[index]:
            items |= component.items
        return items

    def subgraph(self, graph: BipartiteGraph, index: int) -> BipartiteGraph:
        """The induced subgraph of shard ``index``.

        Because every shard is a union of whole components, the subgraph
        retains *all* edges incident to its nodes: per-node degrees and
        click totals are identical to their full-graph values.
        """
        return graph.subgraph(self.shard_users(index), self.shard_items(index))

    def subgraphs(self, graph: BipartiteGraph) -> list[BipartiteGraph]:
        """All shard subgraphs, in shard order."""
        return [self.subgraph(graph, index) for index in range(len(self.shards))]

    def __repr__(self) -> str:
        sizes = [self.shard_edges(index) for index in range(len(self.shards))]
        return (
            f"ShardPlan(shards={len(self.shards)}, requested={self.requested}, "
            f"edges={sizes}, mega={len(self.mega_components)})"
        )


def partition_graph(graph: BipartiteGraph, shards: int) -> ShardPlan:
    """Pack ``graph``'s components into at most ``shards`` balanced shards.

    Greedy largest-first bin-packing by edge count: each component goes to
    the currently lightest shard (ties to the lowest shard index), which
    is the classic 4/3-approximation to balanced partitioning — ample,
    since balance only affects wall-clock, never detection output.
    Components holding at least the per-shard edge target are recorded in
    :attr:`ShardPlan.mega_components`; they are kept whole (one of them
    effectively owns a shard) rather than split, because splitting a
    component would break the biclique-locality invariant the sharded
    pipeline's correctness proof rests on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    components = graph_components(graph)
    total_edges = sum(component.edges for component in components)
    # The balance target; every component at or above it is "mega" and
    # cannot be balanced without an edge cut we refuse to make.
    target = max(1, math.ceil(total_edges / shards))
    plan = ShardPlan(requested=shards)
    n_bins = min(shards, max(1, len(components)))
    loads = [0] * n_bins
    contents: list[list[Component]] = [[] for _ in range(n_bins)]
    for index, component in enumerate(components):
        if component.edges >= target:
            plan.mega_components.append(index)
        lightest = min(range(len(loads)), key=lambda b: (loads[b], b))
        loads[lightest] += component.edges
        contents[lightest].append(component)
    plan.shards = [bucket for bucket in contents if bucket]
    if not plan.shards:  # empty graph: keep one (empty) shard for shape
        plan.shards = [[]]
    obs.gauge("shard.requested", shards)
    obs.gauge("shard.planned", len(plan.shards))
    obs.count("shard.components", len(components))
    obs.count("shard.mega_components", len(plan.mega_components))
    return plan
