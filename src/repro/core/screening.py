"""The suspicious-group screening module (Section V-B, Figs. 5-6).

The extraction module hands over *structurally* dense groups; this module
filters them *behaviourally*, in the two steps the paper prescribes:

**User behaviour check** (Fig. 5).  A genuine crowd worker (Section IV-A
conclusions, in order of significance):

1. clicks some ordinary item at least ``T_click`` times (the Eq. 3 optimum
   concentrates the budget on targets);
2. clicks hot items "extremely small" amounts — average below 4.

Group members failing either test — organic heavy users, flash-sale cohort
members, hijacked accounts' pre-existing personas — are removed from the
group.  Items are deliberately *not* removed in this step: the paper's
Fig. 5 walkthrough notes that an item cleared by one user's behaviour may
still be attacked by the remaining users.

**Item behaviour verification** (Fig. 6).  Among the group's ordinary
items, *target candidates* are those heavily clicked (>= ``T_click``) by
enough surviving users.  Candidates are then cross-checked for
*coincidence*: genuine co-targets of one attack share their clicker sets,
so a candidate must overlap (Jaccard) with another candidate's clicker set.
Items failing candidacy are disguise (camouflage edges, ridden hot items)
and leave the group; hot items are remembered in ``group.hot_items`` for
reporting.

After both steps the surviving targets are re-grouped by *coincidence
clustering* (union-find over Jaccard-overlapping heavy-clicker sets):
distinct attacks that were glued into one component by a shared hot item
— or by a professional worker serving several sellers — separate again,
because their clicker sets barely overlap.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from .. import obs
from ..config import ScreeningParams
from ..errors import ScreeningError
from ..graph.bipartite import BipartiteGraph
from ..graph.indexed import snapshot_or_none
from .groups import SuspiciousGroup

__all__ = [
    "user_behavior_check",
    "item_behavior_verification",
    "screen_groups",
    "collect_fake_edges",
]

Node = Hashable


def _split_items(
    graph: BipartiteGraph, items: Iterable[Node], t_hot: float
) -> tuple[set[Node], set[Node]]:
    """Split ``items`` into (hot, ordinary) by full-graph click volume.

    Screening calls this once per group per feedback round; against the
    memoized :class:`IndexedGraph` snapshot each lookup is one cached-array
    read instead of summing the item's neighbour dict from scratch.
    """
    hot: set[Node] = set()
    ordinary: set[Node] = set()
    snapshot = snapshot_or_none(graph)
    if snapshot is not None:
        totals = snapshot.item_total_clicks()
        item_index = snapshot.item_index
        for item in items:
            column = item_index.get(item)
            if column is None:
                continue
            if totals[column] >= t_hot:
                hot.add(item)
            else:
                ordinary.add(item)
        return hot, ordinary
    for item in items:
        if not graph.has_item(item):
            continue
        if graph.item_total_clicks(item) >= t_hot:
            hot.add(item)
        else:
            ordinary.add(item)
    return hot, ordinary


def user_behavior_check(
    graph: BipartiteGraph,
    group: SuspiciousGroup,
    t_hot: float,
    t_click: float,
    params: ScreeningParams,
) -> SuspiciousGroup:
    """Fig. 5: keep only users whose click pattern matches a crowd worker.

    A user survives iff, *within the group's items*:

    * at least one ordinary item received >= ``t_click`` clicks from them, and
    * their average clicks on the group's hot items stay below
      ``params.hot_click_cap`` (vacuously true with no hot clicks).

    Returns a new group (``hot_items`` populated); the input is untouched.
    """
    if t_click <= 0 or t_hot <= 0:
        raise ScreeningError("t_click and t_hot must be positive")
    hot, ordinary = _split_items(graph, group.items, t_hot)
    kept_users: set[Node] = set()
    for user in group.users:
        if not graph.has_user(user):
            continue
        neighbors = graph.user_neighbors(user)
        heavy_ordinary = any(
            neighbors.get(item, 0) >= t_click for item in ordinary
        )
        if not heavy_ordinary:
            continue
        hot_clicks = [neighbors[item] for item in hot if item in neighbors]
        if hot_clicks and sum(hot_clicks) / len(hot_clicks) >= params.hot_click_cap:
            continue
        kept_users.add(user)
    obs.count("screen.user_check.users_in", len(group.users))
    obs.count("screen.user_check.users_kept", len(kept_users))
    return SuspiciousGroup(users=kept_users, items=set(ordinary) | hot, hot_items=hot)


def _jaccard(a: set[Node], b: set[Node]) -> float:
    """Jaccard similarity of two sets; 0.0 when both are empty."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def item_behavior_verification(
    graph: BipartiteGraph,
    group: SuspiciousGroup,
    t_hot: float,
    t_click: float,
    params: ScreeningParams,
) -> list[SuspiciousGroup]:
    """Fig. 6: keep items showing the target signature, split into final groups.

    Candidate targets are ordinary items clicked >= ``t_click`` times by at
    least ``params.min_users`` of the group's users; candidates must then
    share at least ``params.min_overlap`` Jaccard of their heavy-clicker
    sets with some other candidate (co-targets of one attack are clicked by
    the same workers).  Everything else — hot items, camouflage items,
    organically co-clicked items — is removed from the group.

    Verified targets are clustered by that same coincidence relation
    (union-find) and each cluster plus its heavy clickers, filtered by the
    group-size floors, becomes one final attack group.
    """
    hot, ordinary = _split_items(graph, group.items, t_hot)

    heavy_clickers: dict[Node, set[Node]] = {}
    for item in ordinary:
        clickers = {
            user
            for user, clicks in graph.item_neighbors(item).items()
            if user in group.users and clicks >= t_click
        }
        if len(clickers) >= params.min_users:
            heavy_clickers[item] = clickers

    # Coincidence clustering (the Fig. 6 "coincidence degree" check):
    # union-find over candidates, joining items whose heavy-clicker sets
    # overlap.  Items with no partner are disguise/organic and drop out.
    # Clustering — rather than raw connectivity — keeps two attacks
    # separate even when a professional worker serves both: cross-attack
    # clicker sets overlap far below ``min_overlap``.
    candidates = sorted(heavy_clickers, key=str)
    parent: dict[Node, Node] = {item: item for item in candidates}

    def find(node: Node) -> Node:
        """Union-find root with path compression."""
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    verified: set[Node] = set()
    for index, item in enumerate(candidates):
        for other in candidates[index + 1 :]:
            if _jaccard(heavy_clickers[item], heavy_clickers[other]) >= params.min_overlap:
                verified.add(item)
                verified.add(other)
                root_a, root_b = find(item), find(other)
                if root_a != root_b:
                    parent[root_b] = root_a

    obs.count("screen.item_verify.candidates", len(candidates))
    obs.count("screen.item_verify.verified", len(verified))
    if not verified:
        return []

    clusters: dict[Node, SuspiciousGroup] = {}
    for item in verified:
        cluster = clusters.setdefault(find(item), SuspiciousGroup())
        cluster.items.add(item)
        cluster.users |= heavy_clickers[item]
    # Attribute to each final group the hot items it *rode*: a ridden hot
    # item is co-clicked by (most of) the whole group, while a member's
    # private organic history touches a hot item only individually.
    for cluster in clusters.values():
        quorum = max(2, len(cluster.users) // 2)
        cluster.hot_items = {
            item
            for item in hot
            if sum(1 for user in graph.item_neighbors(item) if user in cluster.users)
            >= quorum
        }
    groups = [
        cluster
        for cluster in clusters.values()
        if len(cluster.users) >= params.min_users
        and len(cluster.items) >= params.min_items
    ]
    groups.sort(key=lambda g: (-g.size, min((str(u) for u in g.users), default="")))
    return groups


def collect_fake_edges(
    graph: BipartiteGraph,
    group: SuspiciousGroup,
    t_click: float,
    params: ScreeningParams | None = None,
) -> list[tuple[Node, Node, int]]:
    """Attribute a detected group's edges to the attack, camouflage included.

    The cleanup step of the case study ("the system cleaned the false
    click information") needs the *edges* to delete, not just the nodes.
    For a screened group three kinds of edges are attributable:

    * **boost edges** — a group user's >= ``t_click`` clicks on a group
      target (the campaign's payload);
    * **hot rides** — a group user's clicks on the group's ridden hot
      items (small by Eq. 3, but fake);
    * **disguise edges** — a group user's *light* clicks on any other
      item, when the user's heaviest target engagement dominates them by
      at least ``params.disguise_ratio`` (Fig. 6's ``C_3^2 >> C_3^1``
      reading: for an account whose purpose is the attack, incidental
      light clicks are camouflage).

    Returns ``(user, item, clicks)`` triples, deterministically ordered.
    Hijacked accounts' organic history is the known blind spot: their
    pre-attack heavy edges can exceed the ratio test and survive — which
    is correct, since deleting a real customer's history would be worse.
    """
    if t_click <= 0:
        raise ScreeningError("t_click must be positive")
    params = params or ScreeningParams()
    edges: list[tuple[Node, Node, int]] = []
    for user in group.users:
        if not graph.has_user(user):
            continue
        neighbors = graph.user_neighbors(user)
        heaviest_target = max(
            (neighbors[item] for item in group.items if item in neighbors),
            default=0,
        )
        for item, clicks in neighbors.items():
            if item in group.items and clicks >= t_click:
                edges.append((user, item, clicks))
            elif item in group.hot_items:
                edges.append((user, item, clicks))
            elif (
                heaviest_target >= t_click
                and clicks * params.disguise_ratio <= heaviest_target
            ):
                edges.append((user, item, clicks))
    edges.sort(key=lambda edge: (str(edge[0]), str(edge[1])))
    return edges


def screen_groups(
    graph: BipartiteGraph,
    groups: Iterable[SuspiciousGroup],
    t_hot: float,
    t_click: float,
    params: ScreeningParams | None = None,
    do_user_check: bool = True,
    do_item_verification: bool = True,
) -> list[SuspiciousGroup]:
    """Run the screening module over every group.

    ``do_user_check`` / ``do_item_verification`` switch the two steps off
    individually, which is how the paper's ablation variants are built:
    RICD-UI disables both, RICD-I disables only the item step.

    Returns the screened groups, largest first.
    """
    params = params or ScreeningParams()
    screened: list[SuspiciousGroup] = []
    groups_in = 0
    user_check_rejected = 0
    for group in groups:
        groups_in += 1
        current = group.copy()
        if do_user_check:
            with obs.span("user_check"):
                current = user_behavior_check(graph, current, t_hot, t_click, params)
            if len(current.users) < params.min_users:
                user_check_rejected += 1
                continue
        if do_item_verification:
            with obs.span("item_verification"):
                finals = item_behavior_verification(
                    graph, current, t_hot, t_click, params
                )
            screened.extend(finals)
        else:
            screened.append(current)
    screened.sort(key=lambda g: (-g.size, min((str(u) for u in g.users), default="")))
    obs.count("screen.groups_in", groups_in)
    obs.count("screen.user_check.groups_rejected", user_check_rejected)
    obs.count("screen.groups_out", len(screened))
    return screened
