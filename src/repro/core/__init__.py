"""The paper's contribution: thresholds, I2I model, Algorithm 1, Algorithm 3,
screening, identification and the assembled RICD framework."""

from .camouflage import (
    contains_biclique,
    kovari_sos_turan_bound,
    undetected_campaign_bound,
    zarankiewicz_upper_bound,
)
from .extraction import core_pruning, extract_groups, prune_to_fixpoint, square_pruning
from .framework import (
    VARIANT_FULL,
    VARIANT_NO_ITEM,
    VARIANT_NO_SCREEN,
    RICDDetector,
)
from .groups import DetectionResult, SuspiciousGroup
from .i2i import (
    attack_score_gain,
    attacked_i2i_score,
    co_click_counts,
    i2i_scores,
    optimal_attack_allocation,
)
from .incremental import ClickBatch, IncrementalRICD
from .identification import adjust_parameters, assemble_result, output_size, score_groups
from .naive import NaiveParams, naive_detect
from .screening import item_behavior_verification, screen_groups, user_behavior_check
from .thresholds import (
    classify_items,
    hot_items,
    pareto_hot_threshold,
    t_click_from_graph,
    t_click_threshold,
)

__all__ = [
    "RICDDetector",
    "VARIANT_FULL",
    "VARIANT_NO_ITEM",
    "VARIANT_NO_SCREEN",
    "DetectionResult",
    "SuspiciousGroup",
    "core_pruning",
    "square_pruning",
    "prune_to_fixpoint",
    "extract_groups",
    "ClickBatch",
    "IncrementalRICD",
    "zarankiewicz_upper_bound",
    "kovari_sos_turan_bound",
    "undetected_campaign_bound",
    "contains_biclique",
    "screen_groups",
    "user_behavior_check",
    "item_behavior_verification",
    "score_groups",
    "assemble_result",
    "adjust_parameters",
    "output_size",
    "naive_detect",
    "NaiveParams",
    "pareto_hot_threshold",
    "t_click_threshold",
    "t_click_from_graph",
    "classify_items",
    "hot_items",
    "i2i_scores",
    "co_click_counts",
    "attacked_i2i_score",
    "attack_score_gain",
    "optimal_attack_allocation",
]
