"""Sparse-matrix implementation of Algorithm 3's pruning.

The reference implementation (:mod:`repro.core.extraction`) walks Python
dictionaries, which is transparent but becomes the framework's bottleneck
on large graphs.  This module re-expresses the two pruning conditions as
sparse linear algebra:

* **CorePruning** — row/column sums of the biadjacency matrix against the
  Lemma 1 floors;
* **SquarePruning** — the common-neighbour counts of all user pairs are
  exactly the entries of ``B @ B.T`` (and item pairs ``B.T @ B``) for the
  binary biadjacency ``B``; thresholding those Gram matrices and counting
  qualifying rows evaluates Lemma 2 for every vertex at once.

The fixpoint alternation is the same as the reference; only the per-pass
evaluation changes.  One semantic difference is deliberate: the reference
removes vertices *during* a pass (in two-hop candidate order), which can
only remove **more** than the simultaneous evaluation here, yet both
converge to the same fixpoint — the conditions are monotone (removals
never make another vertex *more* viable), so the fixpoints coincide; the
property test ``test_sparse_matches_reference`` pins that equivalence.

Use :func:`extract_groups_sparse` as a drop-in for
:func:`repro.core.extraction.extract_groups` when graphs grow past ~10^5
edges; the result contract is identical.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

try:  # scipy is an optional accelerator; the reference engine needs nothing
    from scipy import sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    sparse = None

from .. import obs
from .._util import ceil_frac, peak_rss_mb
from ..config import RICDParams
from ..graph.bipartite import BipartiteGraph
from ..graph.views import connected_components
from .groups import SuspiciousGroup

__all__ = ["sparse_available", "prune_to_fixpoint_sparse", "extract_groups_sparse"]

Node = Hashable


def sparse_available() -> bool:
    """Whether the scipy-backed engine can be used."""
    return sparse is not None


def _biadjacency(
    graph: BipartiteGraph,
) -> tuple["sparse.csr_matrix", list[Node], list[Node]]:
    """Binary CSR biadjacency plus the row (user) / column (item) orderings.

    A thin view over the graph's memoized :class:`IndexedGraph` snapshot:
    repeated extractions of the same graph version (feedback rounds,
    suites, sweeps) reuse one cached matrix instead of re-running the
    dict→array conversion.  The matrix is shared, and the pruning passes
    below only ever slice and multiply it — never write in place.
    """
    snapshot = graph.indexed()
    return snapshot.biadjacency(), snapshot.users, snapshot.items


def _prune_round(
    matrix: "sparse.csr_matrix", params: RICDParams
) -> tuple["sparse.csr_matrix", np.ndarray, np.ndarray, bool]:
    """One CorePruning-to-stability + one simultaneous SquarePruning pass.

    Returns the reduced matrix, boolean keep-masks for the *input* rows and
    columns, and whether anything was removed.
    """
    user_floor = params.user_degree_floor
    item_floor = params.item_degree_floor
    n_rows, n_cols = matrix.shape
    row_keep = np.ones(n_rows, dtype=bool)
    col_keep = np.ones(n_cols, dtype=bool)
    working = matrix
    changed = True
    while changed:  # cascade the degree floors
        changed = False
        row_degrees = np.asarray(working.sum(axis=1)).ravel()
        bad_rows = row_degrees < user_floor
        if bad_rows.any():
            keep = ~bad_rows
            row_keep[np.flatnonzero(row_keep)[bad_rows]] = False
            working = working[keep]
            changed = True
        col_degrees = np.asarray(working.sum(axis=0)).ravel()
        bad_cols = col_degrees < item_floor
        if bad_cols.any():
            keep = ~bad_cols
            col_keep[np.flatnonzero(col_keep)[bad_cols]] = False
            working = working[:, keep]
            changed = True

    removed_any = (~row_keep).any() or (~col_keep).any()
    if working.shape[0] == 0 or working.shape[1] == 0:
        return working, row_keep, col_keep, removed_any

    # SquarePruning, simultaneously for all vertices.
    user_common_floor = ceil_frac(params.alpha, params.k2)
    gram_users = (working @ working.T).tocsr()
    strong_counts = np.zeros(working.shape[0], dtype=np.int64)
    gram_users.data = (gram_users.data >= user_common_floor).astype(np.int64)
    # Row sums count strong partners; the diagonal contributes the "self"
    # term exactly when the vertex's own degree clears the floor — which the
    # diagonal entry (degree) already encodes.
    strong_counts = np.asarray(gram_users.sum(axis=1)).ravel()
    user_bad = strong_counts < params.k1

    item_common_floor = ceil_frac(params.alpha, params.k1)
    gram_items = (working.T @ working).tocsr()
    gram_items.data = (gram_items.data >= item_common_floor).astype(np.int64)
    item_strong = np.asarray(gram_items.sum(axis=1)).ravel()
    item_bad = item_strong < params.k2

    if user_bad.any():
        row_keep[np.flatnonzero(row_keep)[user_bad]] = False
        working = working[~user_bad]
        removed_any = True
    if item_bad.any():
        col_keep[np.flatnonzero(col_keep)[item_bad]] = False
        working = working[:, ~item_bad]
        removed_any = True
    return working, row_keep, col_keep, removed_any


def prune_to_fixpoint_sparse(
    graph: BipartiteGraph, params: RICDParams
) -> tuple[set[Node], set[Node]]:
    """Sparse fixpoint pruning; returns the surviving (users, items).

    The input graph is not modified.  Raises :class:`RuntimeError` when
    scipy is unavailable — call :func:`sparse_available` first to fall
    back to the reference engine gracefully.
    """
    if sparse is None:
        raise RuntimeError("scipy is not installed; use the reference engine")
    if graph.num_users == 0 or graph.num_items == 0:
        return set(), set()
    # The fixpoint is a pure function of (graph version, pruning floors),
    # so it memoizes on the snapshot's derived-results cache.  Suites that
    # run several RICD variants, ablations and repeated benchmarks extract
    # from the same graph with identical floors and pay the Gram-product
    # cascade once; the feedback loop's relaxed parameters key separately.
    snapshot = graph.indexed()
    cache_key = ("prune_fixpoint", params.k1, params.k2, round(params.alpha, 9))
    cached = snapshot.derived.get(cache_key)
    if cached is not None:
        obs.count("extract.sparse.fixpoint_cache_hits")
        return set(cached[0]), set(cached[1])
    obs.count("extract.sparse.fixpoint_cache_misses")
    matrix, users, items = snapshot.biadjacency(), snapshot.users, snapshot.items
    # Original-index bookkeeping: each round's keep masks index the rows and
    # columns the round received.
    user_indices = np.arange(len(users))
    item_indices = np.arange(len(items))
    rounds = 0
    with obs.span("prune"):
        while True:
            rounds += 1
            matrix, row_keep, col_keep, removed = _prune_round(matrix, params)
            removed_users = len(user_indices) - int(row_keep.sum())
            removed_items = len(item_indices) - int(col_keep.sum())
            if removed_users:
                obs.count("extract.sparse.users_removed", removed_users)
            if removed_items:
                obs.count("extract.sparse.items_removed", removed_items)
            user_indices = user_indices[row_keep]
            item_indices = item_indices[col_keep]
            if matrix.shape[0] == 0 or matrix.shape[1] == 0:
                obs.count("extract.fixpoint_rounds", rounds)
                obs.gauge("extract.peak_rss_mb", round(peak_rss_mb(), 1))
                snapshot.derived[cache_key] = (frozenset(), frozenset())
                return set(), set()
            if not removed:
                break
    obs.count("extract.fixpoint_rounds", rounds)
    obs.gauge("extract.peak_rss_mb", round(peak_rss_mb(), 1))
    surviving_users = {users[index] for index in user_indices}
    surviving_items = {items[index] for index in item_indices}
    snapshot.derived[cache_key] = (
        frozenset(surviving_users),
        frozenset(surviving_items),
    )
    return surviving_users, surviving_items


def extract_groups_sparse(
    graph: BipartiteGraph,
    params: RICDParams,
    max_users: int | None = None,
    max_items: int | None = None,
) -> list[SuspiciousGroup]:
    """Drop-in sparse variant of :func:`repro.core.extraction.extract_groups`."""
    surviving_users, surviving_items = prune_to_fixpoint_sparse(graph, params)
    survivors = graph.subgraph(surviving_users, surviving_items)
    groups: list[SuspiciousGroup] = []
    dropped = 0
    with obs.span("components"):
        for users, items in connected_components(survivors):
            if len(users) < params.k1 or len(items) < params.k2:
                dropped += 1
                continue
            if (max_users is not None and len(users) > max_users) or (
                max_items is not None and len(items) > max_items
            ):
                dropped += 1
                continue
            groups.append(SuspiciousGroup(users=users, items=items))
    obs.count("extract.components_dropped", dropped)
    obs.count("extract.groups", len(groups))
    return groups
