"""Algorithm 1 — the naive detector.

The intuition (Section V-A): "if most of the users who click an ordinary
item have clicked a large number of hot items, it is very likely that this
ordinary item is a target item and the users are suspicious users."

Mechanics, exactly as the pseudocode:

1. split items into *hot* (``total_click >= T_hot``) and *new* (potential
   targets);
2. per user, ``Alpha`` = total clicks the user spent on hot items
   (``GETALPHA``);
3. per item, ``RiskScore`` = sum of the Alphas of its adjacent users; items
   above ``T_risk`` form the abnormal item set ``S``;
4. a second, symmetric pass ("in the same way", per the paper's text)
   scores users by their adjacency to ``S`` and thresholds them.

``T_risk`` balances precision against recall and is "hard to set in
advance" — one of the two stated flaws of the algorithm.  When not given
explicitly we default it to a high percentile of the non-zero item risk
scores, which is how a practitioner without labels would bootstrap it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._util import stopwatch
from ..graph.bipartite import BipartiteGraph
from .groups import DetectionResult, SuspiciousGroup
from .thresholds import pareto_hot_threshold

__all__ = ["NaiveParams", "naive_detect", "user_alpha", "item_risk_scores"]

Node = Hashable


@dataclass(frozen=True)
class NaiveParams:
    """Parameters of Algorithm 1.

    Parameters
    ----------
    t_hot:
        Hot-item threshold; ``None`` derives it with the Pareto rule.
    t_risk:
        Item risk threshold; ``None`` sets it to the ``risk_percentile``
        of non-zero item risk scores.
    t_risk_user:
        User risk threshold for the second pass; ``None`` sets it to the
        same percentile of non-zero user risk scores.
    risk_percentile:
        Percentile (0-100) used for auto thresholds.
    """

    t_hot: float | None = None
    t_risk: float | None = None
    t_risk_user: float | None = None
    risk_percentile: float = 97.0

    def __post_init__(self) -> None:
        if not 0.0 < self.risk_percentile < 100.0:
            raise ValueError("risk_percentile must lie in (0, 100)")


def user_alpha(graph: BipartiteGraph, user: Node, hot: set[Node]) -> int:
    """``GETALPHA``: the user's total clicks on hot items."""
    return sum(
        clicks
        for item, clicks in graph.user_neighbors(user).items()
        if item in hot
    )


def item_risk_scores(
    graph: BipartiteGraph, alphas: dict[Node, int], candidates: set[Node]
) -> dict[Node, int]:
    """Per-item risk: the sum of adjacent users' Alpha values (Algorithm 1 line 10)."""
    return {
        item: sum(alphas[user] for user in graph.item_neighbors(item))
        for item in candidates
    }


def _percentile(values: list[float], percentile: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(len(ordered) * percentile / 100.0)))
    return ordered[rank]


def naive_detect(
    graph: BipartiteGraph, params: NaiveParams | None = None
) -> DetectionResult:
    """Run Algorithm 1 and its symmetric user pass.

    Returns a single-group :class:`DetectionResult` (the naive algorithm
    judges nodes independently, so there is no group structure), with risk
    scores filled in for ranking.
    """
    params = params or NaiveParams()
    result = DetectionResult()
    with stopwatch() as timer:
        t_hot = params.t_hot if params.t_hot is not None else pareto_hot_threshold(graph)

        new_items: set[Node] = set()
        hot: set[Node] = set()
        for item in graph.items():
            if graph.item_total_clicks(item) < t_hot:
                new_items.add(item)
            else:
                hot.add(item)

        alphas = {user: user_alpha(graph, user, hot) for user in graph.users()}
        risks = item_risk_scores(graph, alphas, new_items)

        positive_risks = [float(value) for value in risks.values() if value > 0]
        if params.t_risk is not None:
            t_risk = params.t_risk
        elif positive_risks:
            t_risk = _percentile(positive_risks, params.risk_percentile)
        else:
            t_risk = float("inf")
        abnormal_items = {item for item, risk in risks.items() if risk > t_risk}

        # Second pass, "in the same way": users scored by their clicks on
        # the abnormal item set, thresholded at the same percentile.
        user_risks = {
            user: sum(
                clicks
                for item, clicks in graph.user_neighbors(user).items()
                if item in abnormal_items
            )
            for user in graph.users()
        }
        positive_user_risks = [float(v) for v in user_risks.values() if v > 0]
        if params.t_risk_user is not None:
            t_risk_user = params.t_risk_user
        elif positive_user_risks:
            t_risk_user = _percentile(positive_user_risks, params.risk_percentile)
        else:
            t_risk_user = float("inf")
        abnormal_users = {
            user for user, risk in user_risks.items() if risk > t_risk_user
        }

        result.suspicious_items = abnormal_items
        result.suspicious_users = abnormal_users
        result.groups = [
            SuspiciousGroup(users=set(abnormal_users), items=set(abnormal_items))
        ]
        result.item_scores = {item: float(risks[item]) for item in abnormal_items}
        result.user_scores = {user: float(user_risks[user]) for user in abnormal_users}
    result.timings["detection"] = timer[0]
    return result
