"""Data-derived thresholds of Section IV-A.

Two thresholds drive the whole framework:

* ``T_hot`` — the hot-item boundary.  The paper ranks items by clicks and
  sums down the ranking until 80% of total clicks is covered (the Pareto
  principle); ``T_hot`` is the click count of the *last* item inside that
  mass (1,320 on the Taobao table).  Items with clicks >= ``T_hot`` are hot.

* ``T_click`` — the abnormal-click boundary (Eq. 4).  Assuming a crowd
  worker disguises with an average user's click volume and spends it with
  the same 80/20 skew, the threshold is

  .. math::  T_{click} = (Avg\\_clk \\times 0.8) / (Avg\\_cnt \\times 0.2)

  which evaluates to ~12 on the paper's statistics (11.35 and 4.32).
"""

from __future__ import annotations

import math
from typing import Hashable

from ..errors import DegenerateGraphError
from ..graph.bipartite import BipartiteGraph
from ..graph.indexed import snapshot_or_none
from ..graph.stats import side_stats

__all__ = [
    "pareto_hot_threshold",
    "t_click_threshold",
    "t_click_from_graph",
    "classify_items",
    "hot_items",
]

Node = Hashable


def pareto_hot_threshold(graph: BipartiteGraph, mass_fraction: float = 0.8) -> int:
    """``T_hot``: clicks of the last item inside the top ``mass_fraction`` of clicks.

    Items are ranked by total clicks descending; the threshold is the click
    count of the item at which the cumulative share first reaches
    ``mass_fraction``.  Returns 1 for an empty or clickless graph (so every
    clicked item would count as hot — a degenerate but safe fallback).

    >>> from repro.graph import BipartiteGraph
    >>> g = BipartiteGraph()
    >>> for u, i, c in [("a", "x", 80), ("a", "y", 15), ("b", "z", 5)]:
    ...     g.add_click(u, i, c)
    >>> pareto_hot_threshold(g, 0.8)
    80
    """
    if not 0.0 < mass_fraction <= 1.0:
        raise ValueError(f"mass_fraction must lie in (0, 1], got {mass_fraction}")
    snapshot = snapshot_or_none(graph)
    if snapshot is not None:
        import numpy as np

        totals_desc = snapshot.item_total_clicks_descending()
        grand = int(totals_desc.sum()) if len(totals_desc) else 0
        if grand == 0:
            return 1
        cumulative = np.cumsum(totals_desc)
        # First rank whose cumulative share reaches the mass fraction —
        # identical to the reference loop (int sums are exact either way).
        rank = int(np.searchsorted(cumulative, mass_fraction * grand, side="left"))
        rank = min(rank, len(totals_desc) - 1)
        return max(int(totals_desc[rank]), 1)
    totals = sorted(
        (graph.item_total_clicks(item) for item in graph.items()), reverse=True
    )
    grand_total = sum(totals)
    if grand_total == 0:
        return 1
    cumulative = 0
    for total in totals:
        cumulative += total
        if cumulative >= mass_fraction * grand_total:
            return max(total, 1)
    return max(totals[-1], 1)


def t_click_threshold(
    avg_clk: float, avg_cnt: float, heavy_share: float = 0.8
) -> int:
    """Eq. 4: the abnormal click threshold from the two Table II statistics.

    ``T_click = (avg_clk * heavy_share) / (avg_cnt * (1 - heavy_share))``,
    rounded up — the paper rounds 10.5 up to "an ordinary item whose number
    of clicks greater than or equal to 12" using its published inputs.

    >>> t_click_threshold(11.35, 4.32)
    11

    Degenerate inputs — non-positive marketplace averages (an empty or
    clickless graph) or ``heavy_share == 1.0`` (Eq. 4's denominator
    vanishes) — raise :class:`~repro.errors.DegenerateGraphError`, a
    ``ValueError`` subclass the pipeline's threshold-resolution stage
    absorbs by falling back to the floor thresholds.
    """
    if avg_clk <= 0 or avg_cnt <= 0:
        raise DegenerateGraphError("avg_clk and avg_cnt must be positive")
    if heavy_share == 1.0:
        raise DegenerateGraphError(
            "heavy_share == 1.0 makes Eq. 4's denominator vanish"
        )
    if not 0.0 < heavy_share < 1.0:
        raise ValueError(f"heavy_share must lie in (0, 1), got {heavy_share}")
    value = (avg_clk * heavy_share) / (avg_cnt * (1.0 - heavy_share))
    return max(2, math.ceil(value))


def t_click_from_graph(graph: BipartiteGraph, heavy_share: float = 0.8) -> int:
    """Eq. 4 evaluated on a graph's own user-side statistics."""
    snapshot = snapshot_or_none(graph)
    if snapshot is not None:
        # Avg_clk / Avg_cnt are ratios of exact integer sums, so this path
        # reproduces the dict path bit-for-bit.
        n_users = snapshot.num_users
        if n_users == 0:
            return 2
        avg_clk = int(snapshot.user_total_clicks().sum()) / n_users
        avg_cnt = snapshot.num_edges / n_users
        if avg_clk <= 0 or avg_cnt <= 0:
            return 2
        return t_click_threshold(avg_clk, avg_cnt, heavy_share)
    stats = side_stats(graph, "user")
    if stats.avg_clk <= 0 or stats.avg_cnt <= 0:
        return 2
    return t_click_threshold(stats.avg_clk, stats.avg_cnt, heavy_share)


def hot_items(graph: BipartiteGraph, t_hot: float) -> set[Node]:
    """Items whose total clicks are ``>= t_hot``."""
    snapshot = snapshot_or_none(graph)
    if snapshot is not None:
        import numpy as np

        mask = snapshot.item_total_clicks() >= t_hot
        return {snapshot.items[index] for index in np.flatnonzero(mask)}
    return {
        item for item in graph.items() if graph.item_total_clicks(item) >= t_hot
    }


def classify_items(
    graph: BipartiteGraph, t_hot: float
) -> tuple[set[Node], set[Node]]:
    """Split items into ``(hot, ordinary)`` by the ``t_hot`` boundary."""
    snapshot = snapshot_or_none(graph)
    if snapshot is not None:
        import numpy as np

        mask = snapshot.item_total_clicks() >= t_hot
        hot = {snapshot.items[index] for index in np.flatnonzero(mask)}
        ordinary = {snapshot.items[index] for index in np.flatnonzero(~mask)}
        return hot, ordinary
    hot: set[Node] = set()
    ordinary: set[Node] = set()
    for item in graph.items():
        if graph.item_total_clicks(item) >= t_hot:
            hot.add(item)
        else:
            ordinary.add(item)
    return hot, ordinary
