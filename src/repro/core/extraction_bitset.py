"""Native-speed bitset/CSR implementation of Algorithm 3's pruning.

The sparse engine (:mod:`repro.core.extraction_sparse`) re-expresses the
pruning conditions as scipy Gram products, but it pays for that clarity at
scale: every fixpoint round *copies* the whole working matrix twice (row
and column fancy-index slicing) and multiplies full matrices even when a
round only perturbed a handful of vertices.  This module touches the full
vertex axes exactly once — a vectorized CorePruning floor pass straight
off the CSR ``indptr`` degrees that mass-kills the casual majority — and
then compacts the survivors into a rank-compressed working subgraph where
everything else happens:

* **membership masks** are numpy packed bitsets (``uint64`` words, one bit
  per vertex, with byte-mask twins for fast gathered-index tests), so
  kills are bit-clears and degree upkeep is a decrement cascade bounded
  at O(E) for the whole fixpoint;
* **degree/click recomputation** is segment arithmetic over CSR
  ``indptr`` slices (``np.diff`` at each compaction, ``np.add.reduceat``
  in the property-test cross-check, bincount deltas in the cascade);
* **SquarePruning** evaluates only *dirty* vertices (those whose two-hop
  neighbourhood lost a member since their last evaluation) by expanding
  their alive wedges and bin-counting common-neighbour multiplicities in
  bounded-memory blocks, on a freshly re-compacted subgraph each round so
  wedges never cross dead hot-vertex fan-out.

The fixpoint is identical to the reference and sparse engines': the
pruning conditions are monotone (a removal never makes another vertex
*more* viable), so any evaluation order converges to the same unique
fixpoint; the differential suite pins the equivalence on the shared
scenario grid.  The kernel itself is array-native —
:func:`prune_fixpoint_arrays` needs nothing but CSR/CSC index arrays —
which is what lets paper-scale graphs stream from disk (memory-mapped
arrays, see :mod:`repro.graph.io`) without ever materialising a
dict-of-dict :class:`~repro.graph.bipartite.BipartiteGraph`.
"""

from __future__ import annotations

from typing import Hashable

try:  # numpy is an optional accelerator; the reference engine needs nothing
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from .. import obs
from .._util import ceil_frac, peak_rss_mb
from ..config import RICDParams
from ..graph.bipartite import BipartiteGraph
from ..graph.views import connected_components
from .groups import SuspiciousGroup

__all__ = [
    "bitset_available",
    "prune_fixpoint_arrays",
    "prune_to_fixpoint_bitset",
    "extract_groups_bitset",
]

Node = Hashable

#: Upper bound on the cells of one SquarePruning bincount block
#: (``block_vertices x alive_vertices``); 4M int64 cells = 32 MiB.
_TARGET_CELLS = 1 << 22
#: Upper bound on one wedge-expansion chunk (two-hop gather entries).
_WEDGE_LIMIT = 1 << 23


def bitset_available() -> bool:
    """Whether the numpy-backed bitset engine can be used."""
    return np is not None


# ----------------------------------------------------------------------
# Packed-bitset membership masks
# ----------------------------------------------------------------------
def _bitset_full(n: int):
    """A packed bitset of ``n`` bits, all set."""
    words = np.full((n + 63) >> 6, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = n & 63
    if tail and len(words):
        words[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    return words


def _bitset_test(words, idx):
    """Boolean array: is bit ``idx`` set?  Vectorized gather + shift."""
    shifts = (idx & 63).astype(np.uint64)
    return ((words[idx >> 6] >> shifts) & np.uint64(1)).astype(bool)


def _bitset_clear(words, idx) -> None:
    """Clear bits ``idx`` in place (duplicates and shared words are fine)."""
    if len(idx) == 0:
        return
    masks = ~(np.uint64(1) << (idx & 63).astype(np.uint64))
    np.bitwise_and.at(words, idx >> 6, masks)


if hasattr(np, "bitwise_count") if np is not None else False:

    def _bitset_count(words) -> int:
        """Number of set bits."""
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - numpy < 2.0 fallback

    def _bitset_count(words) -> int:
        """Number of set bits (byte-unpack fallback for old numpy)."""
        return int(np.unpackbits(words.view(np.uint8)).sum())


def _bitset_indices(words):
    """Indices of the set bits, ascending."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits)


# ----------------------------------------------------------------------
# Frontier-limited CSR helpers
# ----------------------------------------------------------------------
def _gather(vertices, indptr, indices):
    """Concatenated adjacency slices of ``vertices``.

    Returns ``(neighbors, lens, seg_starts)``: the concatenation of
    ``indices[indptr[v]:indptr[v + 1]]`` for each ``v``, the slice length
    per vertex, and each slice's offset into the concatenation.
    """
    lens = indptr[vertices + 1] - indptr[vertices]
    total = int(lens.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, lens, np.zeros(len(vertices), dtype=np.int64)
    seg_ends = np.cumsum(lens)
    seg_starts = seg_ends - lens
    positions = np.arange(total, dtype=np.int64)
    positions += np.repeat(indptr[vertices] - seg_starts, lens)
    return np.asarray(indices)[positions], lens, seg_starts


def _recount_alive_degrees(vertices, indptr, indices, other_alive, deg) -> None:
    """``deg[vertices] = alive-neighbour count``, via ``np.add.reduceat``.

    Full recomputation of a vertex set's alive degrees as segment sums
    over their static CSR slices.  The fixpoint driver itself maintains
    degrees by decrement (see ``kill`` inside
    :func:`prune_fixpoint_arrays`), so this is the independent
    cross-check used by the property tests, not the hot path.
    """
    if len(vertices) == 0:
        return
    lens = indptr[vertices + 1] - indptr[vertices]
    nonempty = vertices[lens > 0]
    deg[vertices[lens == 0]] = 0
    if len(nonempty) == 0:
        return
    neighbors, _, seg_starts = _gather(nonempty, indptr, indices)
    alive = _bitset_test(other_alive, neighbors).astype(np.int64)
    deg[nonempty] = np.add.reduceat(alive, seg_starts)


def _alive_neighbors(vertices, indptr, indices, other_alive, n_other):
    """Unique alive neighbours of ``vertices``.

    Deduplicates through a dense boolean scatter mask — ``O(edges +
    n_other)`` with tiny constants — rather than a sort-based
    ``np.unique``, which profiled as the cascade's dominant cost on
    million-vertex frontiers.
    """
    if len(vertices) == 0:
        return np.empty(0, dtype=np.int64)
    neighbors, _, _ = _gather(vertices, indptr, indices)
    if len(neighbors) == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.zeros(n_other, dtype=bool)
    mask[neighbors] = True
    touched = np.flatnonzero(mask)
    return touched[_bitset_test(other_alive, touched)]


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
def prune_fixpoint_arrays(
    user_indptr,
    user_items,
    item_indptr,
    item_users,
    params: RICDParams,
    stats: list | None = None,
):
    """CorePruning/SquarePruning fixpoint on raw CSR/CSC index arrays.

    Parameters
    ----------
    user_indptr, user_items:
        User-major CSR adjacency (row ``u``'s distinct items are
        ``user_items[user_indptr[u]:user_indptr[u + 1]]``).
    item_indptr, item_users:
        Item-major CSC adjacency, mirrored.
    params:
        Extraction parameters (``k1``, ``k2``, ``alpha``).
    stats:
        Optional list; when given, one dict per fixpoint round is appended
        (kills, wedge/edge traffic, elapsed seconds) — the roofline
        benchmark's per-round bandwidth accounting.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Ascending indices of the surviving users and items.
    """
    if np is None:
        raise RuntimeError("numpy is not installed; use the reference engine")
    import time

    n_users = len(user_indptr) - 1
    n_items = len(item_indptr) - 1
    user_floor = params.user_degree_floor
    item_floor = params.item_degree_floor
    user_common_floor = ceil_frac(params.alpha, params.k2)
    item_common_floor = ceil_frac(params.alpha, params.k1)
    empty = np.empty(0, dtype=np.int64)
    traffic = [0]  # gathered adjacency entries, for the roofline accounting

    def gather(vertices, indptr, indices):
        neighbors, lens, seg_starts = _gather(vertices, indptr, indices)
        traffic[0] += len(neighbors)
        return neighbors, lens, seg_starts

    # ------------------------------------------------------------------
    # Working-space state.  After the initial floor pass the kernel never
    # touches the full vertex axes again: the surviving subgraph is
    # compacted into rank-compressed CSR/CSC arrays and every later
    # cascade, square pass and dirty walk runs in that compact space
    # (re-compacted each round as it shrinks).  ``g_users``/``g_items``
    # map working ids back to the caller's indices.  The packed bitsets
    # are authoritative for popcounts/enumeration; the byte-mask twins
    # (``live_u``/``live_i``) make membership tests over big gathered
    # index arrays a single boolean fancy-index.
    # ------------------------------------------------------------------
    w_user_indptr = w_user_items = w_item_indptr = w_item_users = None
    g_users = g_items = empty
    n_wu = n_wi = 0
    alive_u = alive_i = None
    live_u = live_i = None
    deg_u = deg_i = None

    def kill(bad, indptr, indices, alive_self, live_self, deg_other, n_other, counter):
        """Clear ``bad``'s bits and decrement their neighbours' degrees.

        Degrees are maintained by decrement rather than recomputation:
        every killed vertex was alive (so it was counted in each
        neighbour's degree exactly once), which bounds the whole
        cascade's work at O(E) — each vertex dies at most once and its
        adjacency is gathered exactly once.  Returns the touched
        neighbour indices (dead ones included; callers filter by the
        membership mask).
        """
        _bitset_clear(alive_self, bad)
        live_self[bad] = False
        obs.count(counter, len(bad))
        neighbors, _, _ = gather(bad, indptr, indices)
        if len(neighbors) == 0:
            return empty
        delta = np.bincount(neighbors, minlength=n_other)
        deg_other -= delta
        return np.flatnonzero(delta)

    def core_cascade(frontier_u, frontier_i) -> None:
        """Cascade the degree floors from the given frontiers, in place.

        Runs in the current working space (the inner reads pick up the
        variables as rebound by the latest compaction).
        """
        while len(frontier_u) or len(frontier_i):
            if len(frontier_u):
                bad = frontier_u[live_u[frontier_u]]
                bad = bad[deg_u[bad] < user_floor]
                frontier_u = empty
                if len(bad):
                    touched = kill(
                        bad, w_user_indptr, w_user_items, alive_u, live_u,
                        deg_i, n_wi, "extract.bitset.users_removed",
                    )
                    # union1d, not concatenate: a vertex queued twice
                    # would be killed twice and double-decrement its
                    # neighbours' degrees.
                    frontier_i = (
                        np.union1d(frontier_i, touched)
                        if len(frontier_i)
                        else touched
                    )
            if len(frontier_i):
                bad = frontier_i[live_i[frontier_i]]
                bad = bad[deg_i[bad] < item_floor]
                frontier_i = empty
                if len(bad):
                    frontier_u = kill(
                        bad, w_item_indptr, w_item_users, alive_i, live_i,
                        deg_u, n_wu, "extract.bitset.items_removed",
                    )

    def compact(live_su, live_si, indptr, indices):
        """The live subgraph of the current space, rank-compressed.

        The input adjacency keeps every edge of the space it was built
        in, so SquarePruning wedges expanded through it would mostly
        visit dead vertices (a hot item retains its millions of pruned
        casual users).  One compaction per round — gathering only the
        *live users'* rows, which are short by the time any square pass
        runs — bounds all square work by the live edge count, the same
        shrinkage the sparse engine gets from physically slicing its
        matrix.  Returns the kept vertices (ids in the *input* space)
        plus fresh CSR + CSC arrays over their ranks.
        """
        alive_su = np.flatnonzero(live_su)
        alive_si = np.flatnonzero(live_si)
        rank_si = np.full(len(live_si), -1, dtype=np.int64)
        rank_si[alive_si] = np.arange(len(alive_si), dtype=np.int64)
        neighbors, lens, _ = gather(alive_su, indptr, indices)
        keep = live_si[neighbors]
        rows = np.repeat(np.arange(len(alive_su), dtype=np.int64), lens)[keep]
        cols = rank_si[neighbors[keep]]
        c_user_indptr = np.zeros(len(alive_su) + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=len(alive_su)), out=c_user_indptr[1:])
        order = np.argsort(cols, kind="stable")
        c_item_indptr = np.zeros(len(alive_si) + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=len(alive_si)), out=c_item_indptr[1:])
        return (
            alive_su, alive_si,
            c_user_indptr, cols, c_item_indptr, rows[order],
        )

    def square_bad(dirty, indptr, indices, other_indptr, other_indices,
                   n_self, common_floor, k_needed):
        """Compact-space vertices failing Lemma 2 on the alive subgraph.

        Strong-partner counts come from expanding each dirty vertex's
        two-hop wedges and bin-counting co-vertex multiplicities; the
        diagonal self term (``count == degree``) falls out of the wedges
        through the vertex's own edges, matching the sparse engine's Gram
        diagonal semantics exactly.  Work is blocked two ways: the counts
        matrix at ``_TARGET_CELLS`` cells, wedge expansion at
        ``_WEDGE_LIMIT`` entries.
        """
        if len(dirty) == 0:
            return empty
        block = max(1, _TARGET_CELLS // max(n_self, 1))
        bad_chunks = []
        for start in range(0, len(dirty), block):
            blk = dirty[start : start + block]
            mid, lens, _ = gather(blk, indptr, indices)
            seg = np.repeat(np.arange(len(blk), dtype=np.int64), lens)
            counts = np.zeros(len(blk) * n_self, dtype=np.int64)
            mid_lens = other_indptr[mid + 1] - other_indptr[mid]
            total_wedges = int(mid_lens.sum())
            if total_wedges:
                boundaries = np.searchsorted(
                    np.cumsum(mid_lens),
                    np.arange(
                        _WEDGE_LIMIT, total_wedges + _WEDGE_LIMIT, _WEDGE_LIMIT
                    ),
                )
                pieces = np.unique(np.concatenate(([0], boundaries, [len(mid)])))
                for lo, hi in zip(pieces[:-1], pieces[1:]):
                    if lo == hi:
                        continue
                    co, co_lens, _ = gather(mid[lo:hi], other_indptr, other_indices)
                    counts += np.bincount(
                        np.repeat(seg[lo:hi], co_lens) * n_self + co,
                        minlength=len(blk) * n_self,
                    )
            strong = (counts.reshape(len(blk), n_self) >= common_floor).sum(axis=1)
            bad_chunks.append(blk[strong < k_needed])
        return np.concatenate(bad_chunks)

    def c_neighbors(vertices, indptr, indices, n_other):
        """Unique neighbours in the compact graph (mask dedup)."""
        if len(vertices) == 0:
            return empty
        neighbors, _, _ = gather(vertices, indptr, indices)
        if len(neighbors) == 0:
            return empty
        mask = np.zeros(n_other, dtype=bool)
        mask[neighbors] = True
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # Round 0: one vectorized CorePruning floor pass over the full axes.
    # This is the only work ever done at full graph width — a mass kill
    # of the casual majority straight off the static ``indptr`` degrees,
    # with no per-wave cascade (cascading here would gather the dead
    # majority's edges and bincount over million-wide axes every wave).
    # The floor conditions are monotone, so finishing the cascade later,
    # in compact space, reaches the identical fixpoint.
    # ------------------------------------------------------------------
    setup_start = time.perf_counter()
    mask_u = np.diff(user_indptr) >= user_floor
    mask_i = np.diff(item_indptr) >= item_floor
    # The floor pass streams both indptr axes; count it as traffic so the
    # roofline report's round 0 reflects the work actually done.
    traffic[0] += n_users + n_items
    obs.count("extract.bitset.users_removed", int(n_users - mask_u.sum()))
    obs.count("extract.bitset.items_removed", int(n_items - mask_i.sum()))
    if not mask_u.any() or not mask_i.any():
        obs.count("extract.fixpoint_rounds", 1)
        return empty, empty
    g_users, g_items, w_user_indptr, w_user_items, w_item_indptr, w_item_users = (
        compact(mask_u, mask_i, user_indptr, user_items)
    )
    n_wu = len(g_users)
    n_wi = len(g_items)
    alive_u = _bitset_full(n_wu)
    alive_i = _bitset_full(n_wi)
    live_u = np.ones(n_wu, dtype=bool)
    live_i = np.ones(n_wi, dtype=bool)
    deg_u = np.diff(w_user_indptr)
    deg_i = np.diff(w_item_indptr)
    # Finish the degree cascade in compact space (items that lost their
    # casual majority, then whatever that kills in turn).
    core_cascade(
        np.arange(n_wu, dtype=np.int64), np.arange(n_wi, dtype=np.int64)
    )
    if stats is not None:
        stats.append(
            {
                "round": 0,
                "users_killed": int(n_users - live_u.sum()),
                "items_killed": int(n_items - live_i.sum()),
                "alive_users": int(live_u.sum()),
                "alive_items": int(live_i.sum()),
                "alive_edges": int(w_user_indptr[-1]),
                "gathered_entries": traffic[0],
                "seconds": time.perf_counter() - setup_start,
            }
        )
    # Alternate SquarePruning + CorePruning rounds to the fixpoint, each
    # round's square pass limited to the dirty vertices on a freshly
    # re-compacted alive subgraph.
    dirty_u = None  # None = every alive vertex (the first square round)
    dirty_i = None
    rounds = 0
    while _bitset_count(alive_u) and _bitset_count(alive_i):
        rounds += 1
        round_start = time.perf_counter()
        traffic[0] = 0
        sel_u, sel_i, c_user_indptr, c_user_items, c_item_indptr, c_item_users = (
            compact(live_u, live_i, w_user_indptr, w_user_items)
        )
        if dirty_u is None:
            dirty_cu = np.arange(len(sel_u), dtype=np.int64)
            dirty_ci = np.arange(len(sel_i), dtype=np.int64)
        else:
            # Remap last round's dirty ids (previous working space) into
            # the new ranks; vertices killed since drop out here.
            rank_old_u = np.full(n_wu, -1, dtype=np.int64)
            rank_old_u[sel_u] = np.arange(len(sel_u), dtype=np.int64)
            rank_old_i = np.full(n_wi, -1, dtype=np.int64)
            rank_old_i[sel_i] = np.arange(len(sel_i), dtype=np.int64)
            dirty_cu = rank_old_u[dirty_u[live_u[dirty_u]]]
            dirty_ci = rank_old_i[dirty_i[live_i[dirty_i]]]
        g_users = g_users[sel_u]
        g_items = g_items[sel_i]
        n_wu = len(sel_u)
        n_wi = len(sel_i)
        w_user_indptr, w_user_items = c_user_indptr, c_user_items
        w_item_indptr, w_item_users = c_item_indptr, c_item_users
        alive_u = _bitset_full(n_wu)
        alive_i = _bitset_full(n_wi)
        live_u = np.ones(n_wu, dtype=bool)
        live_i = np.ones(n_wi, dtype=bool)
        deg_u = np.diff(w_user_indptr)
        deg_i = np.diff(w_item_indptr)
        # Both sides evaluate on the same alive state (simultaneous
        # SquarePruning, exactly like the sparse engine's Gram pass).
        bad_cu = square_bad(
            dirty_cu, w_user_indptr, w_user_items, w_item_indptr, w_item_users,
            n_wu, user_common_floor, params.k1,
        )
        bad_ci = square_bad(
            dirty_ci, w_item_indptr, w_item_users, w_user_indptr, w_user_items,
            n_wi, item_common_floor, params.k2,
        )
        if len(bad_cu) == 0 and len(bad_ci) == 0:
            if stats is not None:
                stats.append(
                    {
                        "round": rounds,
                        "users_killed": 0,
                        "items_killed": 0,
                        "alive_users": n_wu,
                        "alive_items": n_wi,
                        "alive_edges": int(w_user_indptr[-1]),
                        "gathered_entries": traffic[0],
                        "seconds": time.perf_counter() - round_start,
                    }
                )
            break
        # Both kill sets were computed on the same alive state; killing
        # them now (and decrementing degrees) cannot disturb the other
        # side's already-taken decisions.
        touched_i = (
            kill(
                bad_cu, w_user_indptr, w_user_items, alive_u, live_u,
                deg_i, n_wi, "extract.bitset.users_removed",
            )
            if len(bad_cu)
            else empty
        )
        touched_u = (
            kill(
                bad_ci, w_item_indptr, w_item_users, alive_i, live_i,
                deg_u, n_wu, "extract.bitset.items_removed",
            )
            if len(bad_ci)
            else empty
        )
        core_cascade(touched_u, touched_i)
        # Dirty sets for the next round: everything whose alive Gram row
        # lost a member — neighbours of killed vertices (degree change)
        # plus co-vertices of killed vertices (common-count change).  The
        # two-hop walks run on THIS round's working graph (a superset of
        # what is alive now, so the dirty sets are conservative), never
        # an adjacency with dead hot-vertex fan-out.  The round began
        # with everything alive, so this round's kills are exactly the
        # now-dead working ids.
        killed_cu = np.flatnonzero(~live_u)
        killed_ci = np.flatnonzero(~live_i)
        items_of_killed_u = c_neighbors(
            killed_cu, w_user_indptr, w_user_items, n_wi
        )
        users_of_killed_i = c_neighbors(
            killed_ci, w_item_indptr, w_item_users, n_wu
        )
        co_users = c_neighbors(items_of_killed_u, w_item_indptr, w_item_users, n_wu)
        co_items = c_neighbors(users_of_killed_i, w_user_indptr, w_user_items, n_wi)
        dirty_u = np.union1d(users_of_killed_i, co_users)
        dirty_u = dirty_u[live_u[dirty_u]]
        dirty_i = np.union1d(items_of_killed_u, co_items)
        dirty_i = dirty_i[live_i[dirty_i]]
        if stats is not None:
            stats.append(
                {
                    "round": rounds,
                    "users_killed": len(killed_cu),
                    "items_killed": len(killed_ci),
                    "alive_users": n_wu,
                    "alive_items": n_wi,
                    "alive_edges": int(w_user_indptr[-1]),
                    "gathered_entries": traffic[0],
                    "seconds": time.perf_counter() - round_start,
                }
            )
    obs.count("extract.fixpoint_rounds", max(rounds, 1))
    if _bitset_count(alive_u) == 0 or _bitset_count(alive_i) == 0:
        return empty, empty
    return g_users[_bitset_indices(alive_u)], g_items[_bitset_indices(alive_i)]


# ----------------------------------------------------------------------
# Graph-level wrappers (drop-ins for the sparse engine's entry points)
# ----------------------------------------------------------------------
def prune_to_fixpoint_bitset(
    graph: BipartiteGraph, params: RICDParams
) -> tuple[set[Node], set[Node]]:
    """Bitset fixpoint pruning; returns the surviving (users, items).

    The input graph is not modified.  Like the sparse engine, the result
    memoizes on the snapshot's derived-results cache (keyed by the pruning
    floors), so feedback rounds and suites re-extracting the same graph
    version pay the kernel once.  Raises :class:`RuntimeError` when numpy
    is unavailable — call :func:`bitset_available` first to fall back
    gracefully.
    """
    if np is None:
        raise RuntimeError("numpy is not installed; use the reference engine")
    if graph.num_users == 0 or graph.num_items == 0:
        return set(), set()
    snapshot = graph.indexed()
    cache_key = ("prune_fixpoint_bitset", params.k1, params.k2, round(params.alpha, 9))
    cached = snapshot.derived.get(cache_key)
    if cached is not None:
        obs.count("extract.bitset.fixpoint_cache_hits")
        return set(cached[0]), set(cached[1])
    obs.count("extract.bitset.fixpoint_cache_misses")
    user_indptr, user_items = snapshot.csr_arrays()
    item_indptr, item_users = snapshot.csc_arrays()
    with obs.span("prune"):
        alive_users, alive_items = prune_fixpoint_arrays(
            user_indptr, user_items, item_indptr, item_users, params
        )
    obs.gauge("extract.peak_rss_mb", round(peak_rss_mb(), 1))
    surviving_users = {snapshot.users[int(index)] for index in alive_users}
    surviving_items = {snapshot.items[int(index)] for index in alive_items}
    snapshot.derived[cache_key] = (
        frozenset(surviving_users),
        frozenset(surviving_items),
    )
    return surviving_users, surviving_items


def extract_groups_bitset(
    graph: BipartiteGraph,
    params: RICDParams,
    max_users: int | None = None,
    max_items: int | None = None,
) -> list[SuspiciousGroup]:
    """Drop-in bitset variant of :func:`repro.core.extraction.extract_groups`."""
    surviving_users, surviving_items = prune_to_fixpoint_bitset(graph, params)
    survivors = graph.subgraph(surviving_users, surviving_items)
    groups: list[SuspiciousGroup] = []
    dropped = 0
    with obs.span("components"):
        for users, items in connected_components(survivors):
            if len(users) < params.k1 or len(items) < params.k2:
                dropped += 1
                continue
            if (max_users is not None and len(users) > max_users) or (
                max_items is not None and len(items) > max_items
            ):
                dropped += 1
                continue
            groups.append(SuspiciousGroup(users=users, items=items))
    obs.count("extract.components_dropped", dropped)
    obs.count("extract.groups", len(groups))
    return groups
