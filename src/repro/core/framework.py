"""The RICD detection framework (Fig. 4) and its ablation variants.

:class:`RICDDetector` chains the three modules of the paper:

1. **Suspicious group detection** — optional seed expansion (Algorithm 2's
   ``GraphGenerator``) followed by ``(alpha, k1, k2)``-extension biclique
   extraction (Algorithm 3);
2. **Suspicious group screening** — user behaviour check + item behaviour
   verification (switchable, giving the RICD / RICD-I / RICD-UI variants
   of Table VI);
3. **Suspicious group identification** — risk-score ranking plus the
   Fig. 7 feedback loop that relaxes parameters until the output meets the
   end-user expectation.

The detector is stateless between calls: thresholds left as ``None`` in
the parameters are re-derived from each input graph exactly as Section IV
prescribes (Pareto rule for ``T_hot``, Eq. 4 for ``T_click``).

Since the pipeline refactor the detector no longer sequences the modules
itself: :meth:`RICDDetector.detect` builds a
:class:`~repro.pipeline.runner.DetectionPipeline` — shared stage objects
plus an execution strategy (single-graph or sharded) — and runs it.  The
sharded runner, the incremental recheck and the baselines' "+UI" wrapper
compose the very same stages, so the framework's behaviour is defined in
exactly one place: :mod:`repro.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from .. import obs
from .._util import Stopwatch
from ..config import FeedbackPolicy, RICDParams, ScreeningParams
from ..graph.bipartite import BipartiteGraph
from ..pipeline import (
    DetectionPipeline,
    Extraction,
    FeedbackDriver,
    Identification,
    PipelineContext,
    ResolveThresholds,
    Screening,
    SeedExpansion,
    ShardedExecution,
    SingleGraphExecution,
    SizeCaps,
    run_stages,
)
from ..resilience import RetryPolicy
from .groups import DetectionResult, SuspiciousGroup
from .thresholds import pareto_hot_threshold, t_click_from_graph

__all__ = ["RICDDetector", "RICDVariant", "VARIANT_FULL", "VARIANT_NO_ITEM", "VARIANT_NO_SCREEN"]

Node = Hashable

#: Full framework: both screening steps (the paper's "RICD").
VARIANT_FULL = "ricd"
#: User behaviour check only (the paper's "RICD-I").
VARIANT_NO_ITEM = "ricd-i"
#: No screening module at all (the paper's "RICD-UI").
VARIANT_NO_SCREEN = "ricd-ui"

RICDVariant = str  # alias for documentation purposes

_VALID_VARIANTS = (VARIANT_FULL, VARIANT_NO_ITEM, VARIANT_NO_SCREEN)


def _derive_t_hot(graph: BipartiteGraph) -> float:
    """Pareto ``T_hot`` via this module's name, so tests can intercept it."""
    return pareto_hot_threshold(graph)


def _derive_t_click(graph: BipartiteGraph) -> float:
    """Eq. 4 ``T_click`` via this module's name, so tests can intercept it."""
    return t_click_from_graph(graph)


@dataclass
class RICDDetector:
    """The "Ride Item's Coattails" attack detector.

    Parameters
    ----------
    params:
        Extraction parameters.  ``t_hot``/``t_click`` left at ``None`` are
        derived from the input graph per Section IV.
    screening:
        Screening-module parameters.
    feedback:
        Fig. 7 policy; ``None`` disables the feedback loop.
    variant:
        ``"ricd"`` (full), ``"ricd-i"`` (no item verification) or
        ``"ricd-ui"`` (no screening).
    max_group_users, max_group_items:
        Caps on *final* (screened, re-split) group size — desired property
        4b: organic group-buying / deal-hunter swarms form blocks that are
        structurally and behaviourally attack-like but much *larger* than
        crowd-worker groups ("crowd workers tend to attack ... on a small
        scale"), so oversized final groups are discarded.  The caps only
        apply to the full variant: before item verification re-splits
        components, group extents are merged blobs the caps would wrongly
        nuke.  ``None`` disables a cap.
    strict_feedback:
        When the feedback loop exhausts its rounds without meeting the
        expectation: raise :class:`FeedbackExhaustedError` if ``True``,
        otherwise return the best (largest) output seen.
    engine:
        Extraction engine: ``"reference"`` (pure-Python Algorithm 3, the
        paper-faithful implementation), ``"sparse"`` (scipy Gram-matrix
        evaluation — same fixpoint, roughly an order of magnitude faster
        on 10^5-edge graphs), ``"bitset"`` (numpy packed-bitset/CSR
        frontier kernel — same fixpoint again, another order of magnitude
        at paper-proportioned scales) or ``"auto"`` (bitset when numpy is
        installed and the graph exceeds ``auto_engine_edge_threshold``
        edges, sparse when only scipy is available).
    auto_engine_edge_threshold:
        Edge count above which ``engine="auto"`` switches from the
        reference to an accelerated engine.  The 20k default is where the
        accelerated engines' fixed costs amortise on typical marketplaces;
        benchmarks and the CLI can tune it per workload.
    shards:
        ``> 1`` partitions the click graph into that many (at most)
        component-aligned shards and runs extraction + screening per
        shard with globally resolved thresholds — identical output to
        the unsharded path (see :mod:`repro.shard.runner` for the
        argument, ``tests/shard/`` for the proof-by-test).  ``1`` (the
        default) keeps the classic single-graph path.
    shard_jobs:
        Worker processes for the per-shard fan-out when ``shards > 1``;
        ``1`` runs shards in-line.  Like ``jobs`` elsewhere, wall-clock
        wins need real cores.
    retries:
        Bounded retries for transient per-shard / per-worker failures
        (``0`` disables, reproducing the pre-resilience behaviour where
        a broken pool fell straight through to the serial path).  Each
        retry backs off exponentially with deterministic jitter; see
        :class:`repro.resilience.RetryPolicy`.
    deadline:
        Soft wall-clock budget in seconds for one ``detect`` call, or
        ``None`` for unbounded.  Expiry never aborts the run: stragglers
        are abandoned, remaining work completes serially, the feedback
        loop stops relaxing, and the result carries explicit
        ``degraded`` provenance.

    Examples
    --------
    >>> from repro.datagen import tiny_scenario
    >>> from repro.config import RICDParams
    >>> scenario = tiny_scenario()
    >>> detector = RICDDetector(params=RICDParams(k1=4, k2=4))
    >>> result = detector.detect(scenario.graph)
    >>> isinstance(result.suspicious_users, set)
    True
    """

    params: RICDParams = field(default_factory=RICDParams)
    screening: ScreeningParams = field(default_factory=ScreeningParams)
    feedback: FeedbackPolicy | None = None
    variant: RICDVariant = VARIANT_FULL
    max_group_users: int | None = 18
    max_group_items: int | None = None
    strict_feedback: bool = False
    engine: str = "reference"
    auto_engine_edge_threshold: int = 20_000
    shards: int = 1
    shard_jobs: int = 1
    retries: int = 0
    deadline: float | None = None

    #: Lazily built memoized threshold resolver (one per detector, so the
    #: (graph, version, params) memo survives across detect calls).
    _threshold_stage: ResolveThresholds | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        """Drop the weakref-bearing resolver; workers re-derive on first use."""
        state = self.__dict__.copy()
        state["_threshold_stage"] = None
        return state

    #: Detector name used by the evaluation harness and reports.
    @property
    def name(self) -> str:
        """Short display name (matches the paper's method labels)."""
        return {
            VARIANT_FULL: "RICD",
            VARIANT_NO_ITEM: "RICD-I",
            VARIANT_NO_SCREEN: "RICD-UI",
        }[self.variant]

    def __post_init__(self) -> None:
        if self.variant not in _VALID_VARIANTS:
            raise ValueError(
                f"variant must be one of {_VALID_VARIANTS}, got {self.variant!r}"
            )
        if self.engine not in ("reference", "sparse", "bitset", "auto"):
            raise ValueError(
                "engine must be 'reference', 'sparse', 'bitset' or 'auto', "
                f"got {self.engine!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_jobs < 1:
            raise ValueError(f"shard_jobs must be >= 1, got {self.shard_jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    # ------------------------------------------------------------------
    # Plan building: detector configuration -> pipeline stages
    # ------------------------------------------------------------------
    def _thresholds(self) -> ResolveThresholds:
        """This detector's memoized threshold-resolution stage.

        The derive hooks route through this module's ``_derive_*``
        wrappers, which read ``pareto_hot_threshold`` /
        ``t_click_from_graph`` from the module namespace at call time —
        the interception seam the threshold-globality tests patch.
        """
        if self._threshold_stage is None:
            self._threshold_stage = ResolveThresholds(
                derive_t_hot=_derive_t_hot, derive_t_click=_derive_t_click
            )
        return self._threshold_stage

    def _module_stages(self) -> tuple:
        """Modules 1 + 2 as stage objects, gated by the variant."""
        return (
            Extraction(
                engine=self.engine,
                auto_edge_threshold=self.auto_engine_edge_threshold,
            ),
            Screening(
                enabled=self.variant != VARIANT_NO_SCREEN,
                item_verification=self.variant == VARIANT_FULL,
            ),
            SizeCaps(
                max_users=self.max_group_users,
                max_items=self.max_group_items,
                enabled=self.variant == VARIANT_FULL,
            ),
        )

    def build_pipeline(self, sharded: bool | None = None) -> DetectionPipeline:
        """Assemble the detection plan this detector's ``detect`` runs.

        ``sharded`` forces the execution strategy; ``None`` (the default)
        follows ``self.shards``.  The sharded runner passes ``True`` so
        ``detect_sharded`` exercises the partition + merge machinery even
        with ``shards = 1`` (the metamorphic suite's base case).
        """
        use_sharded = self.shards > 1 if sharded is None else sharded
        retry = RetryPolicy(max_retries=self.retries) if self.retries > 0 else None
        strategy = (
            ShardedExecution(
                modules=self, shards=self.shards, jobs=self.shard_jobs, retry=retry
            )
            if use_sharded
            else SingleGraphExecution(modules=self)
        )
        return DetectionPipeline(
            thresholds=self._thresholds(),
            seed=SeedExpansion(hops=2),
            strategy=strategy,
            identify=Identification(),
            feedback=(
                FeedbackDriver(self.feedback, strict=self.strict_feedback)
                if self.feedback is not None
                else None
            ),
            deadline_seconds=self.deadline,
        )

    # ------------------------------------------------------------------
    def resolve_thresholds(self, graph: BipartiteGraph) -> RICDParams:
        """Fill in data-derived ``t_hot`` / ``t_click`` (Section IV).

        Resolution is memoized against the graph's mutation version, so
        feedback rounds and repeated ``detect`` calls on one graph (suites,
        sweeps, benchmarks) derive the marketplace statistics once.
        """
        return self._thresholds().resolve(graph, self.params)

    def _run_modules(
        self,
        graph: BipartiteGraph,
        params: RICDParams,
        screening: ScreeningParams,
        timer: Stopwatch,
    ) -> list[SuspiciousGroup]:
        """Modules 1 + 2 with the given (possibly relaxed) parameters.

        The unit of work every execution strategy schedules — in-line, per
        shard, or in a pool worker — and the seam the incremental layer's
        dirty-region recheck reuses.  Subclass overrides therefore apply
        in every execution mode.
        """
        ctx = PipelineContext(graph=graph, params=params, screening=screening, timer=timer)
        run_stages(ctx, self._module_stages())
        return ctx.groups

    def detect(
        self,
        graph: BipartiteGraph,
        seed_users: Sequence[Node] = (),
        seed_items: Sequence[Node] = (),
    ) -> DetectionResult:
        """Run the full framework on ``graph``.

        Parameters
        ----------
        graph:
            The click graph (never mutated).
        seed_users, seed_items:
            Known abnormal nodes from the business department; when given,
            extraction runs on their two-hop neighbourhood only
            (Algorithm 2's seed-pruned ``MaxBiGraph``).  Thresholds are
            still derived from the *full* graph, since they are global
            marketplace statistics.
        """
        # Same obs namespace as the baselines' shared hook, so traces of a
        # mixed suite line up: detector.<name>.<stage>.
        with obs.span(f"detector.{self.name}"):
            result = self.build_pipeline().run(
                graph, self.params, self.screening, tuple(seed_users), tuple(seed_items)
            )
        obs.count(f"detector.{self.name}.groups", len(result.groups))
        obs.count(f"detector.{self.name}.users", len(result.suspicious_users))
        obs.count(f"detector.{self.name}.items", len(result.suspicious_items))
        return result
