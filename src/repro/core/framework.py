"""The RICD detection framework (Fig. 4) and its ablation variants.

:class:`RICDDetector` chains the three modules of the paper:

1. **Suspicious group detection** — optional seed expansion (Algorithm 2's
   ``GraphGenerator``) followed by ``(alpha, k1, k2)``-extension biclique
   extraction (Algorithm 3);
2. **Suspicious group screening** — user behaviour check + item behaviour
   verification (switchable, giving the RICD / RICD-I / RICD-UI variants
   of Table VI);
3. **Suspicious group identification** — risk-score ranking plus the
   Fig. 7 feedback loop that relaxes parameters until the output meets the
   end-user expectation.

The detector is stateless between calls: thresholds left as ``None`` in
the parameters are re-derived from each input graph exactly as Section IV
prescribes (Pareto rule for ``T_hot``, Eq. 4 for ``T_click``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from .. import obs
from .._util import Stopwatch
from ..config import FeedbackPolicy, RICDParams, ScreeningParams
from ..errors import FeedbackExhaustedError
from ..graph.bipartite import BipartiteGraph
from ..graph.builders import seed_expansion
from .extraction import extract_groups
from .groups import DetectionResult, SuspiciousGroup
from .identification import adjust_parameters, assemble_result, output_size
from .screening import screen_groups
from .thresholds import pareto_hot_threshold, t_click_from_graph

__all__ = ["RICDDetector", "RICDVariant", "VARIANT_FULL", "VARIANT_NO_ITEM", "VARIANT_NO_SCREEN"]

Node = Hashable

#: Full framework: both screening steps (the paper's "RICD").
VARIANT_FULL = "ricd"
#: User behaviour check only (the paper's "RICD-I").
VARIANT_NO_ITEM = "ricd-i"
#: No screening module at all (the paper's "RICD-UI").
VARIANT_NO_SCREEN = "ricd-ui"

RICDVariant = str  # alias for documentation purposes

_VALID_VARIANTS = (VARIANT_FULL, VARIANT_NO_ITEM, VARIANT_NO_SCREEN)


@dataclass
class RICDDetector:
    """The "Ride Item's Coattails" attack detector.

    Parameters
    ----------
    params:
        Extraction parameters.  ``t_hot``/``t_click`` left at ``None`` are
        derived from the input graph per Section IV.
    screening:
        Screening-module parameters.
    feedback:
        Fig. 7 policy; ``None`` disables the feedback loop.
    variant:
        ``"ricd"`` (full), ``"ricd-i"`` (no item verification) or
        ``"ricd-ui"`` (no screening).
    max_group_users, max_group_items:
        Caps on *final* (screened, re-split) group size — desired property
        4b: organic group-buying / deal-hunter swarms form blocks that are
        structurally and behaviourally attack-like but much *larger* than
        crowd-worker groups ("crowd workers tend to attack ... on a small
        scale"), so oversized final groups are discarded.  The caps only
        apply to the full variant: before item verification re-splits
        components, group extents are merged blobs the caps would wrongly
        nuke.  ``None`` disables a cap.
    strict_feedback:
        When the feedback loop exhausts its rounds without meeting the
        expectation: raise :class:`FeedbackExhaustedError` if ``True``,
        otherwise return the best (largest) output seen.
    engine:
        Extraction engine: ``"reference"`` (pure-Python Algorithm 3, the
        paper-faithful implementation), ``"sparse"`` (scipy Gram-matrix
        evaluation — same fixpoint, roughly an order of magnitude faster
        on 10^5-edge graphs) or ``"auto"`` (sparse when scipy is installed
        and the graph exceeds ``auto_engine_edge_threshold`` edges).
    auto_engine_edge_threshold:
        Edge count above which ``engine="auto"`` switches from the
        reference to the sparse engine.  The 20k default is where the
        sparse engine's fixed costs amortise on typical marketplaces;
        benchmarks and the CLI can tune it per workload.
    shards:
        ``> 1`` partitions the click graph into that many (at most)
        component-aligned shards and runs extraction + screening per
        shard with globally resolved thresholds — identical output to
        the unsharded path (see :mod:`repro.shard.runner` for the
        argument, ``tests/shard/`` for the proof-by-test).  ``1`` (the
        default) keeps the classic single-graph path.
    shard_jobs:
        Worker processes for the per-shard fan-out when ``shards > 1``;
        ``1`` runs shards in-line.  Like ``jobs`` elsewhere, wall-clock
        wins need real cores.

    Examples
    --------
    >>> from repro.datagen import tiny_scenario
    >>> from repro.config import RICDParams
    >>> scenario = tiny_scenario()
    >>> detector = RICDDetector(params=RICDParams(k1=4, k2=4))
    >>> result = detector.detect(scenario.graph)
    >>> isinstance(result.suspicious_users, set)
    True
    """

    params: RICDParams = field(default_factory=RICDParams)
    screening: ScreeningParams = field(default_factory=ScreeningParams)
    feedback: FeedbackPolicy | None = None
    variant: RICDVariant = VARIANT_FULL
    max_group_users: int | None = 18
    max_group_items: int | None = None
    strict_feedback: bool = False
    engine: str = "reference"
    auto_engine_edge_threshold: int = 20_000
    shards: int = 1
    shard_jobs: int = 1

    #: Memoized (graph, version) -> resolved params; detection output is
    #: unaffected (thresholds are pure functions of the graph state), so the
    #: detector stays semantically stateless.
    _threshold_cache: tuple[
        "weakref.ref[BipartiteGraph]", int, RICDParams, RICDParams
    ] | None = field(default=None, init=False, repr=False, compare=False)

    def __getstate__(self) -> dict:
        """Drop the weakref-bearing cache; workers re-derive on first use."""
        state = self.__dict__.copy()
        state["_threshold_cache"] = None
        return state

    #: Detector name used by the evaluation harness and reports.
    @property
    def name(self) -> str:
        """Short display name (matches the paper's method labels)."""
        return {
            VARIANT_FULL: "RICD",
            VARIANT_NO_ITEM: "RICD-I",
            VARIANT_NO_SCREEN: "RICD-UI",
        }[self.variant]

    def __post_init__(self) -> None:
        if self.variant not in _VALID_VARIANTS:
            raise ValueError(
                f"variant must be one of {_VALID_VARIANTS}, got {self.variant!r}"
            )
        if self.engine not in ("reference", "sparse", "auto"):
            raise ValueError(
                f"engine must be 'reference', 'sparse' or 'auto', got {self.engine!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_jobs < 1:
            raise ValueError(f"shard_jobs must be >= 1, got {self.shard_jobs}")

    def _extract(self, graph: BipartiteGraph, params: RICDParams):
        """Run the configured extraction engine."""
        from .extraction_sparse import extract_groups_sparse, sparse_available

        use_sparse = self.engine == "sparse" or (
            self.engine == "auto"
            and sparse_available()
            and graph.num_edges > self.auto_engine_edge_threshold
        )
        obs.gauge("detect.engine", "sparse" if use_sparse else "reference")
        if use_sparse:
            if not sparse_available():
                raise RuntimeError("engine='sparse' requires scipy")
            return extract_groups_sparse(graph, params)
        return extract_groups(graph, params)

    # ------------------------------------------------------------------
    def resolve_thresholds(self, graph: BipartiteGraph) -> RICDParams:
        """Fill in data-derived ``t_hot`` / ``t_click`` (Section IV).

        Resolution is memoized against the graph's mutation version, so
        feedback rounds and repeated ``detect`` calls on one graph (suites,
        sweeps, benchmarks) derive the marketplace statistics once.
        """
        if self.params.t_hot is not None and self.params.t_click is not None:
            return self.params
        cached = self._threshold_cache
        if (
            cached is not None
            and cached[0]() is graph
            and cached[1] == graph.version
            and cached[2] == self.params
        ):
            obs.count("detect.threshold_cache_hits")
            return cached[3]
        obs.count("detect.threshold_cache_misses")
        changes: dict[str, float] = {}
        if self.params.t_hot is None:
            changes["t_hot"] = float(pareto_hot_threshold(graph))
        if self.params.t_click is None:
            changes["t_click"] = float(t_click_from_graph(graph))
        resolved = self.params.replace(**changes)
        self._threshold_cache = (weakref.ref(graph), graph.version, self.params, resolved)
        return resolved

    def _run_modules(
        self,
        graph: BipartiteGraph,
        params: RICDParams,
        screening: ScreeningParams,
        timer: Stopwatch,
    ) -> list[SuspiciousGroup]:
        """Modules 1 + 2 with the given (possibly relaxed) parameters."""
        with timer.measure("detection"), obs.span("extraction"):
            groups = self._extract(graph, params)
        with timer.measure("screening"), obs.span("screening"):
            if self.variant == VARIANT_NO_SCREEN:
                screened = groups
            else:
                screened = screen_groups(
                    graph,
                    groups,
                    t_hot=params.t_hot,  # resolved by caller
                    t_click=params.t_click,
                    params=screening,
                    do_item_verification=self.variant == VARIANT_FULL,
                )
            if self.variant == VARIANT_FULL:
                screened = [
                    group
                    for group in screened
                    if (
                        self.max_group_users is None
                        or len(group.users) <= self.max_group_users
                    )
                    and (
                        self.max_group_items is None
                        or len(group.items) <= self.max_group_items
                    )
                ]
        return screened

    def detect(
        self,
        graph: BipartiteGraph,
        seed_users: Sequence[Node] = (),
        seed_items: Sequence[Node] = (),
    ) -> DetectionResult:
        """Run the full framework on ``graph``.

        Parameters
        ----------
        graph:
            The click graph (never mutated).
        seed_users, seed_items:
            Known abnormal nodes from the business department; when given,
            extraction runs on their two-hop neighbourhood only
            (Algorithm 2's seed-pruned ``MaxBiGraph``).  Thresholds are
            still derived from the *full* graph, since they are global
            marketplace statistics.
        """
        # Same obs namespace as the baselines' shared hook, so traces of a
        # mixed suite line up: detector.<name>.<stage>.
        with obs.span(f"detector.{self.name}"):
            result = self._detect(graph, seed_users, seed_items)
        obs.count(f"detector.{self.name}.groups", len(result.groups))
        obs.count(f"detector.{self.name}.users", len(result.suspicious_users))
        obs.count(f"detector.{self.name}.items", len(result.suspicious_items))
        return result

    def _detect(
        self,
        graph: BipartiteGraph,
        seed_users: Sequence[Node],
        seed_items: Sequence[Node],
    ) -> DetectionResult:
        """The framework body ``detect`` wraps with its observability span."""
        if self.shards > 1:
            from ..shard.runner import detect_sharded

            return detect_sharded(self, graph, seed_users, seed_items)
        timer = Stopwatch()
        with obs.span("thresholds"):
            params = self.resolve_thresholds(graph)

        with timer.measure("detection"):
            if seed_users or seed_items:
                with obs.span("seed_expansion"):
                    working = seed_expansion(graph, seed_users, seed_items, hops=2)
            else:
                working = graph

        screened = self._run_modules(working, params, self.screening, timer)
        rounds = 0

        if self.feedback is not None:
            screening = self.screening
            best = screened
            while (
                output_size(screened) < self.feedback.expectation
                and rounds < self.feedback.max_rounds
            ):
                params, screening = adjust_parameters(params, screening, self.feedback)
                rounds += 1
                screened = self._run_modules(working, params, screening, timer)
                if output_size(screened) > output_size(best):
                    best = screened
            if output_size(screened) < self.feedback.expectation:
                if self.strict_feedback:
                    raise FeedbackExhaustedError(
                        rounds, output_size(screened), self.feedback.expectation
                    )
                screened = best
            obs.count("detect.feedback_rounds", rounds)

        with timer.measure("identification"), obs.span("identification"):
            result = assemble_result(graph, screened)
        result.timings = dict(timer.durations)
        result.feedback_rounds = rounds
        return result
