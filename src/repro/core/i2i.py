"""The item-to-item (I2I) relevance score model of Section IV-A.

Fig. 3 of the paper: given a *hot item* and the set of ordinary items
co-clicked with it, the I2I score of ordinary item ``i`` is

.. math::  S_i = C_i / (C_1 + C_2 + ... + C_n)           (Eq. 1)

where ``C_i`` counts clicks on ``i`` by users who also clicked the hot
item.  This module provides the score itself, the attacker's gain function
(Eq. 2) and the closed-form optimal strategy (Eq. 3): *click the hot item
once, then spend the entire remaining budget on the target item* —
the behavioural assumption the attack injector and the user-behaviour
check are built on.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..graph.bipartite import BipartiteGraph

__all__ = [
    "co_click_counts",
    "i2i_scores",
    "attacked_i2i_score",
    "optimal_attack_allocation",
    "attack_score_gain",
]

Node = Hashable


def co_click_counts(graph: BipartiteGraph, hot_item: Node) -> dict[Node, int]:
    """``C_i`` per co-clicked item: clicks on ``i`` from users who clicked ``hot_item``.

    The production system conditions on click order ("has been clicked
    before"); the offline click table has no timestamps, so — exactly like
    the paper's own offline analysis — co-occurrence in a user's click list
    stands in for temporal precedence.
    """
    counts: dict[Node, int] = {}
    for user in graph.item_neighbors(hot_item):
        for item, clicks in graph.user_neighbors(user).items():
            if item != hot_item:
                counts[item] = counts.get(item, 0) + clicks
    return counts


def i2i_scores(graph: BipartiteGraph, hot_item: Node) -> dict[Node, float]:
    """Eq. 1: normalised I2I scores of every item co-clicked with ``hot_item``.

    Scores sum to 1 over the co-clicked set (empty dict when nothing
    co-clicks).
    """
    counts = co_click_counts(graph, hot_item)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {item: count / total for item, count in counts.items()}


def attacked_i2i_score(
    existing_counts: Mapping[Node, int] | int,
    target_initial: int,
    extra_target_clicks: int,
    extra_other_clicks: int = 0,
) -> float:
    """Eq. 2: the target's I2I score after an attack allocation.

    Parameters
    ----------
    existing_counts:
        Either the mapping of pre-attack co-click counts ``{item: C_i}``
        (the target excluded) or their sum directly.
    target_initial:
        ``C_{n+1}`` — the target's co-click count before the extra clicks
        (1 right after the link-establishing click pair).
    extra_target_clicks:
        ``C'`` — additional clicks spent on the target.
    extra_other_clicks:
        ``C - C'`` — additional clicks wasted on other items (camouflage).

    Returns
    -------
    float
        ``S_{n+1}`` after the allocation.
    """
    if target_initial < 0 or extra_target_clicks < 0 or extra_other_clicks < 0:
        raise ValueError("click counts must be non-negative")
    baseline = (
        existing_counts
        if isinstance(existing_counts, int)
        else sum(existing_counts.values())
    )
    numerator = target_initial + extra_target_clicks
    denominator = baseline + numerator + extra_other_clicks
    if denominator == 0:
        return 0.0
    return numerator / denominator


def optimal_attack_allocation(click_budget: int) -> tuple[int, int]:
    """Eq. 3: the allocation maximising the target's I2I score.

    With a budget ``C_b`` (two clicks of which must establish the
    hot-target link), the maximum is achieved iff ``C' = C = C_b - 2``:
    all remaining clicks go to the target item, none are "wasted" on other
    items.  Returns ``(clicks_on_hot, clicks_on_target)``.

    >>> optimal_attack_allocation(15)
    (1, 14)
    """
    if click_budget < 2:
        raise ValueError(f"click budget must be >= 2 to establish a link, got {click_budget}")
    return 1, click_budget - 1


def attack_score_gain(
    existing_counts: Mapping[Node, int] | int, click_budget: int
) -> float:
    """The best achievable ``S_{n+1}`` for a given budget (Eq. 3 upper bound).

    Monotone increasing in the budget and decreasing in the hot item's
    existing co-click volume — the quantitative reason attackers prefer
    large budgets on targets over spreading clicks.
    """
    _hot_clicks, target_clicks = optimal_attack_allocation(click_budget)
    # After the link is established C_{n+1} = 1; the remaining budget beyond
    # the two link clicks is C_b - 2, all of it optimally on the target.
    return attacked_i2i_score(
        existing_counts,
        target_initial=1,
        extra_target_clicks=target_clicks - 1,
        extra_other_clicks=0,
    )
