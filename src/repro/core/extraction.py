"""Algorithm 3 — the ``(alpha, k1, k2)``-extension biclique extraction.

Enumerating maximal bicliques is #P-complete, so the paper inverts the
problem: instead of *finding* dense structures it *prunes away* everything
that provably cannot belong to one, using two necessary conditions:

* **CorePruning** (Lemma 1): inside an ``(alpha, k1, k2)``-extension
  biclique every user has degree >= ``ceil(alpha * k2)`` and every item
  degree >= ``ceil(alpha * k1)``.  Vertices below the floor are removed —
  cascading, because each removal lowers neighbours' degrees.

* **SquarePruning** (Lemma 2): every user ``u`` of such a structure has at
  least ``k1`` users (itself included — Definition 4 does not exclude
  ``u`` from its own ``(alpha, k)``-neighbourhood, and Lemma 2 is only
  satisfiable for an exactly-``k1``-user core if ``u`` counts) whose
  common-item count with ``u`` reaches ``ceil(k2 * alpha)``; mirrored for
  items.  Candidates are visited in non-decreasing order of two-hop
  neighbourhood size (the paper's ``reduce2Hop`` ordering), so cheap
  removals happen first and shrink the later, expensive checks.

What survives both prunes is split into connected components; components
large enough to host a ``(k1, k2)`` core are the suspicious groups handed
to the screening module.
"""

from __future__ import annotations

from typing import Hashable

from .. import obs
from .._util import ceil_frac, peak_rss_mb
from ..config import RICDParams
from ..graph.bipartite import BipartiteGraph
from ..graph.views import connected_components
from .groups import SuspiciousGroup

__all__ = ["core_pruning", "square_pruning", "prune_to_fixpoint", "extract_groups"]

Node = Hashable


def core_pruning(graph: BipartiteGraph, params: RICDParams) -> bool:
    """Cascading degree prune (Algorithm 3, ``CorePruning``), in place.

    Removes users with degree below ``ceil(alpha * k2)`` and items with
    degree below ``ceil(alpha * k1)``.  Removals cascade through a
    worklist until every surviving vertex satisfies Lemma 1.

    Returns ``True`` if anything was removed.
    """
    user_floor = params.user_degree_floor
    item_floor = params.item_degree_floor
    users_removed = 0
    items_removed = 0

    # Seed the worklist with every violating vertex, then cascade.
    user_queue = [u for u in graph.users() if graph.user_degree(u) < user_floor]
    item_queue = [i for i in graph.items() if graph.item_degree(i) < item_floor]
    while user_queue or item_queue:
        while user_queue:
            user = user_queue.pop()
            if not graph.has_user(user):
                continue
            neighbors = list(graph.user_neighbors(user))
            graph.remove_user(user)
            users_removed += 1
            for item in neighbors:
                if graph.has_item(item) and graph.item_degree(item) < item_floor:
                    item_queue.append(item)
        while item_queue:
            item = item_queue.pop()
            if not graph.has_item(item):
                continue
            neighbors = list(graph.item_neighbors(item))
            graph.remove_item(item)
            items_removed += 1
            for user in neighbors:
                if graph.has_user(user) and graph.user_degree(user) < user_floor:
                    user_queue.append(user)
    if users_removed or items_removed:
        obs.count("extract.core.users_removed", users_removed)
        obs.count("extract.core.items_removed", items_removed)
    return bool(users_removed or items_removed)


def _two_hop_size_user(graph: BipartiteGraph, user: Node) -> int:
    """Cheap proxy for the user's two-hop neighbourhood size (with multiplicity)."""
    return sum(graph.item_degree(item) for item in graph.user_neighbors(user))


def _two_hop_size_item(graph: BipartiteGraph, item: Node) -> int:
    """Cheap proxy for the item's two-hop neighbourhood size (with multiplicity)."""
    return sum(graph.user_degree(user) for user in graph.item_neighbors(item))


def _square_prune_users(
    graph: BipartiteGraph, params: RICDParams, ordered: bool = True
) -> bool:
    """One user-side SquarePruning pass; returns True if anything was removed."""
    common_floor = ceil_frac(params.alpha, params.k2)
    if ordered:
        order = sorted(
            graph.users(), key=lambda u: (_two_hop_size_user(graph, u), str(u))
        )
    else:
        order = sorted(graph.users(), key=str)
    removed_any = False
    removed_count = 0
    for user in order:
        if not graph.has_user(user):
            continue
        # Count users (self included, per Definition 4 / Lemma 2) whose
        # common-item count with `user` reaches the floor.
        counts: dict[Node, int] = {}
        for item in graph.user_neighbors(user):
            for other in graph.item_neighbors(item):
                if other != user:
                    counts[other] = counts.get(other, 0) + 1
        num = sum(1 for value in counts.values() if value >= common_floor)
        if graph.user_degree(user) >= common_floor:
            num += 1  # self
        if num < params.k1:
            graph.remove_user(user)
            removed_any = True
            removed_count += 1
    if removed_count:
        obs.count("extract.square.users_removed", removed_count)
    return removed_any


def _square_prune_items(
    graph: BipartiteGraph, params: RICDParams, ordered: bool = True
) -> bool:
    """One item-side SquarePruning pass; returns True if anything was removed."""
    common_floor = ceil_frac(params.alpha, params.k1)
    if ordered:
        order = sorted(
            graph.items(), key=lambda i: (_two_hop_size_item(graph, i), str(i))
        )
    else:
        order = sorted(graph.items(), key=str)
    removed_any = False
    removed_count = 0
    for item in order:
        if not graph.has_item(item):
            continue
        counts: dict[Node, int] = {}
        for user in graph.item_neighbors(item):
            for other in graph.user_neighbors(user):
                if other != item:
                    counts[other] = counts.get(other, 0) + 1
        num = sum(1 for value in counts.values() if value >= common_floor)
        if graph.item_degree(item) >= common_floor:
            num += 1  # self
        if num < params.k2:
            graph.remove_item(item)
            removed_any = True
            removed_count += 1
    if removed_count:
        obs.count("extract.square.items_removed", removed_count)
    return removed_any


def square_pruning(
    graph: BipartiteGraph, params: RICDParams, ordered: bool = True
) -> bool:
    """Algorithm 3's ``SquarePruning`` (one user pass + one item pass), in place.

    ``ordered=False`` disables the paper's non-decreasing two-hop-size
    candidate ordering (visiting in plain id order instead) — the knob the
    ordering ablation benchmark flips; the paper notes the "selection
    order of candidate vertices will affect the number of intermediates".

    Returns ``True`` if anything was removed.
    """
    removed_users = _square_prune_users(graph, params, ordered)
    removed_items = _square_prune_items(graph, params, ordered)
    return removed_users or removed_items


def prune_to_fixpoint(
    graph: BipartiteGraph, params: RICDParams, iterate: bool = True, ordered: bool = True
) -> BipartiteGraph:
    """Alternate CorePruning and SquarePruning until stable, in place.

    Each SquarePruning removal lowers degrees elsewhere, re-exposing
    CorePruning violations, so the passes alternate until neither removes
    anything.  ``iterate=False`` performs exactly one CorePruning and one
    SquarePruning pass (Algorithm 3 as literally written) — kept for the
    fixpoint ablation benchmark.

    Returns the same (now pruned) graph for chaining.
    """
    core_pruning(graph, params)
    if not iterate:
        square_pruning(graph, params, ordered)
        obs.count("extract.fixpoint_rounds", 1)
        obs.gauge("extract.peak_rss_mb", round(peak_rss_mb(), 1))
        return graph
    changed = True
    rounds = 0
    while changed:
        rounds += 1
        changed = square_pruning(graph, params, ordered)
        if changed:
            core_pruning(graph, params)
    obs.count("extract.fixpoint_rounds", rounds)
    obs.gauge("extract.peak_rss_mb", round(peak_rss_mb(), 1))
    return graph


def extract_groups(
    graph: BipartiteGraph,
    params: RICDParams,
    iterate: bool = True,
    max_users: int | None = None,
    max_items: int | None = None,
    copy: bool = True,
) -> list[SuspiciousGroup]:
    """Full Algorithm 3: prune, then split survivors into candidate groups.

    Surviving vertices are grouped by connected component; components too
    small to host a ``(k1, k2)`` biclique core are dropped, and — per
    desired property (4b) of Section III-B — components exceeding
    ``max_users``/``max_items`` can be dropped too, to avoid flagging
    organic group-buying swarms.

    Parameters
    ----------
    graph:
        The click graph.  Left untouched when ``copy=True`` (default);
        pruned in place otherwise.
    params:
        Extraction parameters (``k1``, ``k2``, ``alpha``).
    iterate:
        Prune to fixpoint (default) or single-pass.
    max_users, max_items:
        Optional upper bounds on group size.
    copy:
        Whether to work on a private copy of ``graph``.

    Returns
    -------
    list[SuspiciousGroup]
        Candidate groups, largest first.
    """
    working = graph.copy() if copy else graph
    with obs.span("prune"):
        prune_to_fixpoint(working, params, iterate=iterate)
    groups: list[SuspiciousGroup] = []
    dropped = 0
    with obs.span("components"):
        for users, items in connected_components(working):
            if len(users) < params.k1 or len(items) < params.k2:
                dropped += 1
                continue
            if (max_users is not None and len(users) > max_users) or (
                max_items is not None and len(items) > max_items
            ):
                dropped += 1
                continue
            groups.append(SuspiciousGroup(users=users, items=items))
    obs.count("extract.components_dropped", dropped)
    obs.count("extract.groups", len(groups))
    return groups
