"""Incremental (online) detection — the paper's stated future work.

Section VIII: "it is important to study how to add an incremental data
processing module to this framework so that it can be applied online to
perform the detection in dynamic graphs ... the earlier these attacks are
detected in real time, the more losses can be reduced."

:class:`IncrementalRICD` implements that module with a *dirty-region*
strategy:

1. click batches are applied to a live copy of the graph;
2. every user/item touched by a batch is marked dirty;
3. on demand (or automatically every ``recheck_batches`` batches), the
   detector re-runs — not on the whole graph, but on the two-hop
   neighbourhood of the dirty region (the same seed-expansion primitive
   Algorithm 2 uses for business-department seeds), since an
   ``(alpha, k1, k2)``-extension biclique gaining an edge must contain a
   dirty node, and every node of a group containing a dirty node lies
   within two hops of it;
4. newly found groups are merged into the running result; groups whose
   nodes were untouched since the last full pass stay valid.

Thresholds (``T_hot``/``T_click``) are global statistics, so they are
re-derived from the *full* live graph at every recheck, exactly as the
batch framework does.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable

from .. import obs
from .._util import Stopwatch
from ..config import RICDParams, ScreeningParams
from ..errors import ReproError
from ..graph.bipartite import BipartiteGraph
from ..graph.builders import seed_expansion
from ..graph.indexed import snapshot_or_none
from ..pipeline import Identification, PipelineContext
from ..resilience.faults import inject
from .framework import RICDDetector
from .groups import DetectionResult, SuspiciousGroup

__all__ = ["ClickBatch", "IncrementalRICD"]

Node = Hashable


@dataclass(frozen=True)
class ClickBatch:
    """One batch of new click records ``(user, item, clicks)``."""

    records: tuple[tuple[Node, Node, int], ...]

    @staticmethod
    def of(records: Iterable[tuple[Node, Node, int]]) -> "ClickBatch":
        """Build a batch from any iterable of records."""
        return ClickBatch(records=tuple(records))

    def __len__(self) -> int:
        return len(self.records)


class IncrementalRICD:
    """Online RICD over a stream of click batches.

    Examples
    --------
    >>> from repro.datagen import tiny_scenario
    >>> from repro.config import RICDParams
    >>> scenario = tiny_scenario()
    >>> online = IncrementalRICD(
    ...     scenario.graph, params=RICDParams(k1=4, k2=4), recheck_batches=1
    ... )
    >>> batch = ClickBatch.of([("fresh_user", "i0", 2)])
    >>> result = online.ingest(batch)
    >>> isinstance(result, type(online.current_result))
    True
    """

    def __init__(
        self,
        initial_graph: BipartiteGraph,
        params: RICDParams | None = None,
        screening: ScreeningParams | None = None,
        recheck_batches: int | None = 10,
        max_group_users: int | None = 18,
        traverse_degree_cap: int | None = None,
        engine: str = "reference",
        time_source: Callable[[], float] | None = None,
        *,
        adopt_graph: bool = False,
        initial_result: DetectionResult | None = None,
    ):
        """``traverse_degree_cap`` bounds the dirty-region expansion: the
        BFS does not traverse *through* nodes above the cap (hub items
        would otherwise drag their whole clicker set into every recheck;
        attack cores survive because co-workers always share low-degree
        target items).  ``None`` re-derives 10x the mean item degree from
        the *live* graph at every recheck — a long-lived stream can grow
        an order of magnitude past its bootstrap, and a cap frozen at
        ``t=0`` would silently shrink the dirty region relative to the
        marketplace.  An explicit cap stays fixed forever; pass a huge
        value to disable the cap.

        ``recheck_batches=None`` disables the built-in every-N-batches
        cadence entirely: rechecks then happen only when a caller invokes
        :meth:`recheck` — the mode the streaming service uses, where a
        bounded-staleness scheduler owns the cadence decision.

        ``time_source`` (a ``() -> float`` clock read, e.g. the serving
        layer's :meth:`~repro.serve.clock.Clock.now`) lets the detector
        stamp when its dirty region *started* accumulating, exposed as
        :attr:`dirty_since` / :meth:`dirty_age` — the signal behind the
        scheduler's ``max_age`` staleness bound.  Without one, ages read
        as zero and only size/batch bounds can fire.

        ``adopt_graph`` takes ownership of ``initial_graph`` instead of
        copying it — the warm-start path, where the graph arrived from a
        store with its memoized array snapshot installed and a defensive
        copy would throw that warmth away.  ``initial_result`` skips the
        bootstrap full pass by installing a (persisted) result as the
        starting state; the caller asserts it matches the graph."""
        if recheck_batches is not None and recheck_batches < 1:
            raise ValueError(f"recheck_batches must be >= 1, got {recheck_batches}")
        self._explicit_traverse_cap = traverse_degree_cap is not None
        if traverse_degree_cap is None:
            traverse_degree_cap = self._derive_traverse_cap(initial_graph)
        self._traverse_degree_cap = traverse_degree_cap
        self._graph = initial_graph if adopt_graph else initial_graph.copy()
        self._detector = RICDDetector(
            params=params or RICDParams(),
            screening=screening or ScreeningParams(),
            max_group_users=max_group_users,
            engine=engine,
        )
        self._recheck_batches = recheck_batches
        self._time_source = time_source
        self._dirty_since: float | None = None
        self._dirty_users: set[Node] = set()
        self._dirty_items: set[Node] = set()
        self._batches_since_recheck = 0
        self._store = None
        self._pending_records: list[tuple[Node, Node, int]] = []
        self._pending_destructive = False
        if initial_result is not None:
            self._result = initial_result
        else:
            # Bootstrap with one full pass so `current_result` is
            # meaningful from the start.
            self._result = self._detector.detect(self._graph)

    @classmethod
    def from_store(
        cls,
        store,
        params: RICDParams | None = None,
        screening: ScreeningParams | None = None,
        recheck_batches: int | None = None,
        max_group_users: int | None = 18,
        traverse_degree_cap: int | None = None,
        engine: str = "reference",
        time_source: Callable[[], float] | None = None,
    ) -> "IncrementalRICD":
        """Resume from the latest checkpoint of a detection store.

        ``store`` is an open :class:`~repro.store.DetectionStore` (or a
        path to one).  The head graph loads warm *and lazy*: the array
        snapshot installs as the mutable graph's backing truth in O(1) —
        no per-edge rebuild loop — and per-vertex adjacency materializes
        only where the stream actually writes (ingested clicks hydrate
        their two endpoints; destructive cleanup hydrates per edge it
        deletes), so resume latency is independent of graph size.  The
        snapshot doubles as the memoized array view, so the first
        ``indexed()`` access is a cache hit.  The
        persisted result becomes the starting state — degraded/stale
        provenance intact, no bootstrap pass — and persisted thresholds
        are rehydrated into the detector's memo so the first resolution
        is a ``detect.threshold_cache_hits``.  Parameters default to the
        values persisted with the head version, so a resumed stream keeps
        detecting with the configuration it was persisted under.
        """
        if isinstance(store, (str, Path)):
            from ..store import DetectionStore

            store = DetectionStore.open(store)
        stored = store.load_thresholds()
        stored_input = stored_resolved = stored_screening = None
        if stored is not None:
            stored_input, stored_resolved, stored_screening = stored
        if params is None:
            params = stored_input
        if screening is None:
            screening = stored_screening
        graph = store.load_graph()
        online = cls(
            graph,
            params=params,
            screening=screening,
            recheck_batches=recheck_batches,
            max_group_users=max_group_users,
            traverse_degree_cap=traverse_degree_cap,
            engine=engine,
            time_source=time_source,
            adopt_graph=True,
            initial_result=store.load_result(),
        )
        if stored_resolved is not None and online._detector.params == stored_input:
            online._detector._thresholds().rehydrate(graph, stored_input, stored_resolved)
        online.attach_store(store)
        return online

    def attach_store(self, store) -> None:
        """Persist every subsequent recheck's state into ``store``.

        Successful and stale rechecks alike commit a new store version —
        a delta of the records ingested since the last persist (or a full
        snapshot after destructive cleanup, which deltas cannot express)
        plus the resolved thresholds, fixpoint memos and the result with
        its provenance flags.  A store write that fails (fault injection,
        disk trouble) is absorbed: the version is aborted, the catalog
        stays on the previous version, and the records stay pending for
        the next recheck — the stream never dies to its own persistence.
        """
        self._store = store
        self._pending_records = []
        self._pending_destructive = False

    @property
    def store(self):
        """The attached :class:`~repro.store.DetectionStore`, or ``None``."""
        return self._store

    def persist_checkpoint(self) -> int | None:
        """Make the store head a full-snapshot (compaction) point.

        The service calls this at checkpoints.  When state is already
        persisted at the head (the usual case — the checkpoint's
        ``recheck_full`` committed it), the head's delta chain is folded
        into a base snapshot in place; pending or destructive changes
        commit a fresh snapshot version instead.  Either way later
        resumes load the checkpoint directly, without delta replay.
        Returns the snapshot's version, or ``None`` when no store is
        attached or the write was absorbed.
        """
        if self._store is None:
            return None
        if self._store.head is None or self._pending_records or self._pending_destructive:
            return self._persist(snapshot=True)
        try:
            with obs.span("store_persist"):
                return self._store.compact()
        except ReproError:
            obs.count("store.persist_failures")
            return None

    def _persist(self, snapshot: bool = False) -> int | None:
        if self._store is None:
            return None
        store = self._store
        version = store.begin_version()
        try:
            with obs.span("store_persist"):
                if snapshot or store.head is None or self._pending_destructive:
                    store.put_snapshot(self._graph)
                else:
                    store.put_delta(
                        [
                            (str(user), str(item), clicks)
                            for user, item, clicks in self._pending_records
                        ]
                    )
                resolved = self._detector.resolve_thresholds(self._graph)
                derived = {}
                array_snapshot = snapshot_or_none(self._graph)
                if array_snapshot is not None:
                    derived = array_snapshot.derived
                from ..store import memos_to_json

                store.put_thresholds(
                    self._detector.params,
                    resolved,
                    self._detector.screening,
                    memos=memos_to_json(derived),
                )
                store.put_result(self._result)
                store.commit()
        except ReproError:
            store.abort()
            obs.count("store.persist_failures")
            return None
        self._pending_records = []
        self._pending_destructive = False
        return version

    @staticmethod
    def _derive_traverse_cap(graph: BipartiteGraph) -> int:
        """10x the mean item degree of ``graph``, floored at 50."""
        n_items = max(1, graph.num_items)
        mean_degree = graph.num_edges / n_items
        return max(50, int(10 * mean_degree))

    @property
    def graph(self) -> BipartiteGraph:
        """The live graph (treat as read-only)."""
        return self._graph

    @property
    def traverse_degree_cap(self) -> int:
        """The dirty-region BFS cap currently in force."""
        return self._traverse_degree_cap

    @property
    def current_result(self) -> DetectionResult:
        """The most recent detection state."""
        return self._result

    @property
    def dirty_size(self) -> int:
        """Number of nodes awaiting a recheck."""
        return len(self._dirty_users) + len(self._dirty_items)

    @property
    def batches_since_recheck(self) -> int:
        """Batches ingested since the last (attempted) recheck."""
        return self._batches_since_recheck

    @property
    def dirty_since(self) -> float | None:
        """Clock time the dirty region started accumulating, or ``None``.

        Stamped from ``time_source`` when the dirty region transitions
        from empty to non-empty; cleared when a recheck covers it.  Always
        ``None`` without a time source.
        """
        return self._dirty_since

    def dirty_age(self, now: float) -> float:
        """Clock-seconds the oldest un-rechecked mark has waited (0 if clean)."""
        if self._dirty_since is None:
            return 0.0
        return max(0.0, now - self._dirty_since)

    def _mark_dirty(self, user: Node, item: Node) -> None:
        """Mark both endpoints dirty, stamping the region's birth time."""
        if (
            self._dirty_since is None
            and self._time_source is not None
            and not self._dirty_users
            and not self._dirty_items
        ):
            self._dirty_since = self._time_source()
        self._dirty_users.add(user)
        self._dirty_items.add(item)

    def ingest(self, batch: ClickBatch) -> DetectionResult:
        """Apply one batch; recheck the dirty region when due.

        Returns the (possibly refreshed) current result.
        """
        for user, item, clicks in batch.records:
            self._graph.add_click(user, item, clicks)
            self._mark_dirty(user, item)
        if self._store is not None:
            self._pending_records.extend(batch.records)
        self._batches_since_recheck += 1
        if (
            self._recheck_batches is not None
            and self._batches_since_recheck >= self._recheck_batches
        ):
            self.recheck()
        return self._result

    def apply_cleanup(
        self, edges: Iterable[tuple[Node, Node, int]]
    ) -> DetectionResult:
        """Remove (or reduce) click records and recheck the touched region.

        The post-detection half of the online loop: once the platform
        confirms a group, its attributed fake edges (see
        :func:`repro.core.screening.collect_fake_edges`) are subtracted
        from the live graph.  Counts are clamped at zero; the touched
        nodes are marked dirty and a recheck runs immediately, so cleaned
        groups leave the current result right away.
        """
        for user, item, clicks in edges:
            current = self._graph.get_click(user, item)
            if current:
                remaining = current - clicks
                if remaining > 0:
                    self._graph.set_click(user, item, remaining)
                else:
                    # A fully cleaned edge must *leave* the adjacency, not
                    # linger at weight zero: zombie edges inflate Avg_cnt
                    # (Eq. 4's denominator) and item degrees, skewing the
                    # re-derived thresholds away from a freshly built
                    # graph's.  The parity test pins this.
                    self._graph.remove_edge(user, item)
            self._mark_dirty(user, item)
        if self._store is not None:
            # Deltas are append-only click records; removals force the
            # next persisted version to be a full snapshot.
            self._pending_destructive = True
        return self.recheck()

    def recheck(self) -> DetectionResult:
        """Re-run detection on the dirty region and merge into the state.

        Groups from the previous state whose members are all clean are
        kept verbatim; groups intersecting the dirty region are replaced
        by whatever the fresh regional pass finds.

        Resilience: a recheck that dies with a framework error keeps the
        *previous* result — marked ``stale`` so callers know it predates
        the dirty batches — and retains the dirty sets, so the next
        recheck (or the next due batch) re-covers the same region.  A
        stream never loses its detection state to one failed pass.
        """
        if not self._dirty_users and not self._dirty_items:
            self._batches_since_recheck = 0
            if self._pending_records or self._pending_destructive:
                # A previous persist was absorbed (store fault): the
                # detection state is current but the store is behind.
                # Retry so the backlog lands as soon as pressure is off.
                self._persist()
            return self._result

        try:
            inject("recheck")
            result = self._recheck_dirty_region()
        except ReproError:
            obs.count("resilience.stale_rechecks")
            self._result.stale = True
            # Dirty sets are retained: the failed pass covered nothing.
            self._batches_since_recheck = 0
            # The stale state still persists (graph advanced, result kept
            # with its stale flag), so a resume reproduces exactly what
            # this process would keep serving.
            self._persist()
            return self._result
        self._result = result
        self._result.stale = False
        self._dirty_users.clear()
        self._dirty_items.clear()
        self._dirty_since = None
        self._batches_since_recheck = 0
        self._persist()
        return self._result

    def recheck_full(self) -> DetectionResult:
        """Mark *everything* dirty and recheck — an exact synchronization.

        With the whole graph dirty no previous group is kept and the
        regional pass runs over the full live graph, so the refreshed
        state equals a one-shot batch :meth:`RICDDetector.detect` on the
        same graph (the property the checkpointed parity suite pins).
        The streaming service calls this at checkpoints/drain; between
        them the cheaper dirty-region rechecks serve the live result.
        """
        self._dirty_users.update(self._graph.users())
        self._dirty_items.update(self._graph.items())
        return self.recheck()

    def _recheck_dirty_region(self) -> DetectionResult:
        """The recheck body: regional pass + merge, no state mutation."""
        if not self._explicit_traverse_cap:
            # The marketplace grows under the stream; a derived cap must
            # track the live mean degree or the dirty region quietly
            # shrinks relative to it.  Explicit caps are user policy and
            # stay fixed.
            self._traverse_degree_cap = self._derive_traverse_cap(self._graph)
        all_dirty = (
            len(self._dirty_users) >= self._graph.num_users
            and len(self._dirty_items) >= self._graph.num_items
            # Length alone can lie when cleanup removed nodes that are
            # still in the dirty sets; the O(U+V) membership sweep is
            # negligible next to the O(E) expansion it avoids.
            and all(user in self._dirty_users for user in self._graph.users())
            and all(item in self._dirty_items for item in self._graph.items())
        )
        if all_dirty:
            # Everything is dirty (bootstrap replays, checkpoint syncs):
            # the region IS the graph, so skip the O(E) expansion copy.
            # The detector never mutates its input, so sharing is safe.
            region = self._graph
        else:
            region = seed_expansion(
                self._graph,
                seed_users=sorted(self._dirty_users, key=str),
                seed_items=sorted(self._dirty_items, key=str),
                hops=2,
                max_traverse_degree=self._traverse_degree_cap,
            )
        # Thresholds are global: resolve against the full live graph, then
        # run the detector's shared module stages on the region only —
        # the same extraction/screening/size-caps chain every other
        # execution path composes, so regional and batch rechecks cannot
        # drift apart.
        timer = Stopwatch()
        resolved = self._detector.resolve_thresholds(self._graph)
        regional = self._detector._run_modules(
            region, resolved, self._detector.screening, timer
        )

        kept: list[SuspiciousGroup] = [
            group
            for group in self._result.groups
            if not (group.users & self._dirty_users)
            and not (group.items & self._dirty_items)
        ]
        ctx = PipelineContext(
            graph=self._graph,
            params=resolved,
            screening=self._detector.screening,
            timer=timer,
            groups=kept + [group.copy() for group in regional],
        )
        # Identification ranks against the full live graph, like the
        # batch pipeline's final stage.
        Identification().run(ctx)
        result = ctx.result
        result.timings = dict(timer.durations)
        return result

