"""Camouflage restriction — the Zarankiewicz bound of Section V-C.

Desired property (3) of the detection approach: "It can restrict the
maximum number of false clicks/edges (i.e., an upper bound) that attackers
can add without being detected."

The argument (end of Section V-C): every ``(alpha, k1, k2)``-extension
biclique contains a ``k1 x k2`` biclique, so an attacker who wants to stay
invisible to Algorithm 3 must keep their fake-edge set *K_{k1,k2}-free*.
The maximum number of edges of a bipartite graph on ``(m, n)`` vertices
with no ``K_{k1,k2}`` subgraph is the Zarankiewicz number
``z(m, n; k1, k2)``, bounded above by Kővári-Sós-Turán [24] (Füredi [25]
tightened the constant).

We use the KST bound in its *counting form*, which is the theorem's own
proof skeleton and avoids transcription errors in the closed form: a
``K_{s,t}``-free graph (``s`` on the ``m``-user side, ``t`` on the
``n``-item side) satisfies

.. math::  \\sum_{u} \\binom{d_u}{t} \\le (s - 1) \\binom{n}{t},

and by convexity the left side is at least ``m \\binom{e/m}{t}``, so the
edge count ``e`` is bounded by the largest mean degree satisfying the
inequality (found numerically).  The bound grows like
``(s-1)^{1/t} n m^{1-1/t}`` — *sublinear in the account count* — which is
what makes evasion economically unattractive.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from ..config import RICDParams

__all__ = [
    "kovari_sos_turan_bound",
    "zarankiewicz_upper_bound",
    "undetected_campaign_bound",
    "contains_biclique",
]


def _generalized_binomial(x: float, k: int) -> float:
    """``C(x, k)`` for real ``x >= 0`` (0 when ``x < k - 1`` would go negative)."""
    product = 1.0
    for index in range(k):
        factor = x - index
        if factor <= 0.0:
            return 0.0
        product *= factor / (index + 1)
    return product


def kovari_sos_turan_bound(m: int, n: int, s: int, t: int) -> float:
    """KST upper bound on the edges of a ``K_{s,t}``-free bipartite graph.

    ``m`` counts the side contributing ``s`` vertices to the forbidden
    biclique (workers), ``n`` the side contributing ``t`` (items).
    Requires ``1 <= s <= m`` and ``1 <= t <= n``.  ``s = 1`` or ``t = 1``
    forbid a star, so the bound degenerates to the exact ``max`` degree
    ceiling.

    >>> kovari_sos_turan_bound(4, 4, 2, 2) >= 9  # z(4,4;2,2) = 9
    True
    """
    if not 1 <= s <= m:
        raise ValueError(f"require 1 <= s <= m, got s={s}, m={m}")
    if not 1 <= t <= n:
        raise ValueError(f"require 1 <= t <= n, got t={t}, n={n}")
    if t == 1:
        # No user may reach degree... rather: no s users may share an item;
        # each item takes at most s - 1 edges.
        return float(n * (s - 1)) if s > 1 else 0.0
    if s == 1:
        # No single user may click t items: degree cap t - 1 per user.
        return float(m * (t - 1))
    # Largest mean degree d with m * C(d, t) <= (s - 1) * C(n, t).
    limit = (s - 1) * comb(n, t)
    low, high = 0.0, float(n)
    for _step in range(64):  # ~1e-19 relative precision, plenty
        mid = (low + high) / 2.0
        if m * _generalized_binomial(mid, t) <= limit:
            low = mid
        else:
            high = mid
    return m * low


def zarankiewicz_upper_bound(m: int, n: int, s: int, t: int) -> int:
    """Best orientation of the KST bound, floored to an edge count.

    Both orientations of the forbidden biclique yield valid bounds, so the
    minimum is taken; the trivial ceiling ``m * n`` clamps degenerate
    cases.
    """
    direct = kovari_sos_turan_bound(m, n, s, t)
    flipped = kovari_sos_turan_bound(n, m, t, s)
    return min(int(direct), int(flipped), m * n)


def undetected_campaign_bound(
    n_workers: int, n_items: int, params: RICDParams
) -> int:
    """Max fake edges a campaign can place without forming a detectable core.

    Given ``n_workers`` controlled accounts, ``n_items`` clickable items
    and the deployed RICD parameters, any fake-edge set containing a
    ``k1 x k2`` biclique is (up to screening) detectable, so an invisible
    campaign is ``K_{k1,k2}``-free and its size is bounded by
    ``z(n_workers, n_items; k1, k2)``.

    The practical reading: to push more clicks than this, the seller must
    recruit more accounts — and the bound grows only like
    ``n_workers^(1 - 1/k2)``, so the marginal account buys less and less.
    """
    if n_workers < 1 or n_items < 1:
        raise ValueError("n_workers and n_items must be positive")
    s = min(params.k1, n_workers)
    t = min(params.k2, n_items)
    return zarankiewicz_upper_bound(n_workers, n_items, s, t)


def contains_biclique(edges: set[tuple], s: int, t: int) -> bool:
    """Whether the bipartite edge set contains a ``K_{s,t}`` (brute force).

    Exponential in ``s`` — intended for tests and small exploratory
    checks, not production graphs.  ``edges`` holds ``(user, item)``
    pairs.
    """
    if s < 1 or t < 1:
        raise ValueError("s and t must be positive")
    adjacency: dict = {}
    for user, item in edges:
        adjacency.setdefault(user, set()).add(item)
    users = [u for u, items in adjacency.items() if len(items) >= t]
    if len(users) < s:
        return False
    for subset in combinations(users, s):
        common = set.intersection(*(adjacency[user] for user in subset))
        if len(common) >= t:
            return True
    return False
