"""Shared result types for detectors.

Both the RICD framework and every baseline emit the same shapes:

* :class:`SuspiciousGroup` — one candidate attack group, the unit that
  flows between the detection, screening and identification modules;
* :class:`DetectionResult` — the final answer of the problem definition
  (Section III-B): the suspicious user set ``U_sus`` and suspicious target
  item set ``V_sus``, the per-group decomposition, risk scores, and the
  per-phase wall-clock timings used by the Fig. 8b comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["SuspiciousGroup", "DetectionResult"]

Node = Hashable


@dataclass
class SuspiciousGroup:
    """A candidate "Ride Item's Coattails" attack group.

    Attributes
    ----------
    users:
        Candidate crowd-worker accounts.
    items:
        Candidate items.  Before screening this may mix hot items and
        targets; after screening it holds suspicious target items only.
    hot_items:
        Hot items associated with the group (populated by screening, which
        separates ridden hot items from boosted targets).
    """

    users: set[Node] = field(default_factory=set)
    items: set[Node] = field(default_factory=set)
    hot_items: set[Node] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Total suspicious node count (users + items, hot items excluded)."""
        return len(self.users) + len(self.items)

    def copy(self) -> "SuspiciousGroup":
        """Independent copy (screening mutates groups destructively)."""
        return SuspiciousGroup(
            users=set(self.users),
            items=set(self.items),
            hot_items=set(self.hot_items),
        )

    def __repr__(self) -> str:
        return (
            f"SuspiciousGroup(users={len(self.users)}, items={len(self.items)}, "
            f"hot={len(self.hot_items)})"
        )


@dataclass
class DetectionResult:
    """The output of a detector run.

    Attributes
    ----------
    suspicious_users:
        ``U_sus`` — union of group user sets.
    suspicious_items:
        ``V_sus`` — union of group (target) item sets.
    groups:
        Per-group decomposition, largest first.
    user_scores, item_scores:
        Risk scores from the identification module (empty for detectors
        that do not score).  Higher means more suspicious.
    timings:
        Wall-clock seconds per phase, e.g. ``{"detection": ..., "screening":
        ..., "identification": ...}``.
    feedback_rounds:
        Number of parameter-relaxation rounds the Fig. 7 loop performed
        (0 when the first run met the expectation or no loop was used).
    degraded:
        ``True`` when the run absorbed a graceful-degradation event (a
        shard fell back to the full-graph pass, a deadline truncated the
        feedback loop).  The *detection output* of a shard fallback is
        identical to the fault-free run by the locality argument in
        :mod:`repro.shard.runner`; wall-clocks of degraded runs are not
        benchmark-comparable.
    degradations:
        Per-event provenance, e.g. ``("shard.2", "shard.3")`` — exactly
        which units fell back.
    stale:
        Set by :class:`~repro.core.incremental.IncrementalRICD` when a
        recheck failed and this (previous, still valid) result was kept;
        the dirty region is retained and re-covered by the next recheck.
    """

    suspicious_users: set[Node] = field(default_factory=set)
    suspicious_items: set[Node] = field(default_factory=set)
    groups: list[SuspiciousGroup] = field(default_factory=list)
    user_scores: dict[Node, float] = field(default_factory=dict)
    item_scores: dict[Node, float] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    feedback_rounds: int = 0
    degraded: bool = False
    degradations: tuple[str, ...] = ()
    stale: bool = False

    @property
    def suspicious_nodes(self) -> set[Node]:
        """Union of suspicious users and items."""
        return self.suspicious_users | self.suspicious_items

    @property
    def elapsed(self) -> float:
        """Total recorded wall-clock time across phases, in seconds."""
        return sum(self.timings.values())

    def top_users(self, k: int) -> list[tuple[Node, float]]:
        """The ``k`` highest-risk users, score-descending (ties by id)."""
        ranked = sorted(
            self.user_scores.items(), key=lambda pair: (-pair[1], str(pair[0]))
        )
        return ranked[:k]

    def top_items(self, k: int) -> list[tuple[Node, float]]:
        """The ``k`` highest-risk items, score-descending (ties by id)."""
        ranked = sorted(
            self.item_scores.items(), key=lambda pair: (-pair[1], str(pair[0]))
        )
        return ranked[:k]

    @staticmethod
    def from_groups(groups: list[SuspiciousGroup]) -> "DetectionResult":
        """Assemble a result from groups (no scores, no timings)."""
        result = DetectionResult(groups=list(groups))
        for group in groups:
            result.suspicious_users |= group.users
            result.suspicious_items |= group.items
        return result

    def __repr__(self) -> str:
        return (
            f"DetectionResult(users={len(self.suspicious_users)}, "
            f"items={len(self.suspicious_items)}, groups={len(self.groups)}, "
            f"elapsed={self.elapsed:.3f}s)"
        )
