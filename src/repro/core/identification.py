"""The suspicious-group identification module (Section V-B(3), Fig. 7).

Converts screened groups into the business-facing output table:

* **Risk-score ranking.**  A user's risk score is the number of suspicious
  items they clicked; an item's risk score is the average risk of its
  (suspicious) clickers.  Business experts punish the top-k of each list.

* **Feedback parameter adjustment.**  When the output is smaller than the
  end-user expectation ``T``, parameters are relaxed — the paper names
  "decrease ``T_click``" as the canonical move; we also lower ``alpha``
  toward its floor and (optionally) the group-size floors — and the first
  two modules re-run.  :func:`adjust_parameters` produces the relaxed
  parameter pair for one round; the loop itself lives in
  :class:`repro.core.framework.RICDDetector` because it must re-invoke
  detection.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from .. import obs
from ..config import FeedbackPolicy, RICDParams, ScreeningParams
from ..graph.bipartite import BipartiteGraph
from .groups import DetectionResult, SuspiciousGroup

__all__ = ["score_groups", "assemble_result", "adjust_parameters", "output_size"]

Node = Hashable


def score_groups(
    graph: BipartiteGraph, groups: Iterable[SuspiciousGroup]
) -> tuple[dict[Node, float], dict[Node, float]]:
    """Risk scores per the ranking strategy of Section V-B(3).

    Returns ``(user_scores, item_scores)``:

    * ``user_scores[u]`` — number of suspicious items ``u`` clicked (across
      all groups);
    * ``item_scores[i]`` — mean risk score of the suspicious users who
      clicked ``i``.
    """
    suspicious_items: set[Node] = set()
    suspicious_users: set[Node] = set()
    for group in groups:
        suspicious_items |= group.items
        suspicious_users |= group.users

    user_scores: dict[Node, float] = {}
    for user in suspicious_users:
        if not graph.has_user(user):
            user_scores[user] = 0.0
            continue
        clicked = sum(
            1 for item in graph.user_neighbors(user) if item in suspicious_items
        )
        user_scores[user] = float(clicked)

    item_scores: dict[Node, float] = {}
    for item in suspicious_items:
        if not graph.has_item(item):
            item_scores[item] = 0.0
            continue
        clicker_risks = [
            user_scores[user]
            for user in graph.item_neighbors(item)
            if user in user_scores
        ]
        item_scores[item] = (
            sum(clicker_risks) / len(clicker_risks) if clicker_risks else 0.0
        )
    return user_scores, item_scores


def assemble_result(
    graph: BipartiteGraph, groups: list[SuspiciousGroup]
) -> DetectionResult:
    """Build a scored :class:`DetectionResult` from final groups."""
    result = DetectionResult.from_groups(groups)
    with obs.span("scoring"):
        result.user_scores, result.item_scores = score_groups(graph, groups)
    obs.count("identify.groups", len(result.groups))
    obs.count("identify.users", len(result.suspicious_users))
    obs.count("identify.items", len(result.suspicious_items))
    return result


def output_size(groups: Iterable[SuspiciousGroup]) -> int:
    """Total distinct suspicious users + items across groups (the Fig. 7 check)."""
    users: set[Node] = set()
    items: set[Node] = set()
    for group in groups:
        users |= group.users
        items |= group.items
    return len(users) + len(items)


def adjust_parameters(
    params: RICDParams,
    screening: ScreeningParams,
    policy: FeedbackPolicy,
) -> tuple[RICDParams, ScreeningParams]:
    """One round of the Fig. 7 relaxation.

    Lowers ``t_click`` by ``policy.t_click_step`` (floor 2), ``alpha`` by
    ``policy.alpha_step`` (floor ``policy.alpha_floor``), and — when
    ``policy.shrink_k`` — ``k1``/``k2`` by one (floor 2).  ``t_click``
    must already be resolved to a number (the framework resolves data-
    derived thresholds before looping).

    When ``policy.hot_cap_step`` is positive the screening module's
    ``hot_click_cap`` is *raised* by that step (capped at
    ``policy.hot_cap_ceiling``): the cap is the one screening parameter
    an adaptive attacker can hide directly under — hot-pad workers click
    hot items exactly often enough to look organic — so a feedback loop
    that never moves it can relax ``t_click``/``alpha`` forever without
    recovering them.

    Returns the relaxed ``(params, screening)`` pair; inputs are untouched.
    """
    changes: dict[str, object] = {}
    if params.t_click is not None and policy.t_click_step > 0:
        changes["t_click"] = max(2.0, params.t_click - policy.t_click_step)
    if policy.alpha_step > 0:
        changes["alpha"] = max(policy.alpha_floor, round(params.alpha - policy.alpha_step, 9))
    if policy.shrink_k:
        changes["k1"] = max(2, params.k1 - 1)
        changes["k2"] = max(2, params.k2 - 1)
    if policy.hot_cap_step > 0 and screening.hot_click_cap < policy.hot_cap_ceiling:
        screening = screening.replace(
            hot_click_cap=min(
                policy.hot_cap_ceiling, screening.hot_click_cap + policy.hot_cap_step
            )
        )
    return params.replace(**changes), screening
