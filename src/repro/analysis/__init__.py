"""Behavioural analysis — Section IV of the paper as a reusable library.

The paper's attack analysis profiles users and items against the derived
thresholds: a crowd worker shows heavy clicks on a few ordinary items,
barely touches hot items, and spreads small disguise clicks; an attacked
item concentrates its volume in few accounts.  This subpackage packages
those profiles (:mod:`repro.analysis.profiles`) and a whole-marketplace
report (:mod:`repro.analysis.report`) the experiment modules and example
scripts build on.
"""

from .profiles import (
    ItemProfile,
    UserProfile,
    classify_user,
    item_profile,
    user_profile,
)
from .report import MarketplaceReport, marketplace_report

__all__ = [
    "UserProfile",
    "ItemProfile",
    "user_profile",
    "item_profile",
    "classify_user",
    "MarketplaceReport",
    "marketplace_report",
]
