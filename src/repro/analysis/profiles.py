"""Per-node behavioural profiles against the Section IV thresholds.

The user-side profile captures the paper's three worker signatures
(Section IV-A conclusions, in order of significance):

1. heavy clicks (>= ``T_click``) on some ordinary items;
2. an extremely small average click count on hot items (< 4);
3. high dispersion across the ordinary items they touch (attack targets
   get many clicks, disguise gets one or two).

The item-side profile captures the Section IV-B target signatures:
few distinct users for the volume, high per-user mean/stdev/max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..graph.bipartite import BipartiteGraph
from ..graph.stats import item_click_profile

__all__ = ["UserProfile", "ItemProfile", "user_profile", "item_profile", "classify_user"]

Node = Hashable

#: classify_user verdicts.
WORKER_LIKE = "worker-like"
SUPERFAN_LIKE = "superfan-like"
NORMAL = "normal"


@dataclass(frozen=True)
class UserProfile:
    """A user's click behaviour against the (T_hot, T_click) thresholds.

    Attributes
    ----------
    user:
        The profiled account.
    degree:
        Distinct items clicked.
    total_clicks:
        Total click volume.
    hot_degree, hot_clicks:
        Distinct hot items clicked / clicks spent on them.
    heavy_ordinary_items:
        Ordinary items receiving >= ``T_click`` clicks (signature 1).
    max_ordinary_clicks:
        Heaviest single ordinary engagement.
    ordinary_click_stdev:
        Dispersion of the per-ordinary-item click counts (signature 3).
    """

    user: Node
    degree: int
    total_clicks: int
    hot_degree: int
    hot_clicks: int
    heavy_ordinary_items: int
    max_ordinary_clicks: int
    ordinary_click_stdev: float

    @property
    def avg_hot_clicks(self) -> float:
        """Mean clicks per hot item (0 when no hot item was touched)."""
        return self.hot_clicks / self.hot_degree if self.hot_degree else 0.0

    @property
    def ordinary_degree(self) -> int:
        """Distinct ordinary items clicked."""
        return self.degree - self.hot_degree


def user_profile(
    graph: BipartiteGraph, user: Node, t_hot: float, t_click: float
) -> UserProfile:
    """Profile ``user`` against the thresholds.

    Raises the graph's usual lookup error when the user does not exist.
    """
    neighbors = graph.user_neighbors(user)
    hot_degree = 0
    hot_clicks = 0
    ordinary_clicks: list[int] = []
    heavy = 0
    for item, clicks in neighbors.items():
        if graph.item_total_clicks(item) >= t_hot:
            hot_degree += 1
            hot_clicks += clicks
        else:
            ordinary_clicks.append(clicks)
            if clicks >= t_click:
                heavy += 1
    if ordinary_clicks:
        mean = sum(ordinary_clicks) / len(ordinary_clicks)
        stdev = math.sqrt(
            sum((value - mean) ** 2 for value in ordinary_clicks)
            / len(ordinary_clicks)
        )
        max_ordinary = max(ordinary_clicks)
    else:
        stdev = 0.0
        max_ordinary = 0
    return UserProfile(
        user=user,
        degree=len(neighbors),
        total_clicks=sum(neighbors.values()),
        hot_degree=hot_degree,
        hot_clicks=hot_clicks,
        heavy_ordinary_items=heavy,
        max_ordinary_clicks=max_ordinary,
        ordinary_click_stdev=stdev,
    )


@dataclass(frozen=True)
class ItemProfile:
    """An item's click behaviour with the abnormal-concentration signals.

    Extends :class:`repro.graph.stats.ItemClickProfile` with the
    concentration ratio the Table V contrast rests on.
    """

    item: Node
    total_clicks: int
    user_num: int
    mean_clicks: float
    stdev_clicks: float
    max_clicks: int

    @property
    def concentration(self) -> float:
        """Mean clicks per user — the Table V separator.

        The paper's matched pair: 3.64 for the attacked item vs 1.99 for
        the organic one at comparable volume.
        """
        return self.mean_clicks


def item_profile(graph: BipartiteGraph, item: Node) -> ItemProfile:
    """Profile ``item`` (delegates to the Table V statistics)."""
    base = item_click_profile(graph, item)
    return ItemProfile(
        item=item,
        total_clicks=base.total_clicks,
        user_num=base.user_num,
        mean_clicks=base.mean,
        stdev_clicks=base.stdev,
        max_clicks=base.max_clicks,
    )


def classify_user(
    profile: UserProfile,
    t_click: float,
    hot_click_cap: float = 4.0,
    min_targets: int = 2,
) -> str:
    """Heuristic triage of a user profile.

    * ``"worker-like"`` — at least ``min_targets`` heavy ordinary items
      with a small average hot engagement: the Table III pattern;
    * ``"superfan-like"`` — heavy ordinary clicks but on fewer than
      ``min_targets`` items, or alongside heavy hot engagement: the
      organic binge pattern that screening must clear;
    * ``"normal"`` — no heavy ordinary clicks at all.

    This mirrors (but does not replace) the screening module: screening
    judges users *within a structurally suspicious group*; this classifier
    judges a user in isolation, which is exactly why it is only a triage
    aid (Section IV's "rough and inaccurate" first screen).
    """
    if profile.heavy_ordinary_items == 0:
        return NORMAL
    if (
        profile.heavy_ordinary_items >= min_targets
        and profile.avg_hot_clicks < hot_click_cap
    ):
        return WORKER_LIKE
    return SUPERFAN_LIKE
