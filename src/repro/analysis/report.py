"""Whole-marketplace behavioural report — the Section IV pipeline.

Runs the paper's first-pass analysis over a click graph: derive the
thresholds, count the "rough screen" populations (the paper lands on
">= 7% of all users" and ">= 15% of all items" before concluding a more
systematic approach is needed — motivating RICD), and triage users with
:func:`repro.analysis.profiles.classify_user`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core.thresholds import pareto_hot_threshold, t_click_from_graph
from ..eval.reporting import format_float, render_table
from ..graph.bipartite import BipartiteGraph
from .profiles import NORMAL, SUPERFAN_LIKE, WORKER_LIKE, classify_user, user_profile

__all__ = ["MarketplaceReport", "marketplace_report"]

Node = Hashable


@dataclass
class MarketplaceReport:
    """The Section IV analysis summary for one click graph.

    Attributes
    ----------
    t_hot, t_click:
        The derived thresholds.
    n_users, n_items, n_hot_items:
        Population sizes.
    triage_counts:
        ``{"worker-like": n, "superfan-like": n, "normal": n}``.
    worker_like_users:
        The triaged worker-like accounts (the paper's "rough screen"
        population — over-inclusive by design).
    """

    t_hot: float
    t_click: float
    n_users: int
    n_items: int
    n_hot_items: int
    triage_counts: dict[str, int] = field(default_factory=dict)
    worker_like_users: set[Node] = field(default_factory=set)

    @property
    def suspicious_user_share(self) -> float:
        """Share of users the rough screen flags (paper: >= 7%)."""
        if not self.n_users:
            return 0.0
        return len(self.worker_like_users) / self.n_users

    def render(self) -> str:
        """Fixed-width summary table."""
        rows = [
            ["users", f"{self.n_users:,}"],
            ["items", f"{self.n_items:,}"],
            ["hot items (>= T_hot)", f"{self.n_hot_items:,}"],
            ["T_hot", format_float(self.t_hot, 0)],
            ["T_click", format_float(self.t_click, 0)],
            [WORKER_LIKE, f"{self.triage_counts.get(WORKER_LIKE, 0):,}"],
            [SUPERFAN_LIKE, f"{self.triage_counts.get(SUPERFAN_LIKE, 0):,}"],
            [NORMAL, f"{self.triage_counts.get(NORMAL, 0):,}"],
            [
                "rough-screen share",
                f"{self.suspicious_user_share * 100:.2f}% of users",
            ],
        ]
        return render_table(
            ["metric", "value"], rows, title="Section IV marketplace analysis"
        )


def marketplace_report(graph: BipartiteGraph) -> MarketplaceReport:
    """Run the Section IV first-pass analysis over ``graph``.

    Cost is one pass over users plus the threshold derivations — linear in
    edges, usable as a monitoring job.
    """
    t_hot = float(pareto_hot_threshold(graph))
    t_click = float(t_click_from_graph(graph))
    n_hot = sum(
        1 for item in graph.items() if graph.item_total_clicks(item) >= t_hot
    )
    report = MarketplaceReport(
        t_hot=t_hot,
        t_click=t_click,
        n_users=graph.num_users,
        n_items=graph.num_items,
        n_hot_items=n_hot,
        triage_counts={WORKER_LIKE: 0, SUPERFAN_LIKE: 0, NORMAL: 0},
    )
    for user in graph.users():
        profile = user_profile(graph, user, t_hot, t_click)
        verdict = classify_user(profile, t_click)
        report.triage_counts[verdict] += 1
        if verdict == WORKER_LIKE:
            report.worker_like_users.add(user)
    return report
