"""Pipeline observability: context-scoped spans, counters and gauges.

``repro.obs`` is the instrumentation layer every stage of the detection
stack reports through — extraction pruning rounds, screening decisions,
identification output, cache hits on the indexed-graph fast path, and
per-worker stats from the parallel evaluation harness.  It is stdlib-only
and a strict no-op unless a :class:`Recorder` is active, so instrumented
hot paths cost one contextvar read when tracing is off.

Typical use::

    from repro import obs

    recorder = obs.Recorder()
    with obs.recording(recorder):
        result = detector.detect(graph)
    print(recorder.report().render())          # stage/counter tables
    path.write_text(recorder.report().to_json())

Instrumentation sites (library code) never create recorders; they call
the module-level :func:`span` / :func:`count` / :func:`gauge` helpers,
which dispatch to whatever recorder the caller installed — or to nothing.
"""

from .recorder import Recorder, count, current, gauge, recording, span
from .report import SpanStat, TraceReport

__all__ = [
    "Recorder",
    "TraceReport",
    "SpanStat",
    "recording",
    "current",
    "span",
    "count",
    "gauge",
]
