"""Context-scoped recording of spans, counters and gauges.

The recorder answers the question PR 1's end-to-end timings cannot:
*where* inside CorePruning/SquarePruning, screening and identification
the time and pruning work go.  Design constraints, in order:

1. **Zero-cost when disabled.**  Every instrumentation site costs one
   :class:`~contextvars.ContextVar` read plus a ``None`` check when no
   recorder is installed — no generator frames, no dict writes, no keys.
   The hot paths (cached extraction, screening scans) stay within noise.
2. **Context-scoped, nesting-safe.**  The active recorder travels through
   a contextvar, so traced and untraced calls interleave freely (a traced
   suite can call into untraced helpers and vice versa) and installing a
   recorder inside an already-recording block shadows the outer one until
   the block exits.
3. **Mergeable.**  Process-pool workers record into their own recorders
   and ship plain dicts back; :meth:`Recorder.merge` folds them into the
   parent additively (spans and counters add, gauges last-write-wins), so
   per-stage numbers stay meaningful across ``jobs > 1`` runs.

Instrumentation sites use the module-level helpers::

    from .. import obs

    with obs.span("prune"):
        ...
    obs.count("extract.users_removed", removed)
    obs.gauge("detect.engine", "sparse")

and entry points that own a trace use :func:`recording`::

    recorder = Recorder()
    with recording(recorder):
        detector.detect(graph)
    print(recorder.report().render())

Span semantics: each ``span`` interval is recorded once, under its dotted
path (``"extraction.prune"`` when ``span("prune")`` runs inside
``span("extraction")``), accumulating wall-clock seconds and a call count.
Time is therefore never double-counted *within* a key; a parent span's
total naturally includes its children's, which is what a stage breakdown
wants.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .report import TraceReport

__all__ = ["Recorder", "recording", "current", "span", "count", "gauge"]

#: The active recorder for the current execution context (None = disabled).
_ACTIVE: ContextVar["Recorder | None"] = ContextVar("repro_obs_recorder", default=None)


class _NullSpan:
    """Shared no-op context manager handed out when recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span interval; enters/exits the recorder's path stack."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Span":
        self._recorder._enter_span(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._exit_span(time.perf_counter() - self._start)
        return False


class Recorder:
    """Accumulates one run's spans, counters and gauges.

    Attributes
    ----------
    spans:
        Dotted span path → ``[total_seconds, call_count]``.
    counters:
        Counter name → accumulated integer value (monotonic; ``count``
        only adds).
    gauges:
        Gauge name → last written value (JSON scalar: str/int/float).
    meta:
        Free-form run metadata (engine, jobs, scenario id, ...); written
        by entry points, never by instrumentation sites.

    A recorder is single-context: do not share one instance across
    threads or processes — give each worker its own and :meth:`merge`.

    Examples
    --------
    >>> recorder = Recorder()
    >>> with recording(recorder):
    ...     with span("outer"):
    ...         with span("inner"):
    ...             count("work", 2)
    >>> sorted(recorder.spans)
    ['outer', 'outer.inner']
    >>> recorder.counters["work"]
    2
    """

    __slots__ = ("spans", "counters", "gauges", "meta", "_stack")

    def __init__(self) -> None:
        self.spans: dict[str, list] = {}
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, object] = {}
        self.meta: dict[str, object] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------
    # Span bookkeeping (called by _Span only)
    # ------------------------------------------------------------------
    def _enter_span(self, name: str) -> None:
        path = f"{self._stack[-1]}.{name}" if self._stack else name
        self._stack.append(path)

    def _exit_span(self, elapsed: float) -> None:
        path = self._stack.pop()
        cell = self.spans.get(path)
        if cell is None:
            self.spans[path] = [elapsed, 1]
        else:
            cell[0] += elapsed
            cell[1] += 1

    # ------------------------------------------------------------------
    # Direct (recorder-bound) instrumentation
    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        """A context manager timing one interval under ``name``."""
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: object) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------
    def merge(self, other: "Recorder | Mapping") -> None:
        """Fold another recorder (or its exported dict) into this one.

        Spans and counters are additive; gauges and meta are
        last-write-wins.  This is the cross-worker aggregation contract:
        counters stay exact sums, span totals become cumulative worker
        seconds (wall-clock of the pool is the parent's own span).
        """
        if isinstance(other, Recorder):
            spans: Mapping = other.spans
            counters: Mapping = other.counters
            gauges: Mapping = other.gauges
            meta: Mapping = other.meta
        else:
            spans = other.get("spans", {})
            counters = other.get("counters", {})
            gauges = other.get("gauges", {})
            meta = other.get("meta", {})
        for path, stat in spans.items():
            seconds, calls = (
                (stat[0], stat[1])
                if not isinstance(stat, Mapping)
                else (stat["seconds"], stat["calls"])
            )
            cell = self.spans.get(path)
            if cell is None:
                self.spans[path] = [seconds, calls]
            else:
                cell[0] += seconds
                cell[1] += calls
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(gauges)
        self.meta.update(meta)

    def report(self) -> "TraceReport":
        """Freeze the current state into a :class:`TraceReport`."""
        from .report import SpanStat, TraceReport

        return TraceReport(
            spans={
                path: SpanStat(seconds=cell[0], calls=cell[1])
                for path, cell in self.spans.items()
            },
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"Recorder(spans={len(self.spans)}, counters={len(self.counters)}, "
            f"gauges={len(self.gauges)})"
        )


class _RecordingScope:
    """Installs a recorder as the context's active one for a with-block."""

    __slots__ = ("_recorder", "_token")

    def __init__(self, recorder: Recorder) -> None:
        self._recorder = recorder

    def __enter__(self) -> Recorder:
        self._token = _ACTIVE.set(self._recorder)
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.reset(self._token)
        return False


def recording(recorder: Recorder | None = None) -> _RecordingScope:
    """Activate ``recorder`` (a fresh one when ``None``) for a with-block.

    Nesting installs the inner recorder until its block exits, then
    restores the outer one — instrumentation always reaches exactly one
    recorder.

    >>> with recording() as recorder:
    ...     count("seen")
    >>> recorder.counters
    {'seen': 1}
    """
    return _RecordingScope(recorder if recorder is not None else Recorder())


def current() -> Recorder | None:
    """The context's active recorder, or ``None`` when disabled."""
    return _ACTIVE.get()


def span(name: str):
    """Time a with-block under ``name`` on the active recorder (no-op when off)."""
    recorder = _ACTIVE.get()
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the active recorder (no-op when off)."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.count(name, n)


def gauge(name: str, value: object) -> None:
    """Set gauge ``name`` on the active recorder (no-op when off)."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.gauge(name, value)
